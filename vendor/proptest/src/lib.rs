//! Vendored, dependency-free stand-in for the subset of the `proptest` API
//! used by this workspace's property tests.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the pieces the tests rely on: the [`proptest!`] macro (including the
//! `#![proptest_config(..)]` header), [`Strategy`] with `prop_map`, tuple and
//! range strategies, [`any`], `prop::collection::vec`, and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking: failures report the panic from
//! the failing case directly. Case generation is fully deterministic — the
//! RNG is seeded from the test name — so failures are reproducible.

use std::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test body is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator used to drive value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so each test has a fixed,
    /// independent stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` (as i128 bounds, for shared impls).
    fn next_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128) % span) as i128
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produces one value using `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_in(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Alias of the crate root so `prop::collection::vec(..)` works.
    pub use crate as prop;
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($arg,)*) = ($( $crate::Strategy::generate(&($strat), &mut rng) ,)*);
                let run = || -> () { $body };
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} failed in {}",
                        case + 1,
                        config.cases,
                        stringify!($name)
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (i64, usize)> {
        (-10i64..10, 0usize..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0i64..100, 1..40)) {
            prop_assert!((1..40).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn tuples_and_maps_compose(x in pairs().prop_map(|(a, b)| a * b as i64)) {
            prop_assert!((-50..=50).contains(&x));
        }

        #[test]
        fn any_generates(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
