//! Vendored, dependency-free stand-in for the subset of the `criterion`
//! API used by this workspace's benchmarks.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the pieces the benches rely on: [`Criterion`] with
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] (`sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `finish`),
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`Throughput`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is a simple wall-clock mean over `sample_size` samples
//! (after one warm-up sample), printed as `group/id  time [± throughput]`.
//! No statistics engine, no HTML reports, no CLI filtering — call sites
//! use the upstream API shape, so the real crate can be swapped back in
//! by editing `[workspace.dependencies]` alone.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// How many logical items one benchmark iteration processes; used to
/// derive a throughput line next to the mean time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. update ops) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Hint for how `iter_batched` amortizes setup values; the stand-in
/// regenerates the input every iteration regardless, so the variants
/// only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One fresh input per iteration.
    PerIteration,
    /// Small inputs, batched by the real criterion.
    SmallInput,
    /// Large inputs, one per iteration in the real criterion too.
    LargeInput,
}

/// A benchmark identifier inside a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark (upstream default 100;
    /// the workspace sets 10 everywhere).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for the whole group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Ends the group (printing happens per benchmark; this mirrors the
    /// upstream API).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let mut line = format!("{}/{id}: mean {}", self.name, fmt_duration(mean));
        if let Some(throughput) = self.throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            match throughput {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.3} Melem/s)", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  ({:.3} MiB/s)",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Measures closures; handed to every benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples after one warm-up run.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup`, excluding setup time
    /// from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
