//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the handful of items the histogram code relies on: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`] / [`SeedableRng`] /
//! [`RngCore`] traits with `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Determinism matters more than statistical perfection here: every consumer
//! seeds explicitly through `seed_from_u64`, and the tests only depend on the
//! stream being fixed for a fixed seed, which this implementation guarantees.

/// A source of random `u64`/`u32` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (mirrors `rand`'s behaviour).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for sampling values, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn from the standard distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled from uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardSample::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = StandardSample::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random sequence operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for slices: in-place shuffle and random element choice.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(2usize..=9);
            assert!((2..=9).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
