//! The average-relative-error metric of Eq. (7).
//!
//! The paper prefers the KS statistic but cross-checks with
//!
//! ```text
//! E = (100 / |Q|) * sum_{q in Q} |S_q - S'_q| / S_q
//! ```
//!
//! over a workload `Q` of range queries, where `S_q` is the true result size
//! and `S'_q` the histogram estimate. As the authors note, the value of this
//! metric depends on how the query workload is drawn; this module provides
//! the standard choices (uniform endpoints, data-distributed endpoints, and
//! one-sided open ranges) so that the dependency itself can be reproduced.

use crate::ks::{Cdf, StepCdf};

/// A half-open range predicate `lo <= X < hi` (or one-sided `X < hi`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    /// Inclusive lower endpoint; `None` for an open lower side.
    pub lo: Option<f64>,
    /// Exclusive upper endpoint.
    pub hi: f64,
}

impl RangeQuery {
    /// A closed-below, open-above range `lo <= X < hi`.
    pub fn between(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "range endpoints out of order: [{lo}, {hi})");
        Self { lo: Some(lo), hi }
    }

    /// A one-sided range `X < hi`.
    pub fn less_than(hi: f64) -> Self {
        Self { lo: None, hi }
    }

    /// The fraction of a distribution's mass selected by this query.
    pub fn selectivity(&self, cdf: &impl Cdf) -> f64 {
        let upper = cdf.fraction_lt(self.hi);
        match self.lo {
            None => upper,
            Some(lo) => (upper - cdf.fraction_lt(lo)).max(0.0),
        }
    }
}

/// Eq. (7): mean relative selectivity error (in percent) of `estimate`
/// against `truth` over the query workload.
///
/// Queries whose true selectivity is zero are skipped (the metric is
/// undefined for them, and the paper's formulation divides by `S_q`).
/// Returns `0.0` when no query has positive true selectivity.
pub fn avg_relative_error(truth: &impl Cdf, estimate: &impl Cdf, queries: &[RangeQuery]) -> f64 {
    let mut total = 0.0;
    let mut used = 0usize;
    for q in queries {
        let s_true = q.selectivity(truth);
        if s_true <= 0.0 {
            continue;
        }
        let s_est = q.selectivity(estimate);
        total += (s_true - s_est).abs() / s_true;
        used += 1;
    }
    if used == 0 {
        0.0
    } else {
        100.0 * total / used as f64
    }
}

/// Deterministic workload of `n` closed ranges with endpoints uniform over
/// `[min, max]` (low-discrepancy lattice, so results are reproducible
/// without threading an RNG through the metric).
pub fn uniform_range_workload(min: f64, max: f64, n: usize) -> Vec<RangeQuery> {
    assert!(max > min, "domain must be nonempty");
    assert!(n > 0, "workload must contain at least one query");
    let width = max - min;
    let mut queries = Vec::with_capacity(n);
    // Weyl sequence on the unit square: equidistributed endpoint pairs.
    let (mut u, mut v) = (0.5f64, 0.5f64);
    const A: f64 = 0.754_877_666_246_693; // plastic-number based
    const B: f64 = 0.569_840_290_998_053_1;
    for _ in 0..n {
        u = (u + A) % 1.0;
        v = (v + B) % 1.0;
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        queries.push(RangeQuery::between(min + a * width, min + b * width));
    }
    queries
}

/// Workload of `n` one-sided ranges `X < hi` with `hi` swept uniformly
/// across the domain — the open-range flavor discussed in Section 6.2.
pub fn open_range_workload(min: f64, max: f64, n: usize) -> Vec<RangeQuery> {
    assert!(max > min, "domain must be nonempty");
    assert!(n > 0, "workload must contain at least one query");
    (0..n)
        .map(|i| {
            let t = (i as f64 + 1.0) / (n as f64 + 1.0);
            RangeQuery::less_than(min + t * (max - min))
        })
        .collect()
}

/// Workload whose endpoints are drawn from the data distribution itself:
/// ranges between consecutive-ish support points, the second endpoint
/// distribution the paper mentions.
pub fn data_distributed_workload(truth: &StepCdf, n: usize) -> Vec<RangeQuery> {
    let support = truth.support();
    if support.len() < 2 || n == 0 {
        return Vec::new();
    }
    let m = support.len();
    let mut queries = Vec::with_capacity(n);
    let mut u = 0.5f64;
    let mut v = 0.25f64;
    const A: f64 = 0.754_877_666_246_693;
    const B: f64 = 0.569_840_290_998_053_1;
    for _ in 0..n {
        u = (u + A) % 1.0;
        v = (v + B) % 1.0;
        let i = ((u * m as f64) as usize).min(m - 1);
        let j = ((v * m as f64) as usize).min(m - 1);
        let (a, b) = if support[i] <= support[j] {
            (support[i], support[j])
        } else {
            (support[j], support[i])
        };
        // Nudge the upper endpoint past the value so the closed point is in.
        queries.push(RangeQuery::between(a, b + 0.5));
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ks::StepCdf;

    fn truth() -> StepCdf {
        StepCdf::from_values([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
    }

    #[test]
    fn selectivity_of_full_range_is_one() {
        let t = truth();
        let q = RangeQuery::between(0.0, 10.0);
        assert!((q.selectivity(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selectivity_of_half_range() {
        let t = truth();
        let q = RangeQuery::between(0.0, 5.0); // values 0..=4
        assert!((q.selectivity(&t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn open_range_selectivity() {
        let t = truth();
        assert!((RangeQuery::less_than(3.0).selectivity(&t) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn perfect_estimator_has_zero_error() {
        let t = truth();
        let queries = uniform_range_workload(0.0, 10.0, 64);
        assert_eq!(avg_relative_error(&t, &t, &queries), 0.0);
    }

    #[test]
    fn error_is_positive_for_wrong_estimator() {
        let t = truth();
        let wrong = StepCdf::from_values([0, 0, 0, 0, 0, 9, 9, 9, 9, 9]);
        let queries = uniform_range_workload(0.0, 10.0, 64);
        assert!(avg_relative_error(&t, &wrong, &queries) > 0.0);
    }

    #[test]
    fn zero_selectivity_queries_are_skipped() {
        let t = truth();
        let queries = vec![RangeQuery::between(100.0, 200.0)];
        assert_eq!(avg_relative_error(&t, &t, &queries), 0.0);
    }

    #[test]
    fn workload_generators_produce_requested_sizes() {
        assert_eq!(uniform_range_workload(0.0, 1.0, 17).len(), 17);
        assert_eq!(open_range_workload(0.0, 1.0, 9).len(), 9);
        assert_eq!(data_distributed_workload(&truth(), 12).len(), 12);
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = uniform_range_workload(0.0, 50.0, 8);
        let b = uniform_range_workload(0.0, 50.0, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn range_endpoints_stay_in_domain() {
        for q in uniform_range_workload(10.0, 20.0, 100) {
            let lo = q.lo.expect("closed ranges");
            assert!((10.0..=20.0).contains(&lo));
            assert!((10.0..=20.0).contains(&q.hi));
            assert!(lo <= q.hi);
        }
    }
}
