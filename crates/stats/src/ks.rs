//! Kolmogorov–Smirnov statistic between data distributions (Eq. 6).
//!
//! The paper evaluates every histogram by the KS statistic
//! `D = max_x |F1(x) - F2(x)|` between the *true* cumulative distribution of
//! the data and the cumulative distribution the histogram represents
//! (Section 6.2). `D` has the intuitive interpretation of the maximum
//! possible selectivity error of a one-sided range predicate.
//!
//! The true CDF is a step function (data values are discrete); histogram
//! CDFs are continuous and piecewise linear (uniform-distribution
//! assumption). The supremum of their difference is therefore attained at a
//! step point of the true CDF — approached from the left or evaluated at the
//! point — or at a breakpoint of the histogram CDF. [`ks_between`] evaluates
//! all of these candidate points, so the returned statistic is exact, not a
//! grid approximation.

/// A normalized cumulative distribution function.
///
/// Implementors return the *fraction* of total mass at or below `x`
/// (`fraction_le`), and strictly below `x` (`fraction_lt`, which defaults to
/// `fraction_le` for continuous distributions).
pub trait Cdf {
    /// Fraction of mass `<= x`, in `[0, 1]`.
    fn fraction_le(&self, x: f64) -> f64;

    /// Fraction of mass `< x`. Continuous CDFs keep the default.
    fn fraction_lt(&self, x: f64) -> f64 {
        self.fraction_le(x)
    }

    /// Points at which `|self - other|` can attain its supremum: jump points
    /// for step CDFs, segment borders for piecewise-linear CDFs. May be
    /// empty for smooth CDFs.
    fn breakpoints(&self) -> Vec<f64>;
}

/// An empirical step CDF over discrete `(value, count)` mass points.
///
/// This is the "true data distribution" side of every KS comparison in the
/// paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCdf {
    /// Distinct values in strictly increasing order.
    values: Vec<f64>,
    /// `cumulative[i]` = total mass at values `<= values[i]`.
    cumulative: Vec<f64>,
    /// Total mass.
    total: f64,
}

impl StepCdf {
    /// Builds a step CDF from `(value, count)` pairs.
    ///
    /// Pairs may arrive unsorted and may repeat values; counts must be
    /// nonnegative and zero-count values are dropped.
    ///
    /// # Panics
    /// Panics if any count is negative or not finite.
    pub fn from_counts(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut pts: Vec<(f64, f64)> = pairs
            .into_iter()
            .inspect(|&(v, c)| {
                assert!(v.is_finite(), "value must be finite, got {v}");
                assert!(c.is_finite() && c >= 0.0, "count must be >= 0, got {c}");
            })
            .filter(|&(_, c)| c > 0.0)
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut values = Vec::with_capacity(pts.len());
        let mut cumulative = Vec::with_capacity(pts.len());
        let mut running = 0.0;
        for (v, c) in pts {
            if values.last().is_some_and(|&last: &f64| last == v) {
                running += c;
                *cumulative.last_mut().expect("nonempty") = running;
            } else {
                running += c;
                values.push(v);
                cumulative.push(running);
            }
        }
        Self {
            values,
            cumulative,
            total: running,
        }
    }

    /// Builds a step CDF from raw integer observations (each with mass 1).
    pub fn from_values(values: impl IntoIterator<Item = i64>) -> Self {
        use std::collections::BTreeMap;
        let mut freq: BTreeMap<i64, f64> = BTreeMap::new();
        for v in values {
            *freq.entry(v).or_insert(0.0) += 1.0;
        }
        Self::from_counts(freq.into_iter().map(|(v, c)| (v as f64, c)))
    }

    /// Total mass (number of data points for unit-mass observations).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Whether the distribution carries no mass.
    pub fn is_empty(&self) -> bool {
        self.total == 0.0
    }

    /// Number of distinct mass points.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }

    /// Unnormalized cumulative mass at values `<= x`.
    pub fn mass_le(&self, x: f64) -> f64 {
        match self.values.partition_point(|&v| v <= x) {
            0 => 0.0,
            i => self.cumulative[i - 1],
        }
    }

    /// Unnormalized cumulative mass at values `< x`.
    pub fn mass_lt(&self, x: f64) -> f64 {
        match self.values.partition_point(|&v| v < x) {
            0 => 0.0,
            i => self.cumulative[i - 1],
        }
    }

    /// The distinct values carrying mass, in increasing order.
    pub fn support(&self) -> &[f64] {
        &self.values
    }
}

impl Cdf for StepCdf {
    fn fraction_le(&self, x: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.mass_le(x) / self.total
    }

    fn fraction_lt(&self, x: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.mass_lt(x) / self.total
    }

    fn breakpoints(&self) -> Vec<f64> {
        self.values.clone()
    }
}

/// Exact KS statistic `max_x |a(x) - b(x)|` between two CDFs.
///
/// Evaluates both one-sided limits at every breakpoint of either CDF. For a
/// step function against a piecewise-linear function (the paper's setting)
/// and for step-vs-step or linear-vs-linear comparisons this is exact,
/// because between consecutive candidate points both functions are monotone
/// (indeed linear or constant), so the difference is extremized at the
/// candidates.
///
/// Returns a value in `[0, 1]`; returns `0.0` when both CDFs have no
/// breakpoints.
pub fn ks_between(a: &impl Cdf, b: &impl Cdf) -> f64 {
    let mut points = a.breakpoints();
    points.extend(b.breakpoints());
    points.sort_by(f64::total_cmp);
    points.dedup();

    let mut d: f64 = 0.0;
    for &x in &points {
        let at = (a.fraction_le(x) - b.fraction_le(x)).abs();
        let before = (a.fraction_lt(x) - b.fraction_lt(x)).abs();
        d = d.max(at).max(before);
    }
    d.min(1.0)
}

/// KS statistic restricted to the integer grid:
/// `max_{x integer} |a(x) - b(x)|`.
///
/// For integer-valued data embedded in continuous space (each value `v`
/// occupying `[v, v+1)`), range predicates have integer endpoints, so this
/// is exactly the paper's "maximum error in selectivity of a range
/// predicate" interpretation of the KS statistic. It does not penalize a
/// histogram for distributing a value's mass non-uniformly *within* its
/// unit interval (no integer-endpoint query can observe that).
///
/// Between two consecutive candidate integers both CDFs are monotone, so
/// it suffices to evaluate at the integers adjacent to every breakpoint of
/// either CDF.
pub fn ks_at_integers(a: &impl Cdf, b: &impl Cdf) -> f64 {
    let mut points: Vec<i64> = Vec::new();
    for x in a.breakpoints().into_iter().chain(b.breakpoints()) {
        points.push(x.floor() as i64);
        points.push(x.ceil() as i64);
    }
    points.sort_unstable();
    points.dedup();

    let mut d: f64 = 0.0;
    for &p in &points {
        let x = p as f64;
        let at = (a.fraction_le(x) - b.fraction_le(x)).abs();
        let before = (a.fraction_lt(x) - b.fraction_lt(x)).abs();
        d = d.max(at).max(before);
    }
    d.min(1.0)
}

/// Classic two-sample KS statistic between two empirical step CDFs.
///
/// Convenience wrapper over [`ks_between`] for raw samples.
pub fn ks_two_sample(xs: &[i64], ys: &[i64]) -> f64 {
    let a = StepCdf::from_values(xs.iter().copied());
    let b = StepCdf::from_values(ys.iter().copied());
    ks_between(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_cdf_basic_lookup() {
        let c = StepCdf::from_counts([(1.0, 2.0), (3.0, 1.0), (5.0, 1.0)]);
        assert_eq!(c.total(), 4.0);
        assert_eq!(c.fraction_le(0.0), 0.0);
        assert_eq!(c.fraction_le(1.0), 0.5);
        assert_eq!(c.fraction_lt(1.0), 0.0);
        assert_eq!(c.fraction_le(2.9), 0.5);
        assert_eq!(c.fraction_le(3.0), 0.75);
        assert_eq!(c.fraction_le(100.0), 1.0);
    }

    #[test]
    fn step_cdf_merges_duplicate_values() {
        let c = StepCdf::from_counts([(2.0, 1.0), (2.0, 3.0), (4.0, 1.0)]);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.fraction_le(2.0), 0.8);
    }

    #[test]
    fn step_cdf_drops_zero_counts() {
        let c = StepCdf::from_counts([(1.0, 0.0), (2.0, 5.0)]);
        assert_eq!(c.distinct(), 1);
        assert_eq!(c.total(), 5.0);
    }

    #[test]
    fn step_cdf_from_values_counts_multiplicity() {
        let c = StepCdf::from_values([7, 7, 7, 9]);
        assert_eq!(c.fraction_le(7.0), 0.75);
        assert_eq!(c.fraction_le(9.0), 1.0);
    }

    #[test]
    fn ks_identical_distributions_is_zero() {
        let a = StepCdf::from_values([1, 2, 3, 4, 5]);
        let b = StepCdf::from_values([1, 2, 3, 4, 5]);
        assert_eq!(ks_between(&a, &b), 0.0);
    }

    #[test]
    fn ks_disjoint_supports_is_one() {
        let a = StepCdf::from_values([1, 2, 3]);
        let b = StepCdf::from_values([10, 11, 12]);
        assert!((ks_between(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_single_point_shift() {
        // a has all mass at 0, b has half at 0 and half at 10.
        let a = StepCdf::from_counts([(0.0, 4.0)]);
        let b = StepCdf::from_counts([(0.0, 2.0), (10.0, 2.0)]);
        assert!((ks_between(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_is_symmetric() {
        let a = StepCdf::from_values([1, 1, 2, 8]);
        let b = StepCdf::from_values([2, 3, 4]);
        assert_eq!(ks_between(&a, &b), ks_between(&b, &a));
    }

    #[test]
    fn ks_against_piecewise_linear() {
        /// Linear CDF rising from 0 at x=0 to 1 at x=10.
        struct Ramp;
        impl Cdf for Ramp {
            fn fraction_le(&self, x: f64) -> f64 {
                (x / 10.0).clamp(0.0, 1.0)
            }
            fn breakpoints(&self) -> Vec<f64> {
                vec![0.0, 10.0]
            }
        }
        // All true mass at x = 0: the worst deviation is just below the jump
        // at 0? No: F_true jumps to 1 at 0 while the ramp is 0 there -> D=1.
        let spike = StepCdf::from_counts([(0.0, 1.0)]);
        assert!((ks_between(&spike, &Ramp) - 1.0).abs() < 1e-12);

        // Uniform mass over 0..10 sampled at integer midpoints tracks the
        // ramp within 1/10 + rounding.
        let unif = StepCdf::from_values((0..10).collect::<Vec<_>>());
        let d = ks_between(&unif, &Ramp);
        assert!(d <= 0.11, "got {d}");
    }

    #[test]
    fn integer_grid_ks_ignores_subunit_placement() {
        // Truth: 1 unit of mass uniform over [5, 6). Histogram: the same
        // mass squeezed into [5.3, 5.7). Indistinguishable by any
        // integer-endpoint range predicate.
        struct Seg(f64, f64);
        impl Cdf for Seg {
            fn fraction_le(&self, x: f64) -> f64 {
                ((x - self.0) / (self.1 - self.0)).clamp(0.0, 1.0)
            }
            fn breakpoints(&self) -> Vec<f64> {
                vec![self.0, self.1]
            }
        }
        let truth = Seg(5.0, 6.0);
        let squeezed = Seg(5.3, 5.7);
        assert_eq!(ks_at_integers(&truth, &squeezed), 0.0);
        // The continuous-space statistic does see it.
        assert!(ks_between(&truth, &squeezed) > 0.2);
    }

    #[test]
    fn integer_grid_ks_matches_full_ks_on_integer_breakpoints() {
        let a = StepCdf::from_values([1, 2, 3, 4]);
        let b = StepCdf::from_values([3, 4, 5, 6]);
        assert_eq!(ks_at_integers(&a, &b), ks_between(&a, &b));
    }

    #[test]
    fn two_sample_helper_matches_manual() {
        let xs = [1, 2, 3, 4];
        let ys = [3, 4, 5, 6];
        let d = ks_two_sample(&xs, &ys);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_all_zero() {
        let e = StepCdf::from_counts(std::iter::empty::<(f64, f64)>());
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(3.0), 0.0);
        let a = StepCdf::from_values([1]);
        assert!((ks_between(&a, &e) - 1.0).abs() < 1e-12);
    }
}
