//! Log-gamma and regularized incomplete gamma functions.
//!
//! The Dynamic Compressed histogram triggers repartitioning when the
//! chi-square significance level drops below `alpha_min` (Section 3). The
//! significance level is `Q(df/2, chi2/2)` where `Q` is the regularized upper
//! incomplete gamma function. The implementations below follow the classic
//! *Numerical Recipes in C* treatment (`gammln`, `gser`, `gcf`) that the
//! paper itself cites (\[7\]), with f64-appropriate iteration limits.

/// Maximum number of series / continued-fraction iterations.
const ITMAX: usize = 500;
/// Relative accuracy target.
const EPS: f64 = 3.0e-12;
/// Number near the smallest representable normalized f64 quotient.
const FPMIN: f64 = 1.0e-300;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with the g = 5, n = 6 coefficient set, giving
/// relative error below `2e-10` across the positive reals — far more than
/// enough for p-value thresholding at `1e-6`.
///
/// # Panics
/// Panics if `x <= 0` (the reflection formula is not needed by this crate).
///
/// # Examples
/// ```
/// let lg = dh_stats::ln_gamma(5.0);
/// assert!((lg - (24.0f64).ln()).abs() < 1e-9); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. For `x < a + 1` the series
/// representation converges fastest; otherwise we use `1 - Q(a, x)` via the
/// continued fraction.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// This is the chi-square survival function after substituting
/// `a = df / 2`, `x = chi2 / 2`.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series representation of `P(a, x)`; converges quickly for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..ITMAX {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Modified-Lentz continued fraction evaluation of `Q(a, x)`; converges
/// quickly for `x >= a + 1`.
fn gamma_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=ITMAX {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            assert_close(ln_gamma(f64::from(n)), fact.ln(), 1e-8);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-9);
        // Γ(3/2) = sqrt(pi)/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-9,
        );
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.3, 1.0, 2.5, 7.0, 42.0] {
            for &x in &[0.0, 0.1, 1.0, 3.0, 10.0, 80.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert_close(p + q, 1.0, 1e-10);
                assert!((0.0..=1.0).contains(&p), "P out of range: {p}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x) (chi-square with 2 df).
        for &x in &[0.01, 0.5, 1.0, 2.0, 5.0, 20.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..200 {
            let x = f64::from(i) * 0.25;
            let p = gamma_p(3.7, x);
            assert!(p >= prev, "P(a,x) must be nondecreasing in x");
            prev = p;
        }
    }

    #[test]
    fn gamma_q_known_values() {
        // Q(0.5, x) = erfc(sqrt(x)); Q(0.5, 1.96^2/2)... use published
        // chi-square table: P(chi2 <= 3.841 | df=1) = 0.95.
        assert_close(gamma_q(0.5, 3.841 / 2.0), 0.05, 5e-4);
        // P(chi2 <= 5.991 | df=2) = 0.95.
        assert_close(gamma_q(1.0, 5.991 / 2.0), 0.05, 5e-4);
        // P(chi2 <= 18.307 | df=10) = 0.95.
        assert_close(gamma_q(5.0, 18.307 / 2.0), 0.05, 5e-4);
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn gamma_p_rejects_nonpositive_a() {
        let _ = gamma_p(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "requires x >= 0")]
    fn gamma_q_rejects_negative_x() {
        let _ = gamma_q(1.0, -0.5);
    }
}
