//! Statistical machinery used throughout the dynamic-histograms reproduction.
//!
//! This crate is a dependency-free substrate providing:
//!
//! * [`gamma`] — the log-gamma function and the regularized incomplete gamma
//!   functions `P(a, x)` / `Q(a, x)` (Numerical Recipes style series and
//!   continued-fraction evaluations). These back the chi-square probability
//!   function that the Dynamic Compressed histogram uses to decide when to
//!   repartition (Section 3 of the paper).
//! * [`chi2`] — the chi-square statistic of Eq. (1) and its survival
//!   function / p-value, plus the uniformity test used by DC.
//! * [`ks`] — the Kolmogorov–Smirnov statistic of Eq. (6), the paper's
//!   histogram quality metric (Section 6.2), computed *exactly* between a
//!   stepwise empirical CDF and any other CDF.
//! * [`metrics`] — the average-relative-error metric of Eq. (7), kept for
//!   cross-checking the KS results exactly as the authors did.
//!
//! All functions are deterministic and allocation-light; the chi-square
//! p-value is evaluated on every insertion by the DC histogram, so the hot
//! paths here matter.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chi2;
pub mod gamma;
pub mod ks;
pub mod metrics;

pub use chi2::{chi2_pvalue, chi2_statistic_uniform, UniformityTest};
pub use gamma::{gamma_p, gamma_q, ln_gamma};
pub use ks::{ks_at_integers, ks_between, Cdf, StepCdf};
pub use metrics::{avg_relative_error, RangeQuery};
