//! Chi-square statistic and the bucket-uniformity test of Section 3.
//!
//! The Dynamic Compressed histogram keeps the null hypothesis *"counts in
//! regular buckets are uniformly distributed"* and repartitions only when
//! the hypothesis is rejected at significance `alpha_min` (the paper uses
//! `1e-6`). The statistic is Eq. (1):
//!
//! ```text
//! chi2 = sum_i (c_i - e_i)^2 / e_i
//! ```
//!
//! with `e_i` the average regular-bucket count.

use crate::gamma::gamma_q;

/// Chi-square statistic of observed counts against explicit expected counts.
///
/// Terms with non-positive expectation are skipped (they carry no
/// information under the null hypothesis and would otherwise divide by
/// zero).
///
/// # Examples
/// ```
/// let chi2 = dh_stats::chi2::chi2_statistic(&[8.0, 12.0], &[10.0, 10.0]);
/// assert!((chi2 - 0.8).abs() < 1e-12);
/// ```
pub fn chi2_statistic(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| {
            let d = o - e;
            d * d / e
        })
        .sum()
}

/// Chi-square statistic of counts against the uniform expectation (their
/// mean), exactly as DC applies Eq. (1) to its regular buckets.
///
/// Returns `0.0` for fewer than two counts or when all counts are zero
/// (a uniform — indeed empty — configuration cannot violate uniformity).
pub fn chi2_statistic_uniform(observed: &[f64]) -> f64 {
    if observed.len() < 2 {
        return 0.0;
    }
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    observed
        .iter()
        .map(|&o| {
            let d = o - mean;
            d * d / mean
        })
        .sum()
}

/// Survival function of the chi-square distribution: the probability that a
/// chi-square variable with `df` degrees of freedom exceeds `chi2`.
///
/// This is the "Chi-square probability function" of the paper (via \[7\],
/// *Numerical Recipes*): `Q(df/2, chi2/2)`.
///
/// # Panics
/// Panics if `df <= 0` or `chi2 < 0`.
pub fn chi2_pvalue(chi2: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    assert!(chi2 >= 0.0, "chi2 must be nonnegative, got {chi2}");
    gamma_q(df / 2.0, chi2 / 2.0)
}

/// The repartitioning trigger used by the Dynamic Compressed histogram.
///
/// `alpha_min` is the lower bound on the significance level: the test
/// reports a violation (and DC repartitions) when the p-value of the
/// observed counts falls to `alpha_min` or below. Setting `alpha_min = 0`
/// freezes the histogram forever; `alpha_min = 1` repartitions after every
/// insertion (Section 3). The paper's default is `1e-6`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityTest {
    /// Lower bound on the significance level below which the null
    /// hypothesis (uniform bucket counts) is rejected.
    pub alpha_min: f64,
}

impl Default for UniformityTest {
    /// The paper's experimental setting, `alpha_min = 1e-6`.
    fn default() -> Self {
        Self { alpha_min: 1e-6 }
    }
}

impl UniformityTest {
    /// Creates a test with the given significance floor.
    ///
    /// # Panics
    /// Panics unless `0 <= alpha_min <= 1`.
    pub fn new(alpha_min: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha_min),
            "alpha_min must lie in [0, 1], got {alpha_min}"
        );
        Self { alpha_min }
    }

    /// The p-value of the uniformity hypothesis for these bucket counts,
    /// using `len - 1` degrees of freedom.
    pub fn pvalue(&self, counts: &[f64]) -> f64 {
        if counts.len() < 2 {
            return 1.0;
        }
        let chi2 = chi2_statistic_uniform(counts);
        if chi2 == 0.0 {
            return 1.0;
        }
        chi2_pvalue(chi2, (counts.len() - 1) as f64)
    }

    /// Whether the uniformity hypothesis is rejected, i.e. whether DC should
    /// repartition now.
    pub fn is_violated(&self, counts: &[f64]) -> bool {
        if self.alpha_min <= 0.0 {
            return false; // frozen histogram
        }
        if self.alpha_min >= 1.0 {
            return counts.len() >= 2; // repartition on every update
        }
        self.pvalue(counts) <= self.alpha_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistic_zero_for_uniform_counts() {
        assert_eq!(chi2_statistic_uniform(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn statistic_grows_with_imbalance() {
        let mild = chi2_statistic_uniform(&[9.0, 11.0, 10.0, 10.0]);
        let wild = chi2_statistic_uniform(&[1.0, 19.0, 10.0, 10.0]);
        assert!(wild > mild);
        assert!(mild > 0.0);
    }

    #[test]
    fn statistic_empty_and_singleton() {
        assert_eq!(chi2_statistic_uniform(&[]), 0.0);
        assert_eq!(chi2_statistic_uniform(&[42.0]), 0.0);
        assert_eq!(chi2_statistic_uniform(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn explicit_expected_matches_uniform_path() {
        let obs = [3.0, 7.0, 5.0, 9.0];
        let mean = 6.0;
        let expected = [mean; 4];
        assert!((chi2_statistic(&obs, &expected) - chi2_statistic_uniform(&obs)).abs() < 1e-12);
    }

    #[test]
    fn pvalue_near_one_for_balanced_counts() {
        let t = UniformityTest::default();
        assert!(t.pvalue(&[100.0, 101.0, 99.0, 100.0]) > 0.9);
        assert!(!t.is_violated(&[100.0, 101.0, 99.0, 100.0]));
    }

    #[test]
    fn pvalue_tiny_for_extreme_imbalance() {
        let t = UniformityTest::default();
        let counts = vec![1000.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert!(t.pvalue(&counts) < 1e-6);
        assert!(t.is_violated(&counts));
    }

    #[test]
    fn alpha_zero_freezes() {
        let t = UniformityTest::new(0.0);
        assert!(!t.is_violated(&[1000.0, 1.0, 1.0]));
    }

    #[test]
    fn alpha_one_always_fires() {
        let t = UniformityTest::new(1.0);
        assert!(t.is_violated(&[10.0, 10.0]));
        assert!(!t.is_violated(&[10.0])); // a single bucket can't violate
    }

    #[test]
    fn pvalue_decreases_as_imbalance_grows() {
        let t = UniformityTest::default();
        let mut prev = 1.0;
        for k in 0..10 {
            let hot = 10.0 + 30.0 * f64::from(k);
            let counts = [hot, 10.0, 10.0, 10.0, 10.0];
            let p = t.pvalue(&counts);
            assert!(p <= prev + 1e-12, "p-value should fall as skew rises");
            prev = p;
        }
    }

    #[test]
    fn pvalue_matches_table_df3() {
        // chi2 = 7.815 at df = 3 has p = 0.05.
        let p = chi2_pvalue(7.815, 3.0);
        assert!((p - 0.05).abs() < 5e-4, "got {p}");
    }
}
