//! Cluster shapes: how points are scattered around a cluster center.
//!
//! The paper fixes the cluster shape to Normal for all reported results but
//! describes uniform and exponential shapes as alternatives that made no
//! significant difference; all three are implemented so that claim can be
//! checked.

use rand::Rng;

/// The within-cluster point distribution (paper Section 6.1, dimension
/// "shape of clusters").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterShape {
    /// Gaussian around the center with the configured standard deviation —
    /// the paper's fixed choice for all reported figures.
    #[default]
    Normal,
    /// Uniform over `center ± sqrt(3)·sd` (matching the requested standard
    /// deviation).
    Uniform,
    /// Double-exponential (Laplace) around the center with scale `sd/√2`
    /// (matching the requested standard deviation).
    Exponential,
}

impl ClusterShape {
    /// Draws one point around `center` with standard deviation `sd`,
    /// clamped to `[domain_min, domain_max]` and rounded to the integer
    /// grid, as the paper's integer datasets require.
    ///
    /// `sd == 0` collapses the cluster to a single value ("if zero, each
    /// cluster has a single value").
    pub fn sample<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        center: f64,
        sd: f64,
        domain_min: i64,
        domain_max: i64,
    ) -> i64 {
        debug_assert!(sd >= 0.0, "standard deviation must be nonnegative");
        let raw = if sd == 0.0 {
            center
        } else {
            match self {
                ClusterShape::Normal => center + sd * sample_standard_normal(rng),
                ClusterShape::Uniform => {
                    let half = 3.0f64.sqrt() * sd;
                    center + rng.gen_range(-half..=half)
                }
                ClusterShape::Exponential => {
                    // Laplace via inverse CDF; variance = 2·scale² = sd².
                    let scale = sd / std::f64::consts::SQRT_2;
                    let u: f64 = rng.gen_range(-0.5..0.5);
                    center - scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
                }
            }
        };
        (raw.round() as i64).clamp(domain_min, domain_max)
    }
}

/// Standard normal deviate via Marsaglia's polar method.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(samples: &[i64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    #[test]
    fn zero_sd_collapses_to_center() {
        let mut rng = StdRng::seed_from_u64(1);
        for shape in [
            ClusterShape::Normal,
            ClusterShape::Uniform,
            ClusterShape::Exponential,
        ] {
            for _ in 0..100 {
                assert_eq!(shape.sample(&mut rng, 42.0, 0.0, 0, 5000), 42);
            }
        }
    }

    #[test]
    fn samples_respect_domain_clamp() {
        let mut rng = StdRng::seed_from_u64(2);
        for shape in [
            ClusterShape::Normal,
            ClusterShape::Uniform,
            ClusterShape::Exponential,
        ] {
            for _ in 0..1000 {
                let v = shape.sample(&mut rng, 2.0, 50.0, 0, 100);
                assert!((0..=100).contains(&v), "{shape:?} escaped domain: {v}");
            }
        }
    }

    #[test]
    fn normal_shape_matches_requested_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<i64> = (0..60_000)
            .map(|_| ClusterShape::Normal.sample(&mut rng, 2500.0, 10.0, 0, 5000))
            .collect();
        let (mean, sd) = stats(&samples);
        assert!((mean - 2500.0).abs() < 0.5, "mean {mean}");
        assert!((sd - 10.0).abs() < 0.5, "sd {sd}");
    }

    #[test]
    fn uniform_shape_matches_requested_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<i64> = (0..60_000)
            .map(|_| ClusterShape::Uniform.sample(&mut rng, 2500.0, 10.0, 0, 5000))
            .collect();
        let (mean, sd) = stats(&samples);
        assert!((mean - 2500.0).abs() < 0.5, "mean {mean}");
        assert!((sd - 10.0).abs() < 0.6, "sd {sd}");
        // Uniform support is bounded by sqrt(3)*sd.
        assert!(samples.iter().all(|&v| (v - 2500).abs() <= 19));
    }

    #[test]
    fn exponential_shape_matches_requested_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<i64> = (0..60_000)
            .map(|_| ClusterShape::Exponential.sample(&mut rng, 2500.0, 10.0, 0, 5000))
            .collect();
        let (mean, sd) = stats(&samples);
        assert!((mean - 2500.0).abs() < 0.5, "mean {mean}");
        assert!((sd - 10.0).abs() < 0.6, "sd {sd}");
    }
}
