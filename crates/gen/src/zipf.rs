//! Zipf distributions (reference \[15\] of the paper).
//!
//! The paper's generator uses Zipf laws in three places: the skew of cluster
//! sizes (`Z`), the skew of the gaps between cluster centers (`S`), and, in
//! the shared-nothing experiments, the intrasite value skew (`Z_Freq`) and
//! the skew of member sizes (`Z_Site`). All follow
//! `P(rank i) ∝ 1 / i^theta` with `theta = 0` degenerating to uniform.

use rand::Rng;

/// A finite Zipf distribution over ranks `1..=n` with exponent `theta`.
///
/// `theta = 0` is the uniform distribution; larger `theta` concentrates
/// probability on low ranks. The paper sweeps `theta` in `[0, 3]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Probability of each rank (index 0 holds rank 1), summing to 1.
    probabilities: Vec<f64>,
    /// Cumulative probabilities for inverse-CDF sampling.
    cumulative: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with skew `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0`, or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and >= 0, got {theta}"
        );
        let mut probabilities: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let norm: f64 = probabilities.iter().sum();
        for p in &mut probabilities {
            *p /= norm;
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &probabilities {
            acc += p;
            cumulative.push(acc);
        }
        // Guard against rounding: the last cumulative must reach 1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self {
            probabilities,
            cumulative,
            theta,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// True iff the distribution has no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// The skew parameter this distribution was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i` (1-based).
    ///
    /// # Panics
    /// Panics if `rank` is 0 or exceeds `len()`.
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(
            rank >= 1 && rank <= self.len(),
            "rank {rank} out of 1..={}",
            self.len()
        );
        self.probabilities[rank - 1]
    }

    /// All rank probabilities, highest rank (most probable) first.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Samples a 1-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u) + 1
    }

    /// Splits an integer `total` into `len()` parts proportional to the rank
    /// probabilities, using largest-remainder apportionment so the parts sum
    /// to exactly `total`.
    ///
    /// This is how the generator assigns 100,000 points to `C` clusters and
    /// how the shared-nothing experiments size their member sites.
    pub fn apportion(&self, total: u64) -> Vec<u64> {
        let n = self.len();
        let mut parts: Vec<u64> = Vec::with_capacity(n);
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut assigned: u64 = 0;
        for (i, &p) in self.probabilities.iter().enumerate() {
            let exact = p * total as f64;
            let floor = exact.floor() as u64;
            parts.push(floor);
            assigned += floor;
            remainders.push((exact - floor as f64, i));
        }
        // Hand the leftover units to the largest remainders (ties broken by
        // rank, so the result is deterministic).
        let mut leftover = total - assigned;
        remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, i) in &remainders {
            if leftover == 0 {
                break;
            }
            parts[i] += 1;
            leftover -= 1;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for rank in 1..=4 {
            assert!((z.probability(rank) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for &theta in &[0.0, 0.5, 1.0, 2.0, 3.0] {
            let z = Zipf::new(100, theta);
            let sum: f64 = z.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta={theta}: sum={sum}");
        }
    }

    #[test]
    fn higher_theta_concentrates_rank_one() {
        let p1: Vec<f64> = [0.0, 1.0, 2.0, 3.0]
            .iter()
            .map(|&t| Zipf::new(50, t).probability(1))
            .collect();
        assert!(p1.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn probabilities_nonincreasing_in_rank() {
        let z = Zipf::new(30, 1.5);
        let p = z.probabilities();
        assert!(p.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn apportion_sums_exactly() {
        for &theta in &[0.0, 1.0, 2.7] {
            let z = Zipf::new(7, theta);
            for &total in &[0u64, 1, 10, 99, 100_000] {
                let parts = z.apportion(total);
                assert_eq!(parts.iter().sum::<u64>(), total);
                assert_eq!(parts.len(), 7);
            }
        }
    }

    #[test]
    fn apportion_respects_skew_ordering() {
        let z = Zipf::new(5, 2.0);
        let parts = z.apportion(1000);
        assert!(parts.windows(2).all(|w| w[0] >= w[1]), "{parts:?}");
        assert!(parts[0] > parts[4]);
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for rank in 1..=5 {
            let expected = z.probability(rank);
            let observed = counts[rank - 1] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {rank}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be finite")]
    fn negative_theta_rejected() {
        let _ = Zipf::new(3, -1.0);
    }
}
