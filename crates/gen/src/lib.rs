//! Synthetic data distributions and update workloads for histogram
//! evaluation — the substrate behind Sections 6.1 and 7 of *Dynamic
//! Histograms: Capturing Evolving Data Sets*.
//!
//! The paper evaluates every algorithm on a parameterizable family of
//! clustered integer distributions:
//!
//! * cluster **centers** spread over the domain with Zipf-skewed gaps
//!   (parameter `S`),
//! * cluster **sizes** Zipf-skewed (parameter `Z`),
//! * per-cluster **shape** (normal by default) with standard deviation `SD`,
//! * `C` clusters, 100,000 points over `[0, 5000]` by default,
//! * random correlation between spreads and frequencies.
//!
//! On top of the datasets, [`workload`] builds the five update patterns of
//! Section 7 (random inserts, sorted inserts, mixed inserts/deletes, inserts
//! followed by deletes, sorted inserts followed by sorted deletes), and
//! [`mailorder`] synthesizes a stand-in for the paper's proprietary
//! mail-order trace (see DESIGN.md for the substitution rationale).
//!
//! Everything is seeded explicitly; the same seed always yields the same
//! dataset and the same update stream.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod mailorder;
pub mod synthetic;
pub mod workload;
pub mod zipf;

pub use cluster::ClusterShape;
pub use synthetic::{SyntheticConfig, SyntheticDataset};
pub use workload::{Update, UpdateStream, WorkloadKind};
pub use zipf::Zipf;

/// Exact frequency table of a value multiset, sorted by value.
///
/// The "true distribution" side of every evaluation in the paper.
pub fn frequency_table(values: &[i64]) -> Vec<(i64, u64)> {
    use std::collections::BTreeMap;
    let mut freq: BTreeMap<i64, u64> = BTreeMap::new();
    for &v in values {
        *freq.entry(v).or_insert(0) += 1;
    }
    freq.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_table_counts_and_sorts() {
        let t = frequency_table(&[5, 3, 5, 5, 3, 1]);
        assert_eq!(t, vec![(1, 1), (3, 2), (5, 3)]);
    }

    #[test]
    fn frequency_table_empty() {
        assert!(frequency_table(&[]).is_empty());
    }
}
