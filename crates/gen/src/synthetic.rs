//! The parameterized synthetic distribution family of Section 6.1.
//!
//! Data contains `C` clusters over an integer domain. Cluster centers are
//! placed so the *gaps* between consecutive centers follow a Zipf law with
//! parameter `S`; cluster sizes follow a Zipf law with parameter `Z`; both
//! assignments are randomly permuted (the paper's "spread frequency
//! correlation fixed to random"). Each cluster scatters its points with the
//! configured [`ClusterShape`] and standard deviation `SD`.
//!
//! Reference configuration of the paper: `S = 1, Z = 1, SD = 2, C = 2000`,
//! 100,000 points over `[0, 5000]`.

use crate::cluster::ClusterShape;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic distribution family.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Inclusive lower bound of the integer value domain.
    pub domain_min: i64,
    /// Inclusive upper bound of the integer value domain (paper: 5000).
    pub domain_max: i64,
    /// Total number of data points (paper: 100,000).
    pub total_points: u64,
    /// Number of clusters `C` (paper: 2000 for the dynamic sweeps, 50 for
    /// the static comparison, 200/1000 elsewhere).
    pub clusters: usize,
    /// Zipf skew `S` of the spreads between cluster centers.
    pub center_spread_skew: f64,
    /// Zipf skew `Z` of cluster sizes.
    pub size_skew: f64,
    /// Standard deviation `SD` within a cluster; `0` collapses each cluster
    /// to a single value.
    pub cluster_sd: f64,
    /// Within-cluster shape (paper: fixed to Normal).
    pub shape: ClusterShape,
}

impl Default for SyntheticConfig {
    /// The paper's reference distribution: `S = 1, Z = 1, SD = 2, C = 2000`,
    /// 100,000 integers over `[0, 5000]`.
    fn default() -> Self {
        Self {
            domain_min: 0,
            domain_max: 5000,
            total_points: 100_000,
            clusters: 2000,
            center_spread_skew: 1.0,
            size_skew: 1.0,
            cluster_sd: 2.0,
            shape: ClusterShape::Normal,
        }
    }
}

impl SyntheticConfig {
    /// The reference configuration with a different cluster count, used by
    /// the static-histogram figures (`C = 50`) and the timing/disk-space
    /// figures (`C = 200`, `C = 1000`).
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        self.clusters = clusters;
        self
    }

    /// Sets the center-spread skew `S`.
    pub fn with_spread_skew(mut self, s: f64) -> Self {
        self.center_spread_skew = s;
        self
    }

    /// Sets the cluster-size skew `Z`.
    pub fn with_size_skew(mut self, z: f64) -> Self {
        self.size_skew = z;
        self
    }

    /// Sets the within-cluster standard deviation `SD`.
    pub fn with_cluster_sd(mut self, sd: f64) -> Self {
        self.cluster_sd = sd;
        self
    }

    /// Sets the inclusive value domain `[min, max]` (the serving-layer
    /// replays shrink it for quick runs; skew sweeps widen it).
    pub fn with_domain(mut self, min: i64, max: i64) -> Self {
        self.domain_min = min;
        self.domain_max = max;
        self
    }

    /// Sets the total number of points.
    pub fn with_total_points(mut self, n: u64) -> Self {
        self.total_points = n;
        self
    }

    /// Generates a dataset from this configuration and a seed.
    ///
    /// # Panics
    /// Panics on degenerate configurations (empty domain, zero clusters).
    pub fn generate(&self, seed: u64) -> SyntheticDataset {
        assert!(
            self.domain_max > self.domain_min,
            "domain must contain at least two values"
        );
        assert!(self.clusters > 0, "need at least one cluster");
        let mut rng = StdRng::seed_from_u64(seed);

        let centers = self.cluster_centers(&mut rng);
        let sizes = self.cluster_sizes(&mut rng);
        debug_assert_eq!(centers.len(), sizes.len());

        let mut values = Vec::with_capacity(self.total_points as usize);
        for (&center, &size) in centers.iter().zip(&sizes) {
            for _ in 0..size {
                values.push(self.shape.sample(
                    &mut rng,
                    center,
                    self.cluster_sd,
                    self.domain_min,
                    self.domain_max,
                ));
            }
        }
        SyntheticDataset {
            values,
            centers,
            sizes,
            config: self.clone(),
        }
    }

    /// Places cluster centers so consecutive gaps are Zipf(`S`)-distributed,
    /// randomly permuted across positions (random spread-frequency
    /// correlation), scaled to span the domain.
    fn cluster_centers(&self, rng: &mut StdRng) -> Vec<f64> {
        let width = (self.domain_max - self.domain_min) as f64;
        if self.clusters == 1 {
            return vec![self.domain_min as f64 + width / 2.0];
        }
        let gaps_dist = Zipf::new(self.clusters, self.center_spread_skew);
        // `clusters` gaps: before the first center and between consecutive
        // centers; the sum of probabilities is 1 so the last center lands at
        // domain_max after scaling by `width`.
        let mut gaps: Vec<f64> = gaps_dist.probabilities().to_vec();
        gaps.shuffle(rng);
        let mut centers = Vec::with_capacity(self.clusters);
        let mut pos = self.domain_min as f64;
        for gap in gaps {
            pos += gap * width;
            centers.push(pos.min(self.domain_max as f64));
        }
        centers
    }

    /// Splits `total_points` into Zipf(`Z`)-proportioned cluster sizes,
    /// randomly permuted across clusters.
    fn cluster_sizes(&self, rng: &mut StdRng) -> Vec<u64> {
        let sizes_dist = Zipf::new(self.clusters, self.size_skew);
        let mut sizes = sizes_dist.apportion(self.total_points);
        sizes.shuffle(rng);
        sizes
    }
}

/// A generated dataset together with its ground-truth structure.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The raw data points, grouped by cluster in generation order (callers
    /// wanting a random or sorted stream should go through
    /// [`crate::workload`]).
    pub values: Vec<i64>,
    /// Cluster centers actually used.
    pub centers: Vec<f64>,
    /// Number of points drawn per cluster.
    pub sizes: Vec<u64>,
    /// The configuration that produced this dataset.
    pub config: SyntheticConfig,
}

impl SyntheticDataset {
    /// Exact `(value, frequency)` table, sorted by value.
    pub fn frequency_table(&self) -> Vec<(i64, u64)> {
        crate::frequency_table(&self.values)
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dataset contains no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A uniformly shuffled copy of the values (random insertion order).
    pub fn shuffled(&self, seed: u64) -> Vec<i64> {
        let mut v = self.values.clone();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    /// A sorted copy of the values (sorted insertion order).
    pub fn sorted(&self) -> Vec<i64> {
        let mut v = self.values.clone();
        v.sort_unstable();
        v
    }

    /// Draws `n` values i.i.d. from the dataset's empirical distribution —
    /// used when an experiment needs "more data like this".
    pub fn resample(&self, n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| self.values[rng.gen_range(0..self.values.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_reference() {
        let c = SyntheticConfig::default();
        assert_eq!(c.total_points, 100_000);
        assert_eq!(c.clusters, 2000);
        assert_eq!((c.domain_min, c.domain_max), (0, 5000));
        assert_eq!(c.center_spread_skew, 1.0);
        assert_eq!(c.size_skew, 1.0);
        assert_eq!(c.cluster_sd, 2.0);
    }

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            total_points: 5000,
            clusters: 50,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn generates_exactly_total_points() {
        let d = small().generate(1);
        assert_eq!(d.len(), 5000);
        assert_eq!(d.sizes.iter().sum::<u64>(), 5000);
    }

    #[test]
    fn values_stay_in_domain() {
        let d = small().generate(2);
        assert!(d.values.iter().all(|&v| (0..=5000).contains(&v)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().generate(7);
        let b = small().generate(7);
        assert_eq!(a.values, b.values);
        let c = small().generate(8);
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn centers_are_increasing_and_span_domain() {
        let d = small().generate(3);
        assert!(d.centers.windows(2).all(|w| w[0] <= w[1]));
        assert!(*d.centers.last().unwrap() <= 5000.0);
        assert!(d.centers[0] >= 0.0);
        // With S=1 and 50 clusters, the largest gap is half the... just
        // check the last center is near the domain end (gaps sum to width).
        assert!(*d.centers.last().unwrap() > 4999.0);
    }

    #[test]
    fn sd_zero_gives_single_valued_clusters() {
        let cfg = SyntheticConfig {
            cluster_sd: 0.0,
            total_points: 2000,
            clusters: 20,
            ..SyntheticConfig::default()
        };
        let d = cfg.generate(4);
        let distinct = d.frequency_table().len();
        assert!(
            distinct <= 20,
            "expected at most one value per cluster, got {distinct}"
        );
    }

    #[test]
    fn higher_size_skew_concentrates_mass() {
        let base = small();
        let flat = base.clone().with_size_skew(0.0).generate(5);
        let skewed = base.with_size_skew(3.0).generate(5);
        let max_flat = *flat.sizes.iter().max().unwrap() as f64 / 5000.0;
        let max_skewed = *skewed.sizes.iter().max().unwrap() as f64 / 5000.0;
        assert!(
            max_skewed > 2.0 * max_flat,
            "skewed max share {max_skewed} vs flat {max_flat}"
        );
    }

    #[test]
    fn spread_skew_zero_spaces_centers_evenly() {
        let d = small().with_spread_skew(0.0).generate(6);
        let gaps: Vec<f64> = d.centers.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        for g in gaps {
            assert!((g - mean).abs() < 1e-6, "uneven gap {g} vs mean {mean}");
        }
    }

    #[test]
    fn shuffled_and_sorted_preserve_multiset() {
        let d = small().generate(9);
        let mut a = d.shuffled(1);
        let mut b = d.sorted();
        a.sort_unstable();
        assert_eq!(a, b);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn resample_draws_from_support() {
        let d = small().generate(10);
        use std::collections::HashSet;
        let support: HashSet<i64> = d.values.iter().copied().collect();
        for v in d.resample(1000, 11) {
            assert!(support.contains(&v));
        }
    }
}
