//! The five update patterns of Section 7.
//!
//! Every evaluation in the paper feeds a histogram with a stream of
//! insertions and deletions drawn from a dataset:
//!
//! 1. random insertions,
//! 2. sorted insertions,
//! 3. random insertions intermixed with random deletions,
//! 4. random insertions followed by random deletions,
//! 5. sorted insertions followed by sorted deletions.
//!
//! [`UpdateStream`] materializes each as a `Vec<Update>` so experiments can
//! replay identical streams against every competing histogram.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A single histogram maintenance operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// Insert one occurrence of the value.
    Insert(i64),
    /// Delete one previously inserted occurrence of the value.
    Delete(i64),
}

impl Update {
    /// The value carried by this update.
    pub fn value(self) -> i64 {
        match self {
            Update::Insert(v) | Update::Delete(v) => v,
        }
    }

    /// Whether this update is an insertion.
    pub fn is_insert(self) -> bool {
        matches!(self, Update::Insert(_))
    }
}

impl From<Update> for dh_core::UpdateOp {
    /// Workload updates and histogram maintenance ops are the same
    /// two-armed enum; this bridge lets generated streams feed the
    /// object-safe `DynHistogram::apply_slice` directly.
    fn from(u: Update) -> Self {
        match u {
            Update::Insert(v) => dh_core::UpdateOp::Insert(v),
            Update::Delete(v) => dh_core::UpdateOp::Delete(v),
        }
    }
}

impl From<dh_core::UpdateOp> for Update {
    fn from(op: dh_core::UpdateOp) -> Self {
        match op {
            dh_core::UpdateOp::Insert(v) => Update::Insert(v),
            dh_core::UpdateOp::Delete(v) => Update::Delete(v),
        }
    }
}

/// The update patterns of the paper's Section 7 evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// 1(a): values inserted in uniformly random order.
    RandomInsertions,
    /// 1(b): values inserted in nondecreasing value order.
    SortedInsertions,
    /// 1(c): random insertions, each followed by a random deletion of a
    /// still-live value with this probability (paper uses 0.25).
    InsertionsWithRandomDeletions {
        /// Probability that an insertion is followed by a deletion.
        delete_probability: f64,
    },
    /// 1(d): all values inserted in random order, then this fraction of
    /// them deleted in random order.
    InsertionsThenRandomDeletions {
        /// Fraction of the inserted values to delete afterwards, in `[0,1]`.
        delete_fraction: f64,
    },
    /// 1(e): all values inserted sorted ascending, then this fraction
    /// deleted sorted ascending (deletions eat the histogram from the left).
    SortedInsertionsThenSortedDeletions {
        /// Fraction of the inserted values to delete afterwards, in `[0,1]`.
        delete_fraction: f64,
    },
}

/// A replayable stream of updates with the live multiset they produce.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    updates: Vec<Update>,
}

impl UpdateStream {
    /// Builds the update stream for `kind` over the dataset `values`.
    ///
    /// The same `(values, kind, seed)` triple always produces the same
    /// stream, so competing histograms can be fed identical updates.
    ///
    /// # Panics
    /// Panics if a probability/fraction parameter lies outside `[0, 1]`.
    pub fn build(values: &[i64], kind: WorkloadKind, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = match kind {
            WorkloadKind::RandomInsertions => {
                let mut v = values.to_vec();
                v.shuffle(&mut rng);
                v.into_iter().map(Update::Insert).collect()
            }
            WorkloadKind::SortedInsertions => {
                let mut v = values.to_vec();
                v.sort_unstable();
                v.into_iter().map(Update::Insert).collect()
            }
            WorkloadKind::InsertionsWithRandomDeletions { delete_probability } => {
                assert!(
                    (0.0..=1.0).contains(&delete_probability),
                    "delete probability must be in [0,1]"
                );
                let mut v = values.to_vec();
                v.shuffle(&mut rng);
                let mut live: Vec<i64> = Vec::with_capacity(v.len());
                let mut updates = Vec::with_capacity(v.len() * 2);
                for x in v {
                    updates.push(Update::Insert(x));
                    live.push(x);
                    if !live.is_empty() && rng.gen::<f64>() < delete_probability {
                        let idx = rng.gen_range(0..live.len());
                        let victim = live.swap_remove(idx);
                        updates.push(Update::Delete(victim));
                    }
                }
                updates
            }
            WorkloadKind::InsertionsThenRandomDeletions { delete_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&delete_fraction),
                    "delete fraction must be in [0,1]"
                );
                let mut v = values.to_vec();
                v.shuffle(&mut rng);
                let mut updates: Vec<Update> = v.iter().copied().map(Update::Insert).collect();
                let k = (delete_fraction * v.len() as f64).round() as usize;
                let mut victims = v;
                victims.shuffle(&mut rng);
                updates.extend(victims.into_iter().take(k).map(Update::Delete));
                updates
            }
            WorkloadKind::SortedInsertionsThenSortedDeletions { delete_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&delete_fraction),
                    "delete fraction must be in [0,1]"
                );
                let mut v = values.to_vec();
                v.sort_unstable();
                let k = (delete_fraction * v.len() as f64).round() as usize;
                let mut updates: Vec<Update> = v.iter().copied().map(Update::Insert).collect();
                updates.extend(v.into_iter().take(k).map(Update::Delete));
                updates
            }
        };
        Self { updates }
    }

    /// Wraps an explicit update sequence (used to splice custom insert and
    /// delete phases together, e.g. the paper's Figs. 17–18). The caller
    /// is responsible for deletions only targeting live values.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        Self { updates }
    }

    /// The updates in replay order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Number of updates (insertions plus deletions).
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the updates.
    pub fn iter(&self) -> impl Iterator<Item = Update> + '_ {
        self.updates.iter().copied()
    }

    /// The stream rendered as histogram maintenance ops, ready for
    /// `DynHistogram::apply_slice` (batched replay through trait objects).
    pub fn ops(&self) -> Vec<dh_core::UpdateOp> {
        self.updates.iter().map(|&u| u.into()).collect()
    }

    /// The multiset of values alive after replaying the whole stream,
    /// sorted — the ground truth an evaluated histogram should approximate.
    pub fn final_multiset(&self) -> Vec<i64> {
        self.live_multiset_after(self.updates.len())
    }

    /// The live multiset after replaying only the first `n` updates.
    ///
    /// # Panics
    /// Panics if `n > len()`, or if a deletion has no matching live value
    /// (streams built by [`UpdateStream::build`] never do).
    pub fn live_multiset_after(&self, n: usize) -> Vec<i64> {
        use std::collections::BTreeMap;
        assert!(n <= self.updates.len(), "prefix longer than stream");
        let mut live: BTreeMap<i64, u64> = BTreeMap::new();
        for &u in &self.updates[..n] {
            match u {
                Update::Insert(v) => *live.entry(v).or_insert(0) += 1,
                Update::Delete(v) => {
                    let c = live
                        .get_mut(&v)
                        .expect("deletion of value that is not live");
                    *c -= 1;
                    if *c == 0 {
                        live.remove(&v);
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (v, c) in live {
            out.extend(std::iter::repeat_n(v, c as usize));
        }
        out
    }
}

impl<'a> IntoIterator for &'a UpdateStream {
    type Item = Update;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Update>>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [i64; 8] = [5, 1, 9, 1, 7, 3, 3, 3];

    #[test]
    fn random_insertions_preserve_multiset() {
        let s = UpdateStream::build(&DATA, WorkloadKind::RandomInsertions, 1);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|u| u.is_insert()));
        let mut expect = DATA.to_vec();
        expect.sort_unstable();
        assert_eq!(s.final_multiset(), expect);
    }

    #[test]
    fn sorted_insertions_are_sorted() {
        let s = UpdateStream::build(&DATA, WorkloadKind::SortedInsertions, 1);
        let vals: Vec<i64> = s.iter().map(Update::value).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mixed_deletions_only_delete_live_values() {
        let data: Vec<i64> = (0..500).map(|i| i % 37).collect();
        let s = UpdateStream::build(
            &data,
            WorkloadKind::InsertionsWithRandomDeletions {
                delete_probability: 0.25,
            },
            42,
        );
        // live_multiset_after panics on an invalid delete; touching every
        // prefix is O(n^2) so just replay the full stream.
        let finals = s.final_multiset();
        let deletes = s.iter().filter(|u| !u.is_insert()).count();
        assert_eq!(finals.len(), data.len() - deletes);
        assert!(
            deletes > 50,
            "expected roughly 25% deletions, got {deletes}"
        );
    }

    #[test]
    fn insert_then_delete_removes_requested_fraction() {
        let data: Vec<i64> = (0..1000).collect();
        let s = UpdateStream::build(
            &data,
            WorkloadKind::InsertionsThenRandomDeletions {
                delete_fraction: 0.3,
            },
            7,
        );
        assert_eq!(s.len(), 1300);
        assert_eq!(s.final_multiset().len(), 700);
        // All insertions come first.
        let first_delete = s.iter().position(|u| !u.is_insert()).unwrap();
        assert_eq!(first_delete, 1000);
    }

    #[test]
    fn sorted_insert_sorted_delete_eats_from_left() {
        let data: Vec<i64> = (0..100).collect();
        let s = UpdateStream::build(
            &data,
            WorkloadKind::SortedInsertionsThenSortedDeletions {
                delete_fraction: 0.5,
            },
            7,
        );
        let remaining = s.final_multiset();
        assert_eq!(remaining, (50..100).collect::<Vec<i64>>());
        let deletes: Vec<i64> = s
            .iter()
            .filter(|u| !u.is_insert())
            .map(Update::value)
            .collect();
        assert!(deletes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = UpdateStream::build(&DATA, WorkloadKind::RandomInsertions, 3);
        let b = UpdateStream::build(&DATA, WorkloadKind::RandomInsertions, 3);
        assert_eq!(a.updates(), b.updates());
        let c = UpdateStream::build(&DATA, WorkloadKind::RandomInsertions, 4);
        assert_ne!(a.updates(), c.updates());
    }

    #[test]
    fn prefix_replay_matches_incremental_state() {
        let data: Vec<i64> = (0..50).map(|i| i % 11).collect();
        let s = UpdateStream::build(
            &data,
            WorkloadKind::InsertionsWithRandomDeletions {
                delete_probability: 0.4,
            },
            9,
        );
        let half = s.len() / 2;
        let live = s.live_multiset_after(half);
        let inserts = s.iter().take(half).filter(|u| u.is_insert()).count();
        let deletes = half - inserts;
        assert_eq!(live.len(), inserts - deletes);
    }

    #[test]
    #[should_panic(expected = "delete fraction")]
    fn invalid_fraction_rejected() {
        let _ = UpdateStream::build(
            &DATA,
            WorkloadKind::InsertionsThenRandomDeletions {
                delete_fraction: 1.5,
            },
            0,
        );
    }
}
