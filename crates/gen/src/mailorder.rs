//! Synthetic stand-in for the paper's proprietary mail-order trace.
//!
//! Section 7.4 evaluates the histograms on 61,105 dollar amounts collected
//! by a mail-order company over `[0, 500]`, describing the distribution as
//! "very spiky": the density plot shows tall isolated spikes (catalog price
//! points) over a decaying bulk. The trace itself is not available, so this
//! module generates a distribution with the same statistical character:
//!
//! * a few hundred *price-point spikes* (multiples of $5 and the
//!   psychological `x9` price endings) whose heights follow a Zipf law —
//!   these carry most of the mass, exactly the feature that makes the
//!   dataset hard for histograms without singular buckets;
//! * an exponentially decaying *bulk* of arbitrary amounts, reproducing the
//!   long right tail of typical order values.
//!
//! The record count (61,105) and domain (`[0, 500]`) match the paper, so
//! Fig. 19's memory sweep runs on the same scale.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Number of records in the paper's trace.
pub const MAILORDER_RECORDS: usize = 61_105;
/// Inclusive upper bound of the dollar-amount domain.
pub const MAILORDER_MAX: i64 = 500;

/// Configuration of the synthetic mail-order generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MailOrderConfig {
    /// Total number of records (default: the paper's 61,105).
    pub records: usize,
    /// Fraction of mass carried by price-point spikes (default 0.75).
    pub spike_mass: f64,
    /// Zipf skew of spike popularity (default 1.0).
    pub spike_skew: f64,
    /// Mean of the exponential bulk of order amounts (default $55).
    pub bulk_mean: f64,
}

impl Default for MailOrderConfig {
    fn default() -> Self {
        Self {
            records: MAILORDER_RECORDS,
            spike_mass: 0.75,
            spike_skew: 1.0,
            bulk_mean: 55.0,
        }
    }
}

impl MailOrderConfig {
    /// Generates the synthetic trace in random order (the paper notes the
    /// real data arrives "in approximately random order").
    pub fn generate(&self, seed: u64) -> Vec<i64> {
        assert!(self.records > 0, "need at least one record");
        assert!(
            (0.0..=1.0).contains(&self.spike_mass),
            "spike mass must be a fraction"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        let spikes = price_points();
        // Popularity ranks are a random permutation of the price points:
        // cheap catalog staples are not necessarily the most frequent, and
        // this avoids a monotone frequency/value correlation the real trace
        // would not have.
        let mut ranked = spikes.clone();
        ranked.shuffle(&mut rng);
        let zipf = Zipf::new(ranked.len(), self.spike_skew);

        let spike_records = (self.records as f64 * self.spike_mass).round() as usize;
        let bulk_records = self.records - spike_records;

        let mut values = Vec::with_capacity(self.records);
        let per_spike = zipf.apportion(spike_records as u64);
        for (&value, &count) in ranked.iter().zip(&per_spike) {
            values.extend(std::iter::repeat_n(value, count as usize));
        }
        for _ in 0..bulk_records {
            values.push(sample_bulk(&mut rng, self.bulk_mean));
        }
        values.shuffle(&mut rng);
        values
    }
}

/// Generates the default synthetic mail-order trace.
pub fn mailorder_trace(seed: u64) -> Vec<i64> {
    MailOrderConfig::default().generate(seed)
}

/// Catalog-style price points in dollars: every multiple of 5 up to $100,
/// every multiple of 10 up to $500, and the `x9` psychological endings
/// ($9, $19, ..., $149) — a few hundred distinct spikes, like the paper's
/// density plot.
fn price_points() -> Vec<i64> {
    let mut points: Vec<i64> = Vec::new();
    points.extend((1..=20).map(|k| 5 * k)); // 5, 10, ..., 100
    points.extend((11..=50).map(|k| 10 * k)); // 110, 120, ..., 500
    points.extend((0..50).map(|k| 10 * k + 9)); // 9, 19, ..., 499
    points.extend((0..40).map(|k| 5 * k + 4)); // 4, 9(dup), 14, ..., 199
    points.sort_unstable();
    points.dedup();
    points
}

/// One bulk (non-spike) order amount: exponential with the given mean,
/// re-drawn until it lands in the domain, rounded to whole dollars.
fn sample_bulk(rng: &mut StdRng, mean: f64) -> i64 {
    loop {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let x = -mean * u.ln();
        let v = x.round() as i64;
        if (0..=MAILORDER_MAX).contains(&v) {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency_table;

    #[test]
    fn trace_has_paper_cardinality_and_domain() {
        let t = mailorder_trace(1);
        assert_eq!(t.len(), MAILORDER_RECORDS);
        assert!(t.iter().all(|&v| (0..=MAILORDER_MAX).contains(&v)));
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        assert_eq!(mailorder_trace(5), mailorder_trace(5));
        assert_ne!(mailorder_trace(5), mailorder_trace(6));
    }

    #[test]
    fn trace_is_spiky() {
        // The top-20 most frequent values should carry a large share of all
        // records — the property that makes the paper call the data "spiky"
        // and that stresses singular-bucket handling.
        let t = mailorder_trace(2);
        let mut freqs: Vec<u64> = frequency_table(&t).into_iter().map(|(_, c)| c).collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = freqs.iter().take(20).sum();
        let share = top20 as f64 / t.len() as f64;
        assert!(share > 0.3, "top-20 share too small: {share}");
        // ...but the support is still wide (a bulk exists).
        assert!(freqs.len() > 300, "support too narrow: {}", freqs.len());
    }

    #[test]
    fn spike_mass_parameter_controls_spikiness() {
        let heavy = MailOrderConfig {
            spike_mass: 0.95,
            ..MailOrderConfig::default()
        }
        .generate(3);
        let light = MailOrderConfig {
            spike_mass: 0.05,
            ..MailOrderConfig::default()
        }
        .generate(3);
        let top = |t: &[i64]| {
            let mut f: Vec<u64> = frequency_table(t).into_iter().map(|(_, c)| c).collect();
            f.sort_unstable_by(|a, b| b.cmp(a));
            f.iter().take(10).sum::<u64>() as f64 / t.len() as f64
        };
        assert!(top(&heavy) > top(&light));
    }

    #[test]
    fn price_points_are_distinct_and_in_domain() {
        let p = price_points();
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert!(p.iter().all(|&v| (0..=MAILORDER_MAX).contains(&v)));
        assert!(p.len() > 100, "want a rich spike set, got {}", p.len());
    }
}
