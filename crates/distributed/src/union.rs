//! Histogram superposition and the two global-histogram strategies.
//!
//! Superposition is the lossless union of Section 8: the composite
//! histogram has a bucket border wherever *any* member histogram has one,
//! and each elementary interval carries the sum of the member densities
//! over it. The composite can then be treated as a data set and re-reduced
//! with any partitioning strategy — here SSBM, matching the paper's setup.

use crate::site::{DistributedConfig, SiteData};
use dh_core::dynamic::deviation::SquaredDeviation;
use dh_core::{BucketSpan, DataDistribution, ReadHistogram};
use dh_static::ssbm::ssbm_reduce;
use dh_static::SsbmHistogram;
use std::fmt;
use std::str::FromStr;

/// How the global histogram is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalStrategy {
    /// Build an SSBM histogram per member, superimpose them, then reduce
    /// the composite back to the memory budget with SSBM merging.
    HistogramThenUnion,
    /// Pool all member data and build a single SSBM histogram directly.
    UnionThenHistogram,
}

impl GlobalStrategy {
    /// Both strategies, in the paper's figure order.
    pub fn all() -> [GlobalStrategy; 2] {
        [
            GlobalStrategy::HistogramThenUnion,
            GlobalStrategy::UnionThenHistogram,
        ]
    }

    /// Legend label, bit-identical to the paper's Section 8 figures
    /// (`"histogram + union"`, `"union + histogram"`).
    pub fn label(self) -> &'static str {
        match self {
            GlobalStrategy::HistogramThenUnion => "histogram + union",
            GlobalStrategy::UnionThenHistogram => "union + histogram",
        }
    }
}

impl fmt::Display for GlobalStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`GlobalStrategy`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGlobalStrategyError {
    input: String,
}

impl fmt::Display for ParseGlobalStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown global strategy '{}'; known: HU (histogram + union), \
             UH (union + histogram)",
            self.input
        )
    }
}

impl std::error::Error for ParseGlobalStrategyError {}

impl FromStr for GlobalStrategy {
    type Err = ParseGlobalStrategyError;

    /// Parses the paper legends and their shorthands, case-insensitively
    /// and ignoring interior whitespace: `HU`, `histogram+union`, and
    /// `HistogramThenUnion` all select
    /// [`GlobalStrategy::HistogramThenUnion`]; likewise `UH` and friends
    /// for [`GlobalStrategy::UnionThenHistogram`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t: String = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c.to_ascii_uppercase())
            .collect();
        match t.as_str() {
            "HU" | "HISTOGRAM+UNION" | "HISTOGRAMTHENUNION" => {
                Ok(GlobalStrategy::HistogramThenUnion)
            }
            "UH" | "UNION+HISTOGRAM" | "UNIONTHENHISTOGRAM" => {
                Ok(GlobalStrategy::UnionThenHistogram)
            }
            _ => Err(ParseGlobalStrategyError { input: s.into() }),
        }
    }
}

/// Losslessly superimposes several span lists: output spans cover every
/// elementary interval between consecutive borders of the union, each
/// carrying the summed mass of all inputs over that interval.
///
/// This is also the composition operator of `dh_catalog`'s sharded
/// serving layer: disjoint per-shard spans superimpose into one
/// histogram with no loss.
///
/// ```
/// use dh_core::BucketSpan;
/// use dh_distributed::superimpose;
///
/// let a = vec![BucketSpan::new(0.0, 10.0, 100.0)];
/// let b = vec![BucketSpan::new(5.0, 15.0, 60.0)];
/// let merged = superimpose(&[a, b]);
/// // Borders of both members survive; total mass is preserved.
/// assert_eq!(merged.len(), 3);
/// let total: f64 = merged.iter().map(|s| s.count).sum();
/// assert!((total - 160.0).abs() < 1e-9);
/// ```
pub fn superimpose(histograms: &[Vec<BucketSpan>]) -> Vec<BucketSpan> {
    let mut borders: Vec<f64> = histograms
        .iter()
        .flatten()
        .flat_map(|s| [s.lo, s.hi])
        .collect();
    borders.sort_by(f64::total_cmp);
    borders.dedup();
    if borders.len() < 2 {
        return Vec::new();
    }

    // Density sweep: +density at lo, -density at hi for every span.
    let mut events: Vec<(f64, f64)> = Vec::new();
    for s in histograms.iter().flatten() {
        let d = s.density();
        if d > 0.0 {
            events.push((s.lo, d));
            events.push((s.hi, -d));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut out = Vec::with_capacity(borders.len() - 1);
    let mut density = 0.0;
    let mut ev = events.iter().peekable();
    for w in borders.windows(2) {
        let (a, b) = (w[0], w[1]);
        while let Some(&&(x, d)) = ev.peek() {
            if x <= a {
                density += d;
                ev.next();
            } else {
                break;
            }
        }
        let count = density.max(0.0) * (b - a);
        out.push(BucketSpan::new(a, b, count));
    }
    out
}

/// Builds the global histogram for the given member sites under the
/// configured memory budget.
pub fn build_global(
    cfg: &DistributedConfig,
    sites: &[SiteData],
    strategy: GlobalStrategy,
) -> SsbmHistogram {
    let buckets = cfg.buckets();
    match strategy {
        GlobalStrategy::HistogramThenUnion => {
            let members: Vec<Vec<BucketSpan>> = sites
                .iter()
                .map(|s| {
                    let dist = DataDistribution::from_values(&s.values);
                    SsbmHistogram::build(&dist, buckets).spans()
                })
                .collect();
            let composite = superimpose(&members);
            SsbmHistogram::from_spans(ssbm_reduce::<SquaredDeviation>(&composite, buckets))
        }
        GlobalStrategy::UnionThenHistogram => {
            let mut pooled = DataDistribution::new();
            for s in sites {
                for &v in &s.values {
                    pooled.insert(v);
                }
            }
            SsbmHistogram::build(&pooled, buckets)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superposition_preserves_mass() {
        let a = vec![
            BucketSpan::new(0.0, 10.0, 100.0),
            BucketSpan::new(10.0, 20.0, 50.0),
        ];
        let b = vec![BucketSpan::new(5.0, 15.0, 60.0)];
        let merged = superimpose(&[a, b]);
        let mass: f64 = merged.iter().map(|s| s.count).sum();
        assert!((mass - 210.0).abs() < 1e-9);
    }

    #[test]
    fn superposition_has_borders_of_both_inputs() {
        let a = vec![BucketSpan::new(0.0, 10.0, 10.0)];
        let b = vec![BucketSpan::new(5.0, 15.0, 10.0)];
        let merged = superimpose(&[a, b]);
        let borders: Vec<f64> = merged.iter().map(|s| s.lo).collect();
        assert_eq!(borders, vec![0.0, 5.0, 10.0]);
        assert_eq!(merged.last().unwrap().hi, 15.0);
    }

    #[test]
    fn superposition_is_lossless_for_disjoint_members() {
        // Two members on disjoint ranges: superposition reproduces each
        // member's density exactly.
        let a = vec![BucketSpan::new(0.0, 4.0, 8.0)];
        let b = vec![BucketSpan::new(100.0, 104.0, 4.0)];
        let merged = superimpose(&[a.clone(), b.clone()]);
        // Region [0,4): density 2; gap [4,100): 0; [100,104): density 1.
        let at = |x: f64| {
            merged
                .iter()
                .find(|s| x >= s.lo && x < s.hi)
                .map(|s| s.density())
                .unwrap_or(0.0)
        };
        assert!((at(1.0) - 2.0).abs() < 1e-12);
        assert!((at(50.0) - 0.0).abs() < 1e-12);
        assert!((at(101.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn superposition_of_nothing_is_empty() {
        assert!(superimpose(&[]).is_empty());
        assert!(superimpose(&[vec![]]).is_empty());
    }

    #[test]
    fn overlapping_identical_members_double_density() {
        let a = vec![BucketSpan::new(0.0, 10.0, 10.0)];
        let merged = superimpose(&[a.clone(), a]);
        assert_eq!(merged.len(), 1);
        assert!((merged[0].count - 20.0).abs() < 1e-12);
    }

    #[test]
    fn strategy_labels_round_trip_and_aliases_parse() {
        for strategy in GlobalStrategy::all() {
            let parsed: GlobalStrategy = strategy.label().parse().expect("label parses");
            assert_eq!(parsed, strategy);
            assert_eq!(strategy.to_string(), strategy.label());
        }
        for alias in ["HU", "hu", " Histogram + Union ", "HistogramThenUnion"] {
            assert_eq!(
                alias.parse::<GlobalStrategy>().unwrap(),
                GlobalStrategy::HistogramThenUnion,
                "{alias}"
            );
        }
        for alias in ["UH", "union+histogram", "UnionThenHistogram"] {
            assert_eq!(
                alias.parse::<GlobalStrategy>().unwrap(),
                GlobalStrategy::UnionThenHistogram,
                "{alias}"
            );
        }
        let err = "bogus".parse::<GlobalStrategy>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }
}
