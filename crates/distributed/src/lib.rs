//! Global histograms in a shared-nothing environment (Section 8).
//!
//! A union of tables is spread over member *sites* (shared-nothing nodes or
//! federated web sources). Each member maintains a local SSBM histogram in
//! `M` bytes; a *global* histogram over the union can be built two ways:
//!
//! * **histogram + union** — superimpose the member histograms (lossless:
//!   a border wherever any member has one), then reduce the composite back
//!   to the memory budget with SSBM merging;
//! * **union + histogram** — ship all the data, pool it, and build one
//!   SSBM histogram directly.
//!
//! The paper's Figs. 20–23 sweep histogram memory, intrasite skew
//! (`Z_Freq`), the number of sites, and the skew of member sizes
//! (`Z_Site`), finding the two alternatives deliver approximately equal
//! quality — reproduced by this crate's experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod site;
pub mod union;

pub use site::{DistributedConfig, SiteData};
pub use union::{build_global, superimpose, GlobalStrategy, ParseGlobalStrategyError};

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::{ks_error, DataDistribution, ReadHistogram};

    #[test]
    fn end_to_end_both_strategies_are_comparable() {
        let cfg = DistributedConfig {
            total_points: 20_000,
            ..DistributedConfig::default()
        };
        let sites = cfg.generate_sites(7);
        let mut pooled = DataDistribution::new();
        for s in &sites {
            for &v in &s.values {
                pooled.insert(v);
            }
        }
        let hu = build_global(&cfg, &sites, GlobalStrategy::HistogramThenUnion);
        let uh = build_global(&cfg, &sites, GlobalStrategy::UnionThenHistogram);
        let ks_hu = ks_error(&hu, &pooled);
        let ks_uh = ks_error(&uh, &pooled);
        assert!(ks_hu < 0.2, "histogram+union too bad: {ks_hu}");
        assert!(ks_uh < 0.2, "union+histogram too bad: {ks_uh}");
        // The paper's conclusion: approximately the same quality.
        assert!(
            (ks_hu - ks_uh).abs() < 0.1,
            "strategies diverged: {ks_hu} vs {ks_uh}"
        );
        // Both respect the memory budget.
        let max_buckets = cfg.buckets();
        assert!(hu.num_buckets() <= max_buckets);
        assert!(uh.num_buckets() <= max_buckets);
    }
}
