//! Member-site data generation for the shared-nothing experiments.
//!
//! Per Section 8: every union member holds data distributed within some
//! attribute range according to a Zipf law with parameter `Z_Freq`; the
//! range of each member is uniformly and randomly placed in the global
//! domain; the number of data points per member follows a Zipf law with
//! parameter `Z_Site`. Defaults match the paper: 5 sites, 250 bytes of
//! histogram memory, `Z_Freq = 1`, `Z_Site = 0`.

use dh_core::{HistogramClass, MemoryBudget};
use dh_gen::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a shared-nothing histogram experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// Number of member sites (paper default: 5).
    pub sites: usize,
    /// Global attribute domain, inclusive.
    pub domain_min: i64,
    /// Global attribute domain, inclusive.
    pub domain_max: i64,
    /// Total data points across all members.
    pub total_points: u64,
    /// Zipf skew of value frequencies within a member (paper default: 1).
    pub z_freq: f64,
    /// Zipf skew of member sizes (paper default: 0 = equal sites).
    pub z_site: f64,
    /// Main-memory budget for every histogram, member and global alike
    /// (paper default: 250 bytes).
    pub memory: MemoryBudget,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        Self {
            sites: 5,
            domain_min: 0,
            domain_max: 5000,
            total_points: 100_000,
            z_freq: 1.0,
            z_site: 0.0,
            memory: MemoryBudget::from_bytes(250),
        }
    }
}

/// One member site's data.
#[derive(Debug, Clone)]
pub struct SiteData {
    /// The member's attribute range (inclusive).
    pub range: (i64, i64),
    /// The member's data points.
    pub values: Vec<i64>,
}

impl DistributedConfig {
    /// Bucket count every histogram gets under the memory budget (SSBM
    /// buckets store one border and one count).
    pub fn buckets(&self) -> usize {
        self.memory.buckets(HistogramClass::BorderAndCount)
    }

    /// Generates all member sites deterministically from `seed`.
    ///
    /// # Panics
    /// Panics on degenerate configurations.
    pub fn generate_sites(&self, seed: u64) -> Vec<SiteData> {
        assert!(self.sites > 0, "need at least one site");
        assert!(self.domain_max > self.domain_min, "empty domain");
        let mut rng = StdRng::seed_from_u64(seed);

        // Member sizes: Zipf(Z_Site), randomly permuted across members.
        let sizes_dist = Zipf::new(self.sites, self.z_site);
        let mut sizes = sizes_dist.apportion(self.total_points);
        sizes.shuffle(&mut rng);

        (0..self.sites)
            .map(|i| {
                // Uniformly random attribute subrange (at least 32 values
                // wide so a Zipf law has room to act).
                let width = self.domain_max - self.domain_min;
                let min_span = width.min(32);
                let a = rng.gen_range(self.domain_min..=self.domain_max - min_span);
                let b = rng.gen_range(a + min_span..=self.domain_max);
                let span = (b - a + 1) as usize;

                // Zipf(Z_Freq) frequencies over the member's values, with
                // ranks randomly assigned to positions.
                let zipf = Zipf::new(span, self.z_freq);
                let mut counts = zipf.apportion(sizes[i]);
                counts.shuffle(&mut rng);

                let mut values = Vec::with_capacity(sizes[i] as usize);
                for (offset, &c) in counts.iter().enumerate() {
                    let v = a + offset as i64;
                    values.extend(std::iter::repeat_n(v, c as usize));
                }
                values.shuffle(&mut rng);
                SiteData {
                    range: (a, b),
                    values,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = DistributedConfig::default();
        assert_eq!(cfg.sites, 5);
        assert_eq!(cfg.memory.bytes(), 250);
        assert_eq!(cfg.z_freq, 1.0);
        assert_eq!(cfg.z_site, 0.0);
    }

    #[test]
    fn sites_hold_all_points() {
        let cfg = DistributedConfig {
            total_points: 10_000,
            ..DistributedConfig::default()
        };
        let sites = cfg.generate_sites(1);
        assert_eq!(sites.len(), 5);
        let total: usize = sites.iter().map(|s| s.values.len()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn values_stay_in_member_ranges() {
        let cfg = DistributedConfig {
            total_points: 5_000,
            ..DistributedConfig::default()
        };
        for site in cfg.generate_sites(2) {
            let (a, b) = site.range;
            assert!(a >= 0 && b <= 5000 && a < b);
            assert!(site.values.iter().all(|&v| (a..=b).contains(&v)));
        }
    }

    #[test]
    fn z_site_zero_gives_equal_members() {
        let cfg = DistributedConfig {
            total_points: 10_000,
            z_site: 0.0,
            ..DistributedConfig::default()
        };
        let sites = cfg.generate_sites(3);
        for s in &sites {
            assert_eq!(s.values.len(), 2000);
        }
    }

    #[test]
    fn z_site_skews_member_sizes() {
        let cfg = DistributedConfig {
            total_points: 10_000,
            z_site: 2.0,
            ..DistributedConfig::default()
        };
        let sites = cfg.generate_sites(4);
        let max = sites.iter().map(|s| s.values.len()).max().unwrap();
        let min = sites.iter().map(|s| s.values.len()).min().unwrap();
        assert!(max > 4 * min.max(1), "expected skewed sizes, {min}..{max}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = DistributedConfig {
            total_points: 1000,
            ..DistributedConfig::default()
        };
        let a = cfg.generate_sites(9);
        let b = cfg.generate_sites(9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.range, y.range);
            assert_eq!(x.values, y.values);
        }
    }

    #[test]
    fn default_buckets_match_memory_model() {
        // 250 bytes / 4 = 62 numbers; (62 - 1) / 2 = 30 buckets.
        assert_eq!(DistributedConfig::default().buckets(), 30);
    }
}
