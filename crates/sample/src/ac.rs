//! The Approximate Compressed (AC) histogram baseline.
//!
//! AC keeps a Compressed histogram in main memory and a reservoir backing
//! sample on disk (Gibbons–Matias–Poosala). Two maintenance policies are
//! implemented:
//!
//! * [`AcMaintenance::RecomputeAlways`] — the paper's evaluation setting
//!   (`gamma = -1`): the histogram is recomputed from the backing sample
//!   whenever the sample changes. Quality-wise this is AC's best case; its
//!   (historically poor) update speed is visible in this workspace's
//!   maintenance benchmarks.
//! * [`AcMaintenance::SplitMerge`] — the incremental GMP policy: bucket
//!   counts are patched in place; when a bucket exceeds the threshold
//!   `T = (2 + gamma) * N / beta` it is split at its sample median and the
//!   two adjacent buckets with the smallest combined count are merged; if
//!   no pair fits under the threshold, the histogram is recomputed from
//!   the sample.
//!
//! The in-memory histogram always represents `population` points: sample
//! counts are scaled by `N / |sample|`.

use crate::reservoir::ReservoirSample;
use dh_core::{BucketSpan, DataDistribution, DynHistogram, ReadHistogram};
use dh_static::CompressedHistogram;

/// Maintenance policy for the in-memory approximate histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcMaintenance {
    /// `gamma = -1`: recompute from the backing sample at every sample
    /// change (the paper's best-quality configuration).
    RecomputeAlways,
    /// Patch counts in place; split/merge when a bucket exceeds
    /// `(2 + gamma) * N / beta`, recomputing only when stuck.
    SplitMerge {
        /// The GMP slack parameter; larger values tolerate more imbalance
        /// before reorganizing. Must be `> -1`.
        gamma: f64,
    },
}

/// The Approximate Compressed histogram over a reservoir backing sample.
///
/// # Examples
/// ```
/// use dh_sample::AcHistogram;
/// use dh_core::{DynHistogram, ReadHistogram, MemoryBudget, HistogramClass};
///
/// let memory = MemoryBudget::from_kb(1.0);
/// let mut ac = AcHistogram::new(
///     memory.buckets(HistogramClass::BorderAndCount),
///     memory.sample_elements(20),
///     42,
/// );
/// for v in 0..10_000i64 {
///     ac.insert(v % 500);
/// }
/// assert_eq!(ac.total_count(), 10_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct AcHistogram {
    buckets: usize,
    reservoir: ReservoirSample,
    maintenance: AcMaintenance,
    /// Live data-set size `N` (the histogram is scaled to represent it).
    population: u64,
    /// In-memory bucket state for the split/merge policy.
    mem: Vec<BucketSpan>,
    /// Whether `mem` must be rebuilt from the sample before reading.
    dirty: bool,
    /// Number of full recomputations from the backing sample.
    recomputes: u64,
}

impl AcHistogram {
    /// Creates an AC histogram with `buckets` in-memory buckets and a
    /// backing sample of `sample_capacity` elements, using the paper's
    /// `gamma = -1` policy.
    pub fn new(buckets: usize, sample_capacity: usize, seed: u64) -> Self {
        Self::with_maintenance(
            buckets,
            sample_capacity,
            seed,
            AcMaintenance::RecomputeAlways,
        )
    }

    /// Creates an AC histogram with an explicit maintenance policy.
    ///
    /// # Panics
    /// Panics if `buckets == 0`, `sample_capacity == 0`, or a `SplitMerge`
    /// gamma is `<= -1`.
    pub fn with_maintenance(
        buckets: usize,
        sample_capacity: usize,
        seed: u64,
        maintenance: AcMaintenance,
    ) -> Self {
        assert!(buckets > 0, "AC needs at least one bucket");
        if let AcMaintenance::SplitMerge { gamma } = maintenance {
            assert!(gamma > -1.0, "split/merge gamma must exceed -1");
        }
        Self {
            buckets,
            reservoir: ReservoirSample::new(sample_capacity, seed),
            maintenance,
            population: 0,
            mem: Vec::new(),
            dirty: true,
            recomputes: 0,
        }
    }

    /// The backing sample.
    pub fn backing_sample(&self) -> &ReservoirSample {
        &self.reservoir
    }

    /// Number of full recomputations from the backing sample so far (reads
    /// under `RecomputeAlways` count too).
    pub fn recompute_count(&self) -> u64 {
        self.recomputes
    }

    /// In-memory bucket capacity.
    pub fn capacity(&self) -> usize {
        self.buckets
    }

    /// Rebuilds the in-memory histogram from the backing sample, scaled to
    /// the live population.
    fn recompute(&mut self) -> Vec<BucketSpan> {
        let sample = self.reservoir.distribution();
        if sample.is_empty() || self.population == 0 {
            return Vec::new();
        }
        let compressed = CompressedHistogram::build(sample, self.buckets);
        let scale = self.population as f64 / sample.total() as f64;
        compressed
            .buckets()
            .iter()
            .map(|s| BucketSpan::new(s.lo, s.hi, s.count * scale))
            .collect()
    }

    /// Split/merge threshold `T = (2 + gamma) * N / beta`.
    fn threshold(&self, gamma: f64) -> f64 {
        (2.0 + gamma) * self.population as f64 / self.buckets as f64
    }

    /// Patches the in-memory buckets after an insert and reorganizes if a
    /// bucket overflowed (split/merge policy only).
    fn patch_insert(&mut self, v: i64, gamma: f64) {
        if self.dirty || self.mem.is_empty() {
            self.mem = self.recompute();
            self.recomputes += 1;
            self.dirty = false;
            return;
        }
        let x = v as f64 + 0.5;
        let idx = match self.mem.iter().position(|s| x >= s.lo && x < s.hi) {
            Some(i) => i,
            None => {
                // Outside the tracked range: cheap fallback is recompute.
                self.mem = self.recompute();
                self.recomputes += 1;
                return;
            }
        };
        self.mem[idx].count += 1.0;
        let t = self.threshold(gamma);
        if self.mem[idx].count <= t || self.mem.len() < 2 {
            return;
        }
        // Split the offending bucket at its sample median.
        let b = self.mem[idx];
        let sample = self.reservoir.distribution();
        let inside: Vec<(i64, u64)> = sample
            .iter()
            .filter(|&(v, _)| (v as f64 + 0.5) >= b.lo && (v as f64 + 0.5) < b.hi)
            .collect();
        let half: u64 = inside.iter().map(|&(_, c)| c).sum::<u64>() / 2;
        let mut acc = 0u64;
        let mut cut = (b.lo + b.hi) / 2.0;
        for &(v, c) in &inside {
            acc += c;
            if acc >= half {
                cut = (v + 1) as f64;
                break;
            }
        }
        if cut <= b.lo || cut >= b.hi {
            cut = (b.lo + b.hi) / 2.0;
        }
        // Find the cheapest adjacent pair to merge (excluding the bucket
        // being split).
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.mem.len() - 1 {
            if i == idx || i + 1 == idx {
                continue;
            }
            let sum = self.mem[i].count + self.mem[i + 1].count;
            if best.is_none_or(|(_, s)| sum < s) {
                best = Some((i, sum));
            }
        }
        match best {
            Some((m, sum)) if sum <= t => {
                let merged = BucketSpan::new(self.mem[m].lo, self.mem[m + 1].hi, sum);
                self.mem[m] = merged;
                self.mem.remove(m + 1);
                // Re-locate the split bucket (index may have shifted).
                let idx = self
                    .mem
                    .iter()
                    .position(|s| s.lo == b.lo)
                    .expect("split bucket vanished");
                let left = BucketSpan::new(b.lo, cut, b.count / 2.0);
                let right = BucketSpan::new(cut, b.hi, b.count / 2.0);
                self.mem[idx] = left;
                self.mem.insert(idx + 1, right);
            }
            _ => {
                // No pair fits under the threshold: recompute (GMP's
                // escape hatch).
                self.mem = self.recompute();
                self.recomputes += 1;
            }
        }
    }
}

impl ReadHistogram for AcHistogram {
    fn spans(&self) -> Vec<BucketSpan> {
        match self.maintenance {
            AcMaintenance::RecomputeAlways => {
                // gamma = -1 semantics: the histogram always reflects the
                // current backing sample exactly.
                let sample = self.reservoir.distribution();
                if sample.is_empty() || self.population == 0 {
                    return Vec::new();
                }
                let compressed = CompressedHistogram::build(sample, self.buckets);
                let scale = self.population as f64 / sample.total() as f64;
                compressed
                    .buckets()
                    .iter()
                    .map(|s| BucketSpan::new(s.lo, s.hi, s.count * scale))
                    .collect()
            }
            AcMaintenance::SplitMerge { .. } => self.mem.clone(),
        }
    }

    fn total_count(&self) -> f64 {
        self.population as f64
    }

    fn num_buckets(&self) -> usize {
        match self.maintenance {
            AcMaintenance::RecomputeAlways => self.buckets,
            AcMaintenance::SplitMerge { .. } => self.mem.len(),
        }
    }
}

impl DynHistogram for AcHistogram {
    fn as_read(&self) -> &dyn ReadHistogram {
        self
    }

    fn insert(&mut self, v: i64) {
        self.population += 1;
        let changed = self.reservoir.insert(v);
        match self.maintenance {
            AcMaintenance::RecomputeAlways => {
                if changed {
                    self.dirty = true;
                }
            }
            AcMaintenance::SplitMerge { gamma } => {
                if changed {
                    self.dirty = true;
                }
                self.patch_insert(v, gamma);
            }
        }
    }

    fn delete(&mut self, v: i64) {
        if self.population == 0 {
            return;
        }
        self.population -= 1;
        let changed = self.reservoir.delete(v);
        match self.maintenance {
            AcMaintenance::RecomputeAlways => {
                if changed {
                    self.dirty = true;
                }
            }
            AcMaintenance::SplitMerge { .. } => {
                if changed || self.mem.is_empty() {
                    self.mem = self.recompute();
                    self.recomputes += 1;
                } else {
                    // Patch: decrement the containing bucket.
                    let x = v as f64 + 0.5;
                    if let Some(b) = self.mem.iter_mut().find(|s| x >= s.lo && x < s.hi) {
                        b.count = (b.count - 1.0).max(0.0);
                    }
                }
            }
        }
    }
}

/// Convenience: the multiset distribution of an AC histogram's backing
/// sample (used by experiments that inspect sample degradation).
pub fn backing_distribution(ac: &AcHistogram) -> &DataDistribution {
    ac.backing_sample().distribution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::{ks_error, DataDistribution};

    #[test]
    fn tracks_population_exactly() {
        let mut ac = AcHistogram::new(16, 512, 1);
        for v in 0..5000i64 {
            ac.insert(v % 300);
        }
        assert_eq!(ac.total_count(), 5000.0);
        for v in 0..100i64 {
            ac.delete(v);
        }
        assert_eq!(ac.total_count(), 4900.0);
    }

    #[test]
    fn spans_scale_sample_to_population() {
        let mut ac = AcHistogram::new(8, 100, 2);
        for v in 0..10_000i64 {
            ac.insert(v % 50);
        }
        let mass: f64 = ac.spans().iter().map(|s| s.count).sum();
        assert!((mass - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn quality_reasonable_on_uniform_data() {
        let mut ac = AcHistogram::new(32, 2560, 3);
        let mut truth = DataDistribution::new();
        for i in 0..20_000i64 {
            let v = (i * 7919) % 1000;
            ac.insert(v);
            truth.insert(v);
        }
        let ks = ks_error(&ac, &truth);
        assert!(ks < 0.06, "AC should be decent on uniform data, ks={ks}");
    }

    #[test]
    fn bigger_sample_is_at_least_as_good_on_average() {
        // Not guaranteed per-seed, so average over several seeds.
        let mut small_total = 0.0;
        let mut large_total = 0.0;
        for seed in 0..5u64 {
            let mut truth = DataDistribution::new();
            let mut small = AcHistogram::new(16, 128, seed);
            let mut large = AcHistogram::new(16, 4096, seed);
            for i in 0..8000i64 {
                let v = (i * 31 + (i * i) % 97) % 700;
                truth.insert(v);
                small.insert(v);
                large.insert(v);
            }
            small_total += ks_error(&small, &truth);
            large_total += ks_error(&large, &truth);
        }
        assert!(
            large_total < small_total,
            "larger backing sample should help: {large_total} vs {small_total}"
        );
    }

    #[test]
    fn heavy_deletions_shrink_backing_sample() {
        let mut ac = AcHistogram::new(16, 1000, 4);
        let values: Vec<i64> = (0..2000).collect();
        for &v in &values {
            ac.insert(v);
        }
        let before = ac.backing_sample().len();
        for &v in values.iter().take(1600) {
            ac.delete(v);
        }
        let after = ac.backing_sample().len();
        assert!(
            after < before / 2,
            "deletions should shrink the sample: {before} -> {after}"
        );
    }

    #[test]
    fn split_merge_mode_maintains_mass() {
        let mut ac =
            AcHistogram::with_maintenance(12, 512, 5, AcMaintenance::SplitMerge { gamma: 0.5 });
        for i in 0..5000i64 {
            ac.insert((i * 13) % 400);
        }
        let mass: f64 = ac.spans().iter().map(|s| s.count).sum();
        // Patched counts drift from the scaled sample, but total mass is
        // maintained within the patching error.
        assert!(
            (mass - 5000.0).abs() / 5000.0 < 0.35,
            "split/merge mass drifted too far: {mass}"
        );
        assert!(ac.recompute_count() >= 1);
    }

    #[test]
    fn split_merge_quality_close_to_recompute() {
        let mut truth = DataDistribution::new();
        let mut always = AcHistogram::new(16, 1024, 6);
        let mut sm =
            AcHistogram::with_maintenance(16, 1024, 6, AcMaintenance::SplitMerge { gamma: 1.0 });
        for i in 0..10_000i64 {
            let v = (i * 17) % 800;
            truth.insert(v);
            always.insert(v);
            sm.insert(v);
        }
        let ks_always = ks_error(&always, &truth);
        let ks_sm = ks_error(&sm, &truth);
        assert!(
            ks_sm <= ks_always + 0.08,
            "split/merge ({ks_sm}) should not be far behind recompute ({ks_always})"
        );
    }

    #[test]
    fn empty_histogram_reads_cleanly() {
        let ac = AcHistogram::new(8, 64, 7);
        assert!(ac.spans().is_empty());
        assert_eq!(ac.total_count(), 0.0);
    }
}
