//! Reservoir sampling with deletions — the AC histogram's backing sample.
//!
//! Insertions follow Vitter's Algorithm R (reference \[1\] of the paper):
//! the `i`-th inserted element enters a full reservoir of capacity `R` with
//! probability `R / i`, evicting a uniformly random resident. The result is
//! a uniform sample of the inserted stream.
//!
//! GMP's backing sample stores row ids, so a deleted tuple is removed from
//! the sample exactly when *that tuple* was sampled. This implementation
//! keys the sample by value instead and emulates row-id membership
//! hypergeometrically: deleting one of the `c` live occurrences of `v`
//! removes a sampled copy with probability `s/c`, where `s` is the number
//! of sampled copies (the probability a uniformly chosen occurrence is one
//! of the sampled ones). Either way the sample *shrinks* under deletions —
//! a reservoir cannot conjure replacements without rescanning the relation
//! — which is the faithful weakness the paper's deletion experiments
//! (Fig. 17/18) exercise.

use dh_core::DataDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed-capacity uniform reservoir sample over an insert/delete stream.
#[derive(Debug, Clone)]
pub struct ReservoirSample {
    capacity: usize,
    /// Slot array: the sample as stored (order is irrelevant).
    slots: Vec<i64>,
    /// The sample as a multiset distribution, kept in sync with `slots`
    /// for cheap histogram rebuilds.
    dist: DataDistribution,
    /// Live occurrence counts of the underlying data set — bookkeeping
    /// that emulates the row-id membership test of a disk-resident backing
    /// sample (not charged against histogram memory).
    live: DataDistribution,
    /// Number of insertions offered since the reservoir was created.
    offered: u64,
    rng: StdRng,
}

impl ReservoirSample {
    /// Creates an empty reservoir holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            slots: Vec::with_capacity(capacity),
            dist: DataDistribution::new(),
            live: DataDistribution::new(),
            offered: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Capacity of the reservoir.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of sampled elements (can be below capacity early on
    /// or after deletions).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of insertions offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers an inserted value to the reservoir. Returns `true` if the
    /// sample changed.
    pub fn insert(&mut self, v: i64) -> bool {
        self.offered += 1;
        self.live.insert(v);
        if self.slots.len() < self.capacity {
            self.slots.push(v);
            self.dist.insert(v);
            return true;
        }
        // Algorithm R: keep with probability capacity / offered.
        let j = self.rng.gen_range(0..self.offered);
        if (j as usize) < self.capacity {
            let slot = self.rng.gen_range(0..self.slots.len());
            let old = std::mem::replace(&mut self.slots[slot], v);
            self.dist.delete(old);
            self.dist.insert(v);
            true
        } else {
            false
        }
    }

    /// Processes the deletion of one occurrence of `v` from the data set.
    ///
    /// The deleted occurrence was sampled with probability
    /// `sampled(v) / live(v)`; in that case a sampled copy is removed
    /// (emulating row-id membership). Returns `true` if the sample changed
    /// (shrank).
    pub fn delete(&mut self, v: i64) -> bool {
        let live = self.live.frequency(v);
        if live == 0 {
            return false; // deletion of a value this sample never saw
        }
        let sampled = self.dist.frequency(v);
        self.live.delete(v);
        if sampled == 0 {
            return false;
        }
        if self.rng.gen_range(0..live) >= sampled {
            return false; // the deleted occurrence was not the sampled one
        }
        let idx = self
            .slots
            .iter()
            .position(|&s| s == v)
            .expect("distribution and slots out of sync");
        self.slots.swap_remove(idx);
        self.dist.delete(v);
        true
    }

    /// The sampled values (unordered).
    pub fn values(&self) -> &[i64] {
        &self.slots
    }

    /// The sample as an exact multiset distribution.
    pub fn distribution(&self) -> &DataDistribution {
        &self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_up_to_capacity_first() {
        let mut r = ReservoirSample::new(5, 1);
        for v in 0..5 {
            assert!(r.insert(v));
        }
        assert_eq!(r.len(), 5);
        let mut vals: Vec<i64> = r.values().to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = ReservoirSample::new(10, 2);
        for v in 0..10_000 {
            r.insert(v);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.offered(), 10_000);
    }

    #[test]
    fn sample_is_approximately_uniform() {
        // Insert 0..1000 into a 100-slot reservoir many times; each value's
        // inclusion frequency should be ~10%.
        let trials = 300;
        let mut low_half = 0usize;
        for seed in 0..trials {
            let mut r = ReservoirSample::new(100, seed);
            for v in 0..1000 {
                r.insert(v);
            }
            low_half += r.values().iter().filter(|&&v| v < 500).count();
        }
        let frac = low_half as f64 / (trials as usize * 100) as f64;
        assert!(
            (frac - 0.5).abs() < 0.03,
            "low-half inclusion fraction {frac} far from 0.5"
        );
    }

    #[test]
    fn delete_shrinks_sample() {
        let mut r = ReservoirSample::new(5, 3);
        for v in [1, 2, 3] {
            r.insert(v);
        }
        assert!(r.delete(2));
        assert_eq!(r.len(), 2);
        assert!(!r.delete(2), "2 is no longer sampled");
        assert!(!r.delete(99), "never-seen value is a no-op");
    }

    #[test]
    fn distribution_stays_in_sync() {
        let mut r = ReservoirSample::new(50, 4);
        for v in 0..500 {
            r.insert(v % 20);
        }
        for v in 0..10 {
            r.delete(v);
        }
        assert_eq!(r.distribution().total() as usize, r.len());
        let mut from_slots: Vec<i64> = r.values().to_vec();
        from_slots.sort_unstable();
        assert_eq!(from_slots, r.distribution().to_values());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ReservoirSample::new(8, 7);
        let mut b = ReservoirSample::new(8, 7);
        for v in 0..1000 {
            a.insert(v);
            b.insert(v);
        }
        assert_eq!(a.values(), b.values());
    }
}
