//! Reservoir sampling and the Approximate Compressed (AC) histogram — the
//! competing approach the paper evaluates against (Gibbons, Matias &
//! Poosala, *Fast Incremental Maintenance of Approximate Histograms*,
//! VLDB 1997; reference \[10\]).
//!
//! The AC approach keeps a large **backing sample** on disk (a reservoir
//! sample, typically 20x the histogram's main-memory size) and a small
//! approximate Compressed histogram in memory. The histogram is patched on
//! the fly and recomputed from the backing sample when its constraints
//! drift too far. The paper grants AC its best-quality configuration,
//! `gamma = -1`, which recomputes at every update.
//!
//! Deletions shrink the backing sample (a reservoir cannot retroactively
//! resample), which is exactly why AC degrades under heavy deletion in the
//! paper's Fig. 17.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ac;
pub mod reservoir;

pub use ac::{AcHistogram, AcMaintenance};
pub use reservoir::ReservoirSample;
