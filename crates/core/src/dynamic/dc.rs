//! The Dynamic Compressed (DC) histogram of Section 3.
//!
//! A Compressed histogram stores high-frequency values in *singular*
//! (singleton) buckets and partitions the rest equi-depth into *regular*
//! buckets. DC maintains this structure incrementally:
//!
//! 1. **Loading phase** — the first `n` distinct values each get their own
//!    bucket, with borders placed between them.
//! 2. **Maintenance** — each new value is routed to its bucket by binary
//!    search and counted; values beyond the end buckets extend them.
//! 3. **Repartitioning** — when a chi-square test rejects the hypothesis
//!    that regular-bucket counts are uniform (p-value `<= alpha_min`,
//!    default `1e-6`), bucket borders are recomputed to equalize regular
//!    counts. Singular buckets whose frequency fell below `N/n` are
//!    demoted; unit-width regular buckets with frequency at least `N/n`
//!    are promoted.
//!
//! Processing a point costs `O(log n)` plus an `O(1)` incremental
//! chi-square update; repartitioning costs `O(n)` and is rare, giving the
//! paper's `O(N log n)` total.

use crate::bucket::BucketSpan;
use crate::histogram::{DynHistogram, ReadHistogram};
use dh_stats::chi2::chi2_pvalue;
use std::collections::BTreeMap;

/// Tolerance for unit-width detection on fractional borders.
const WIDTH_EPS: f64 = 1e-9;

/// One DC bucket: left border, point count and singular flag. The right
/// border is the next bucket's left border (Section 3.1's space layout).
#[derive(Debug, Clone, Copy, PartialEq)]
struct DcBucket {
    lo: f64,
    count: f64,
    singular: bool,
}

/// The Dynamic Compressed histogram (Section 3).
///
/// # Examples
/// ```
/// use dh_core::dynamic::DcHistogram;
/// use dh_core::{DynHistogram, ReadHistogram};
///
/// let mut h = DcHistogram::new(16);
/// for v in 0..1000 {
///     h.insert(v % 50);
/// }
/// assert_eq!(h.total_count(), 1000.0);
/// let est = h.estimate_range(0, 24);
/// assert!((est - 500.0).abs() < 60.0, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct DcHistogram {
    /// Target number of buckets `n`.
    capacity: usize,
    /// Significance floor for the chi-square repartition trigger.
    alpha_min: f64,
    state: State,
    /// Number of repartitions performed (exposed for experiments; the
    /// paper attributes DC's errors to border relocations).
    repartitions: u64,
}

#[derive(Debug, Clone)]
enum State {
    /// Exact per-value counts until `capacity` distinct values are seen.
    Loading {
        counts: BTreeMap<i64, u64>,
        total: u64,
    },
    /// The bucketized histogram.
    Active(Active),
}

#[derive(Debug, Clone)]
struct Active {
    /// Buckets sorted by `lo`, tiling `[buckets[0].lo, hi)` contiguously.
    buckets: Vec<DcBucket>,
    /// Right border of the last bucket.
    hi: f64,
    /// Total mass.
    total: f64,
    /// Sum of regular-bucket counts (incremental chi-square state).
    reg_sum: f64,
    /// Sum of squared regular-bucket counts.
    reg_sumsq: f64,
    /// Number of regular buckets.
    reg_n: usize,
}

impl DcHistogram {
    /// Creates a DC histogram with `capacity` buckets and the paper's
    /// default `alpha_min = 1e-6`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_alpha(capacity, 1e-6)
    }

    /// Creates a DC histogram with an explicit chi-square significance
    /// floor (`0` freezes the initial partition; `1` repartitions after
    /// every insertion).
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `alpha_min` is outside `[0, 1]`.
    pub fn with_alpha(capacity: usize, alpha_min: f64) -> Self {
        assert!(capacity > 0, "DC needs at least one bucket");
        assert!(
            (0.0..=1.0).contains(&alpha_min),
            "alpha_min must be in [0,1], got {alpha_min}"
        );
        Self {
            capacity,
            alpha_min,
            state: State::Loading {
                counts: BTreeMap::new(),
                total: 0,
            },
            repartitions: 0,
        }
    }

    /// Target bucket count `n`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many times the histogram has repartitioned so far.
    pub fn repartition_count(&self) -> u64 {
        self.repartitions
    }

    /// Whether the histogram is still in its exact loading phase.
    pub fn is_loading(&self) -> bool {
        matches!(self.state, State::Loading { .. })
    }

    /// Transitions from loading to the bucketized representation.
    fn activate(&mut self) {
        let State::Loading { counts, total } = &self.state else {
            return;
        };
        debug_assert!(!counts.is_empty());
        let values: Vec<(i64, u64)> = counts.iter().map(|(&v, &c)| (v, c)).collect();
        let total = *total as f64;

        // Borders between consecutive distinct values: the border after
        // value v_i is the midpoint between v_i's unit interval end and
        // v_{i+1}'s start.
        let mut buckets = Vec::with_capacity(values.len());
        for (i, &(v, c)) in values.iter().enumerate() {
            let lo = if i == 0 {
                v as f64
            } else {
                let prev = values[i - 1].0;
                ((prev + 1) as f64 + v as f64) / 2.0
            };
            buckets.push(DcBucket {
                lo,
                count: c as f64,
                singular: false,
            });
        }
        let hi = (values.last().expect("nonempty").0 + 1) as f64;
        let mut active = Active {
            buckets,
            hi,
            total,
            reg_sum: 0.0,
            reg_sumsq: 0.0,
            reg_n: 0,
        };
        active.rebuild_chi2();
        self.state = State::Active(active);
    }
}

impl Active {
    /// Right border of bucket `i`.
    fn hi_of(&self, i: usize) -> f64 {
        if i + 1 < self.buckets.len() {
            self.buckets[i + 1].lo
        } else {
            self.hi
        }
    }

    /// Index of the bucket containing continuous coordinate `x`;
    /// `x` must lie within `[first.lo, hi)`.
    fn bucket_of(&self, x: f64) -> usize {
        self.buckets
            .partition_point(|b| b.lo <= x)
            .saturating_sub(1)
    }

    /// Recomputes the incremental chi-square sums from scratch.
    fn rebuild_chi2(&mut self) {
        self.reg_sum = 0.0;
        self.reg_sumsq = 0.0;
        self.reg_n = 0;
        for b in &self.buckets {
            if !b.singular {
                self.reg_sum += b.count;
                self.reg_sumsq += b.count * b.count;
                self.reg_n += 1;
            }
        }
    }

    /// Chi-square p-value of the regular-bucket uniformity hypothesis,
    /// from the maintained sums: `chi2 = k*sumsq/sum - sum`.
    fn uniformity_pvalue(&self) -> f64 {
        if self.reg_n < 2 || self.reg_sum <= 0.0 {
            return 1.0;
        }
        let k = self.reg_n as f64;
        let chi2 = (k * self.reg_sumsq / self.reg_sum - self.reg_sum).max(0.0);
        if chi2 == 0.0 {
            return 1.0;
        }
        chi2_pvalue(chi2, k - 1.0)
    }

    /// Applies `delta` (+1/-1) to bucket `i`'s count, maintaining the
    /// chi-square sums.
    fn bump(&mut self, i: usize, delta: f64) {
        let b = &mut self.buckets[i];
        let old = b.count;
        b.count += delta;
        debug_assert!(b.count >= -1e-9, "bucket count went negative");
        b.count = b.count.max(0.0);
        if !b.singular {
            self.reg_sum += b.count - old;
            self.reg_sumsq += b.count * b.count - old * old;
        }
        self.total += delta;
    }

    /// The piecewise-uniform density segments of the current buckets.
    fn segments(&self) -> Vec<BucketSpan> {
        (0..self.buckets.len())
            .map(|i| BucketSpan::new(self.buckets[i].lo, self.hi_of(i), self.buckets[i].count))
            .collect()
    }

    /// Full repartition: demote cold singulars, equalize regular counts,
    /// promote hot unit-width buckets (Section 3's repartitioning step).
    fn repartition(&mut self, capacity: usize) {
        let n = capacity;
        let threshold = self.total / n as f64;
        let segments = self.segments();

        // 1. Pin hot unit-width intervals as singular buckets. A candidate
        //    is any current bucket of (near-)unit width whose count reaches
        //    the Compressed criterion f >= N/n; previously singular buckets
        //    below the threshold are thereby demoted into the regular pool.
        #[derive(Debug)]
        struct Pinned {
            value: i64,
            count: f64,
        }
        let mut pinned: Vec<Pinned> = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let width = self.hi_of(i) - b.lo;
            if width <= 1.0 + WIDTH_EPS && b.count >= threshold && b.count > 0.0 {
                let center = b.lo + width / 2.0;
                let value = center.floor() as i64;
                if pinned.last().is_some_and(|p| p.value == value) {
                    continue;
                }
                pinned.push(Pinned { value, count: 0.0 });
            }
        }
        // Keep at most n-1 pinned (leave at least one regular bucket),
        // preferring the heaviest.
        if pinned.len() > n.saturating_sub(1) {
            let mut with_mass: Vec<(f64, usize)> = pinned
                .iter()
                .enumerate()
                .map(|(idx, p)| {
                    let lo = p.value as f64;
                    let mass: f64 = segments.iter().map(|s| s.mass_in(lo, lo + 1.0)).sum();
                    (mass, idx)
                })
                .collect();
            with_mass.sort_by(|a, b| b.0.total_cmp(&a.0));
            let keep: std::collections::BTreeSet<usize> = with_mass
                .into_iter()
                .take(n.saturating_sub(1))
                .map(|(_, idx)| idx)
                .collect();
            pinned = pinned
                .into_iter()
                .enumerate()
                .filter(|(idx, _)| keep.contains(idx))
                .map(|(_, p)| p)
                .collect();
        }
        // Integrate the density over each pinned unit interval.
        for p in &mut pinned {
            let lo = p.value as f64;
            p.count = segments.iter().map(|s| s.mass_in(lo, lo + 1.0)).sum();
        }

        // 2. The remaining domain splits into runs (gaps between pinned
        //    intervals), each to be tiled with equal-count regular buckets.
        let domain_lo = self.buckets[0].lo;
        let domain_hi = self.hi;
        let mut runs: Vec<(f64, f64)> = Vec::with_capacity(pinned.len() + 1);
        let mut cursor = domain_lo;
        for p in &pinned {
            let plo = p.value as f64;
            let phi = plo + 1.0;
            if plo > cursor + WIDTH_EPS {
                runs.push((cursor, plo));
            }
            cursor = cursor.max(phi);
        }
        if domain_hi > cursor + WIDTH_EPS {
            runs.push((cursor, domain_hi));
        }

        // 3. Apportion the regular slots across runs proportionally to
        //    their mass, at least one per run. If there are more runs than
        //    slots, demote the lightest pinned buckets until it fits.
        let mut slots = n - pinned.len();
        while slots < runs.len() && !pinned.is_empty() {
            // Demote the lightest pinned value; its mass rejoins a run.
            let lightest = pinned
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.count.total_cmp(&b.1.count))
                .map(|(i, _)| i)
                .expect("nonempty");
            pinned.remove(lightest);
            slots += 1;
            // Rebuild runs from scratch with the reduced pin set.
            runs.clear();
            let mut cursor = domain_lo;
            for p in &pinned {
                let plo = p.value as f64;
                if plo > cursor + WIDTH_EPS {
                    runs.push((cursor, plo));
                }
                cursor = cursor.max(plo + 1.0);
            }
            if domain_hi > cursor + WIDTH_EPS {
                runs.push((cursor, domain_hi));
            }
        }
        if runs.is_empty() {
            // Degenerate: everything pinned. Materialize pins only.
            self.buckets = pinned
                .iter()
                .map(|p| DcBucket {
                    lo: p.value as f64,
                    count: p.count,
                    singular: true,
                })
                .collect();
            self.hi = pinned
                .last()
                .map(|p| (p.value + 1) as f64)
                .unwrap_or(domain_hi);
            self.rebuild_chi2();
            return;
        }

        let run_mass: Vec<f64> = runs
            .iter()
            .map(|&(a, b)| segments.iter().map(|s| s.mass_in(a, b)).sum())
            .collect();
        let total_run_mass: f64 = run_mass.iter().sum();
        let extra = slots - runs.len();
        let mut run_slots: Vec<usize> = vec![1; runs.len()];
        if extra > 0 {
            // Largest-remainder apportionment of the extra slots by mass.
            let mut exact: Vec<(f64, usize)> = run_mass
                .iter()
                .enumerate()
                .map(|(i, &m)| {
                    let share = if total_run_mass > 0.0 {
                        m / total_run_mass * extra as f64
                    } else {
                        // Massless pool: spread by width instead.
                        let w = runs[i].1 - runs[i].0;
                        let total_w: f64 = runs.iter().map(|&(a, b)| b - a).sum();
                        w / total_w * extra as f64
                    };
                    (share, i)
                })
                .collect();
            let mut given = 0usize;
            for &(share, i) in &exact {
                let floor = share.floor() as usize;
                run_slots[i] += floor;
                given += floor;
            }
            exact.sort_by(|a, b| {
                let fa = a.0 - a.0.floor();
                let fb = b.0 - b.0.floor();
                fb.total_cmp(&fa).then(a.1.cmp(&b.1))
            });
            for &(_, i) in exact.iter().take(extra - given) {
                run_slots[i] += 1;
            }
        }

        // 4. Equal-area cut each run against the old density.
        let mut new_buckets: Vec<DcBucket> = Vec::with_capacity(n);
        let mut pin_iter = pinned.iter().peekable();
        for (r, &(a, b)) in runs.iter().enumerate() {
            // Emit pinned singulars that precede this run.
            while let Some(p) = pin_iter.peek() {
                if (p.value as f64) < a {
                    new_buckets.push(DcBucket {
                        lo: p.value as f64,
                        count: p.count,
                        singular: true,
                    });
                    pin_iter.next();
                } else {
                    break;
                }
            }
            let k = run_slots[r];
            let mass = run_mass[r];
            let target = mass / k as f64;
            let mut cut = a;
            for j in 0..k {
                let lo = cut;
                cut = if j + 1 == k {
                    b
                } else if mass > 0.0 {
                    cut_position(&segments, a, lo, target).clamp(lo, b)
                } else {
                    a + (b - a) * (j + 1) as f64 / k as f64
                };
                new_buckets.push(DcBucket {
                    lo,
                    count: target,
                    singular: false,
                });
            }
        }
        for p in pin_iter {
            new_buckets.push(DcBucket {
                lo: p.value as f64,
                count: p.count,
                singular: true,
            });
        }
        debug_assert!(
            new_buckets.windows(2).all(|w| w[0].lo <= w[1].lo),
            "repartition produced unsorted borders"
        );

        self.buckets = new_buckets;
        self.hi = domain_hi;
        self.rebuild_chi2();
    }
}

/// Finds `x` such that the density mass in `[prev_cut, x)` reaches
/// `target`, walking the piecewise-uniform `segments` (which are sorted).
fn cut_position(segments: &[BucketSpan], run_lo: f64, prev_cut: f64, target: f64) -> f64 {
    let mut need = target;
    let mut x = prev_cut;
    for s in segments {
        if s.hi <= x || s.count == 0.0 {
            continue;
        }
        if s.lo < run_lo && s.hi <= run_lo {
            continue;
        }
        let lo = s.lo.max(x);
        let avail = s.mass_in(lo, s.hi);
        if avail >= need {
            return lo + need / s.density();
        }
        need -= avail;
        x = s.hi;
    }
    x
}

impl ReadHistogram for DcHistogram {
    fn spans(&self) -> Vec<BucketSpan> {
        match &self.state {
            State::Loading { counts, .. } => counts
                .iter()
                .map(|(&v, &c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect(),
            State::Active(a) => a.segments(),
        }
    }

    fn total_count(&self) -> f64 {
        match &self.state {
            State::Loading { total, .. } => *total as f64,
            State::Active(a) => a.total,
        }
    }

    fn num_buckets(&self) -> usize {
        match &self.state {
            State::Loading { counts, .. } => counts.len(),
            State::Active(a) => a.buckets.len(),
        }
    }
}

impl DynHistogram for DcHistogram {
    fn as_read(&self) -> &dyn ReadHistogram {
        self
    }

    fn insert(&mut self, v: i64) {
        match &mut self.state {
            State::Loading { counts, total } => {
                *counts.entry(v).or_insert(0) += 1;
                *total += 1;
                if counts.len() >= self.capacity {
                    self.activate();
                }
            }
            State::Active(a) => {
                let x = v as f64 + 0.5;
                if x < a.buckets[0].lo {
                    // Extend the leftmost bucket down to the new point; an
                    // extended singular bucket is no longer unit width, so
                    // it rejoins the regular pool.
                    let b = &mut a.buckets[0];
                    b.lo = v as f64;
                    if b.singular {
                        b.singular = false;
                        a.reg_sum += b.count;
                        a.reg_sumsq += b.count * b.count;
                        a.reg_n += 1;
                    }
                    a.bump(0, 1.0);
                } else if x >= a.hi {
                    let last = a.buckets.len() - 1;
                    a.hi = (v + 1) as f64;
                    let b = &mut a.buckets[last];
                    if b.singular {
                        b.singular = false;
                        a.reg_sum += b.count;
                        a.reg_sumsq += b.count * b.count;
                        a.reg_n += 1;
                    }
                    a.bump(last, 1.0);
                } else {
                    let i = a.bucket_of(x);
                    a.bump(i, 1.0);
                }
                if self.alpha_min > 0.0
                    && (self.alpha_min >= 1.0 || a.uniformity_pvalue() <= self.alpha_min)
                {
                    a.repartition(self.capacity);
                    self.repartitions += 1;
                }
            }
        }
    }

    fn delete(&mut self, v: i64) {
        match &mut self.state {
            State::Loading { counts, total } => {
                if let Some(c) = counts.get_mut(&v) {
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&v);
                    }
                    *total -= 1;
                }
            }
            State::Active(a) => {
                if a.total <= 0.0 {
                    return;
                }
                let x = (v as f64 + 0.5).clamp(a.buckets[0].lo, a.hi - 1e-12);
                let i = a.bucket_of(x);
                // Remove one unit of mass. Counts can be fractional after
                // repartitioning, so take what the target bucket holds and
                // spill the remainder to the closest buckets outward
                // (Section 7.3).
                let mut need = 1.0f64;
                let take = a.buckets[i].count.min(need);
                if take > 0.0 {
                    a.bump(i, -take);
                    need -= take;
                }
                let mut d = 1usize;
                while need > 1e-12 && d < a.buckets.len() {
                    for c in [i.checked_sub(d), i.checked_add(d)].into_iter().flatten() {
                        if need <= 1e-12 {
                            break;
                        }
                        if let Some(b) = a.buckets.get(c) {
                            let take = b.count.min(need);
                            if take > 0.0 {
                                a.bump(c, -take);
                                need -= take;
                            }
                        }
                    }
                    d += 1;
                }
                if self.alpha_min > 0.0
                    && (self.alpha_min >= 1.0 || a.uniformity_pvalue() <= self.alpha_min)
                {
                    a.repartition(self.capacity);
                    self.repartitions += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::ks_error;
    use crate::DataDistribution;

    #[test]
    fn loading_phase_is_exact() {
        let mut h = DcHistogram::new(10);
        for v in [3, 1, 4, 1, 5] {
            h.insert(v);
        }
        assert!(h.is_loading());
        assert_eq!(h.total_count(), 5.0);
        assert_eq!(h.num_buckets(), 4); // distinct values so far
        assert!((h.estimate_eq(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn activates_after_capacity_distinct_values() {
        let mut h = DcHistogram::new(4);
        for v in [10, 20, 30] {
            h.insert(v);
        }
        assert!(h.is_loading());
        h.insert(40);
        assert!(!h.is_loading());
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.total_count(), 4.0);
    }

    #[test]
    fn total_count_tracks_stream() {
        let mut h = DcHistogram::new(8);
        for v in 0..1000i64 {
            h.insert(v % 100);
        }
        assert_eq!(h.total_count(), 1000.0);
        for v in 0..100i64 {
            h.delete(v);
        }
        assert_eq!(h.total_count(), 900.0);
    }

    #[test]
    fn spans_tile_without_overlap() {
        let mut h = DcHistogram::new(16);
        for i in 0..5000i64 {
            h.insert((i * 37) % 500);
        }
        let spans = h.spans();
        assert_eq!(spans.len(), 16);
        for w in spans.windows(2) {
            assert!(w[0].hi <= w[1].lo + 1e-9, "overlap: {w:?}");
        }
        let total: f64 = spans.iter().map(|s| s.count).sum();
        assert!((total - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn repartition_preserves_total_mass() {
        let mut h = DcHistogram::with_alpha(8, 1.0); // repartition every insert
        for i in 0..500i64 {
            h.insert((i * 13) % 97);
        }
        assert!(h.repartition_count() > 0);
        assert!((h.total_count() - 500.0).abs() < 1e-6);
        let spans = h.spans();
        let sum: f64 = spans.iter().map(|s| s.count).sum();
        assert!((sum - 500.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_zero_never_repartitions() {
        let mut h = DcHistogram::with_alpha(8, 0.0);
        for i in 0..2000i64 {
            h.insert(i % 100);
        }
        assert_eq!(h.repartition_count(), 0);
    }

    #[test]
    fn skewed_stream_triggers_repartition() {
        let mut h = DcHistogram::new(8);
        // Load with spread values, then hammer one value.
        for v in 0..8i64 {
            h.insert(v * 100);
        }
        for _ in 0..5000 {
            h.insert(350);
        }
        assert!(h.repartition_count() > 0, "chi-square should have fired");
    }

    #[test]
    fn hot_value_earns_singular_bucket() {
        let mut h = DcHistogram::new(8);
        for v in 0..8i64 {
            h.insert(v * 10);
        }
        for _ in 0..10_000 {
            h.insert(35);
        }
        // A 10k-point spike among ~10k total: the estimate at 35 should be
        // nearly exact thanks to a singular bucket.
        let est = h.estimate_eq(35);
        assert!(
            est > 8_000.0,
            "singular bucket should capture the spike, estimate {est}"
        );
    }

    #[test]
    fn extends_range_left_and_right() {
        let mut h = DcHistogram::new(4);
        for v in [100, 200, 300, 400] {
            h.insert(v);
        }
        h.insert(50); // below
        h.insert(500); // above
        assert_eq!(h.total_count(), 6.0);
        let spans = h.spans();
        assert!(spans[0].lo <= 50.0);
        assert!(spans.last().unwrap().hi >= 501.0);
    }

    #[test]
    fn deletes_from_nearest_when_bucket_empty() {
        let mut h = DcHistogram::new(4);
        for v in [10, 20, 30, 40] {
            h.insert(v);
        }
        // Delete more of value 10's bucket than it holds.
        h.delete(10);
        h.delete(10);
        assert_eq!(h.total_count(), 2.0);
    }

    #[test]
    fn tracks_uniform_distribution_well() {
        let mut h = DcHistogram::new(32);
        let mut truth = DataDistribution::new();
        for i in 0..20_000i64 {
            let v = (i * 7919) % 1000;
            h.insert(v);
            truth.insert(v);
        }
        let ks = ks_error(&h, &truth);
        assert!(ks < 0.05, "uniform data should be easy for DC, ks={ks}");
    }

    #[test]
    fn tracks_shifting_distribution() {
        // First half over [0,500), second half over [500,1000): DC must
        // follow the shift, the core "evolving data" scenario.
        let mut h = DcHistogram::new(32);
        let mut truth = DataDistribution::new();
        for i in 0..10_000i64 {
            let v = (i * 7919) % 500;
            h.insert(v);
            truth.insert(v);
        }
        for i in 0..10_000i64 {
            let v = 500 + (i * 104_729) % 500;
            h.insert(v);
            truth.insert(v);
        }
        let ks = ks_error(&h, &truth);
        assert!(ks < 0.08, "DC failed to track the shift, ks={ks}");
    }

    #[test]
    fn capacity_one_is_robust() {
        let mut h = DcHistogram::new(1);
        for v in 0..100i64 {
            h.insert(v);
        }
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.total_count(), 100.0);
    }
}
