//! A two-dimensional extension of the DADO/DVO split-merge histogram —
//! the paper's stated future-work direction ("the most important direction
//! of our future work is the extension of the DC and DADO algorithms to
//! more than one dimension").
//!
//! Buckets are axis-aligned rectangles organized in a binary partition
//! tree (so merges are always well-defined: only *sibling* leaves merge,
//! reconstituting their parent rectangle). Each leaf stores **four
//! quadrant counters** — the 2-D analog of the paper's two sub-buckets —
//! from which the deviation measure φ is computed:
//!
//! * **split** the leaf with the largest φ, along the axis with the larger
//!   counter imbalance; each child deduces its quadrant counters from the
//!   parent's piecewise-uniform density;
//! * **merge** the sibling-leaf pair whose merged parent has the smallest
//!   φ (Eq. 4 generalized to quadrant segments).
//!
//! A split-merge pair fires when it lowers φ, exactly as in one dimension.

use crate::dynamic::deviation::DeviationPolicy;
use std::marker::PhantomData;

/// An axis-aligned rectangle `[x0, x1) x [y0, y1)` in the continuous
/// embedding (integer point `(x, y)` occupies the unit square at
/// `(x, y)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Inclusive lower x border.
    pub x0: f64,
    /// Exclusive upper x border.
    pub x1: f64,
    /// Inclusive lower y border.
    pub y0: f64,
    /// Exclusive upper y border.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    /// Panics if the borders are out of order.
    pub fn new(x0: f64, x1: f64, y0: f64, y1: f64) -> Self {
        assert!(x0 <= x1 && y0 <= y1, "malformed rect");
        Self { x0, x1, y0, y1 }
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Whether the point lies inside.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Area of the intersection with another rectangle.
    pub fn intersection_area(&self, o: &Rect) -> f64 {
        let w = (self.x1.min(o.x1) - self.x0.max(o.x0)).max(0.0);
        let h = (self.y1.min(o.y1) - self.y0.max(o.y0)).max(0.0);
        w * h
    }

    fn mid_x(&self) -> f64 {
        (self.x0 + self.x1) / 2.0
    }

    fn mid_y(&self) -> f64 {
        (self.y0 + self.y1) / 2.0
    }

    /// The four quadrants (SW, SE, NW, NE).
    fn quadrants(&self) -> [Rect; 4] {
        let (mx, my) = (self.mid_x(), self.mid_y());
        [
            Rect::new(self.x0, mx, self.y0, my),
            Rect::new(mx, self.x1, self.y0, my),
            Rect::new(self.x0, mx, my, self.y1),
            Rect::new(mx, self.x1, my, self.y1),
        ]
    }
}

/// A leaf bucket: a rectangle with four quadrant counters.
#[derive(Debug, Clone, PartialEq)]
struct Leaf {
    rect: Rect,
    /// Quadrant counts in SW, SE, NW, NE order.
    counts: [f64; 4],
    /// Index of the parent inner node in the tree arena (`usize::MAX` for
    /// the root).
    parent: usize,
}

impl Leaf {
    fn count(&self) -> f64 {
        self.counts.iter().sum()
    }

    fn quadrant_of(&self, x: f64, y: f64) -> usize {
        let east = x >= self.rect.mid_x();
        let north = y >= self.rect.mid_y();
        match (north, east) {
            (false, false) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (true, true) => 3,
        }
    }

    /// φ over the quadrant densities (area-weighted deviation from the
    /// leaf's average density).
    fn phi<P: DeviationPolicy>(&self) -> f64 {
        let area = self.rect.area();
        if area <= 0.0 {
            return 0.0;
        }
        let davg = self.count() / area;
        self.rect
            .quadrants()
            .iter()
            .zip(&self.counts)
            .filter(|(q, _)| q.area() > 0.0)
            .map(|(q, &c)| q.area() * P::dev(c / q.area() - davg))
            .sum()
    }

    /// Mass of this leaf's density inside `target`.
    fn mass_in(&self, target: &Rect) -> f64 {
        self.rect
            .quadrants()
            .iter()
            .zip(&self.counts)
            .filter(|(q, _)| q.area() > 0.0)
            .map(|(q, &c)| c * q.intersection_area(target) / q.area())
            .sum()
    }

    /// Builds a leaf over `rect` by integrating the given leaves' density.
    fn from_density(rect: Rect, parent: usize, sources: &[&Leaf]) -> Leaf {
        let mut counts = [0.0f64; 4];
        for (i, q) in rect.quadrants().iter().enumerate() {
            counts[i] = sources.iter().map(|s| s.mass_in(q)).sum();
        }
        Leaf {
            rect,
            counts,
            parent,
        }
    }
}

/// The binary partition tree over leaves.
#[derive(Debug, Clone)]
enum Node {
    Leaf(Leaf),
    Inner {
        /// Children indices in the arena.
        left: usize,
        right: usize,
        parent: usize,
    },
    /// Recycled slot.
    Free,
}

/// A two-dimensional split/merge dynamic histogram.
///
/// # Examples
/// ```
/// use dh_core::dynamic::{AbsoluteDeviation, Grid2dHistogram};
///
/// let mut h = Grid2dHistogram::<AbsoluteDeviation>::new(32, (0, 100), (0, 100));
/// for i in 0..5000i64 {
///     h.insert(i % 100, (i * 7) % 100);
/// }
/// assert_eq!(h.total_count(), 5000.0);
/// let est = h.estimate_range((0, 49), (0, 99));
/// assert!((est - 2500.0).abs() < 500.0, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct Grid2dHistogram<P: DeviationPolicy> {
    nodes: Vec<Node>,
    root: usize,
    capacity: usize,
    leaves: usize,
    total: f64,
    _policy: PhantomData<P>,
}

impl<P: DeviationPolicy> Grid2dHistogram<P> {
    /// Creates a histogram with at most `capacity` leaf buckets over the
    /// inclusive integer domain `x_range` × `y_range`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or a range is empty.
    pub fn new(capacity: usize, x_range: (i64, i64), y_range: (i64, i64)) -> Self {
        assert!(capacity > 0, "need at least one bucket");
        assert!(
            x_range.1 >= x_range.0 && y_range.1 >= y_range.0,
            "empty domain"
        );
        let rect = Rect::new(
            x_range.0 as f64,
            (x_range.1 + 1) as f64,
            y_range.0 as f64,
            (y_range.1 + 1) as f64,
        );
        Self {
            nodes: vec![Node::Leaf(Leaf {
                rect,
                counts: [0.0; 4],
                parent: usize::MAX,
            })],
            root: 0,
            capacity,
            leaves: 1,
            total: 0.0,
            _policy: PhantomData,
        }
    }

    /// Number of leaf buckets currently in use.
    pub fn num_buckets(&self) -> usize {
        self.leaves
    }

    /// Total mass.
    pub fn total_count(&self) -> f64 {
        self.total
    }

    /// Leaf index containing the point (clamped into the root rectangle).
    fn leaf_of(&self, x: f64, y: f64) -> usize {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(_) => return idx,
                Node::Inner { left, right, .. } => {
                    // Children tile the parent; descend into whichever
                    // contains the point (right wins ties at the cut).
                    let l = self.leaf_rect(*left);
                    idx = if l.contains(x, y) { *left } else { *right };
                }
                Node::Free => unreachable!("descended into a free slot"),
            }
        }
    }

    /// Bounding rectangle of any node (leaf rect, or union for inner).
    fn leaf_rect(&self, idx: usize) -> Rect {
        match &self.nodes[idx] {
            Node::Leaf(l) => l.rect,
            Node::Inner { left, right, .. } => {
                let a = self.leaf_rect(*left);
                let b = self.leaf_rect(*right);
                Rect::new(
                    a.x0.min(b.x0),
                    a.x1.max(b.x1),
                    a.y0.min(b.y0),
                    a.y1.max(b.y1),
                )
            }
            Node::Free => unreachable!("rect of a free slot"),
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(i) = self.nodes.iter().position(|n| matches!(n, Node::Free)) {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Observes the insertion of integer point `(x, y)`.
    pub fn insert(&mut self, x: i64, y: i64) {
        let (px, py) = self.clamped(x, y);
        let idx = self.leaf_of(px, py);
        let Node::Leaf(leaf) = &mut self.nodes[idx] else {
            unreachable!()
        };
        let q = leaf.quadrant_of(px, py);
        leaf.counts[q] += 1.0;
        self.total += 1.0;
        self.maybe_split_merge();
    }

    /// Observes the deletion of integer point `(x, y)`; removes mass from
    /// the containing leaf, spilling to the closest-by-tree leaves when it
    /// has run dry (the 2-D analog of Section 7.3's policy).
    pub fn delete(&mut self, x: i64, y: i64) {
        if self.total <= 0.0 {
            return;
        }
        let (px, py) = self.clamped(x, y);
        let idx = self.leaf_of(px, py);
        let mut need = 1.0f64;
        need -= self.take_from_leaf(idx, px, py, need);
        if need > 1e-12 {
            // Walk all leaves by tree order, nearest-first approximation.
            let leaf_ids: Vec<usize> = self.leaf_indices();
            for id in leaf_ids {
                if need <= 1e-12 {
                    break;
                }
                need -= self.take_from_leaf(id, px, py, need);
            }
        }
        self.total -= 1.0 - need.max(0.0);
        self.maybe_split_merge();
    }

    fn clamped(&self, x: i64, y: i64) -> (f64, f64) {
        let r = self.leaf_rect(self.root);
        (
            (x as f64 + 0.5).clamp(r.x0, r.x1 - 1e-9),
            (y as f64 + 0.5).clamp(r.y0, r.y1 - 1e-9),
        )
    }

    fn take_from_leaf(&mut self, idx: usize, x: f64, y: f64, need: f64) -> f64 {
        let Node::Leaf(leaf) = &mut self.nodes[idx] else {
            return 0.0;
        };
        let start = leaf.quadrant_of(x, y);
        let order = [start, start ^ 1, start ^ 2, start ^ 3];
        let mut taken = 0.0;
        for q in order {
            if taken >= need {
                break;
            }
            let t = leaf.counts[q].min(need - taken);
            if t > 0.0 {
                leaf.counts[q] -= t;
                taken += t;
            }
        }
        taken
    }

    /// All current leaf indices.
    fn leaf_indices(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Leaf(_)).then_some(i))
            .collect()
    }

    /// One split-merge attempt, exactly as in one dimension.
    fn maybe_split_merge(&mut self) {
        if self.capacity < 2 {
            return;
        }
        // Best split: leaf with max φ, splittable (area allows halving).
        let mut best_split: Option<(usize, f64)> = None;
        for &i in &self.leaf_indices() {
            let Node::Leaf(l) = &self.nodes[i] else {
                continue;
            };
            if (l.rect.x1 - l.rect.x0) <= 1.0 + 1e-9 && (l.rect.y1 - l.rect.y0) <= 1.0 + 1e-9 {
                continue; // unit cell: nothing to resolve
            }
            let phi = l.phi::<P>();
            if best_split.is_none_or(|(_, bp)| phi > bp) {
                best_split = Some((i, phi));
            }
        }
        let Some((s, phi_s)) = best_split else {
            return;
        };

        // Best merge: sibling-leaf pair with min merged φ. Exclude pairs
        // touching the split candidate.
        let mut best_merge: Option<(usize, f64)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            let Node::Inner { left, right, .. } = n else {
                continue;
            };
            let (Node::Leaf(a), Node::Leaf(b)) = (&self.nodes[*left], &self.nodes[*right]) else {
                continue;
            };
            if *left == s || *right == s {
                continue;
            }
            let parent_rect = Rect::new(
                a.rect.x0.min(b.rect.x0),
                a.rect.x1.max(b.rect.x1),
                a.rect.y0.min(b.rect.y0),
                a.rect.y1.max(b.rect.y1),
            );
            let area = parent_rect.area();
            if area <= 0.0 {
                continue;
            }
            let davg = (a.count() + b.count()) / area;
            let phi: f64 = [a, b]
                .iter()
                .flat_map(|l| {
                    l.rect
                        .quadrants()
                        .into_iter()
                        .zip(l.counts)
                        .collect::<Vec<_>>()
                })
                .filter(|(q, _)| q.area() > 0.0)
                .map(|(q, c)| q.area() * P::dev(c / q.area() - davg))
                .sum();
            if best_merge.is_none_or(|(_, bp)| phi < bp) {
                best_merge = Some((i, phi));
            }
        }

        let over_capacity = self.leaves >= self.capacity;
        match best_merge {
            Some((m, phi_m)) if over_capacity && phi_s > phi_m => {
                self.merge_children_of(m);
                self.split_leaf(s);
            }
            _ if !over_capacity && phi_s > 0.0 => {
                // Below capacity: split freely (grow to the budget).
                self.split_leaf(s);
            }
            _ => {}
        }
    }

    /// Replaces the inner node `m` (whose children are both leaves) by a
    /// merged leaf.
    fn merge_children_of(&mut self, m: usize) {
        let Node::Inner {
            left,
            right,
            parent,
        } = self.nodes[m]
        else {
            return;
        };
        let (Node::Leaf(a), Node::Leaf(b)) = (self.nodes[left].clone(), self.nodes[right].clone())
        else {
            return;
        };
        let rect = Rect::new(
            a.rect.x0.min(b.rect.x0),
            a.rect.x1.max(b.rect.x1),
            a.rect.y0.min(b.rect.y0),
            a.rect.y1.max(b.rect.y1),
        );
        let merged = Leaf::from_density(rect, parent, &[&a, &b]);
        // Preserve mass exactly (integration can round).
        let mut merged = merged;
        let scale = (a.count() + b.count()) / merged.count().max(1e-12);
        if merged.count() > 0.0 {
            for c in &mut merged.counts {
                *c *= scale;
            }
        }
        self.nodes[m] = Node::Leaf(merged);
        self.nodes[left] = Node::Free;
        self.nodes[right] = Node::Free;
        self.leaves -= 1;
    }

    /// Splits leaf `s` along the axis with the larger quadrant imbalance.
    fn split_leaf(&mut self, s: usize) {
        let Node::Leaf(leaf) = self.nodes[s].clone() else {
            return;
        };
        let [sw, se, nw, ne] = leaf.counts;
        let x_imbalance = ((sw + nw) - (se + ne)).abs();
        let y_imbalance = ((sw + se) - (nw + ne)).abs();
        let wide = leaf.rect.x1 - leaf.rect.x0 > 1.0 + 1e-9;
        let tall = leaf.rect.y1 - leaf.rect.y0 > 1.0 + 1e-9;
        let split_x = match (wide, tall) {
            (true, false) => true,
            (false, true) => false,
            _ => x_imbalance >= y_imbalance,
        };
        let (ra, rb) = if split_x {
            let mx = leaf.rect.mid_x();
            (
                Rect::new(leaf.rect.x0, mx, leaf.rect.y0, leaf.rect.y1),
                Rect::new(mx, leaf.rect.x1, leaf.rect.y0, leaf.rect.y1),
            )
        } else {
            let my = leaf.rect.mid_y();
            (
                Rect::new(leaf.rect.x0, leaf.rect.x1, leaf.rect.y0, my),
                Rect::new(leaf.rect.x0, leaf.rect.x1, my, leaf.rect.y1),
            )
        };
        let child_a = Leaf::from_density(ra, s, &[&leaf]);
        let child_b = Leaf::from_density(rb, s, &[&leaf]);
        let ia = self.alloc(Node::Leaf(child_a));
        let ib = self.alloc(Node::Leaf(child_b));
        self.nodes[s] = Node::Inner {
            left: ia,
            right: ib,
            parent: leaf.parent,
        };
        self.leaves += 1;
    }

    /// Estimated number of points in the inclusive integer rectangle
    /// `[x.0, x.1] x [y.0, y.1]`.
    pub fn estimate_range(&self, x: (i64, i64), y: (i64, i64)) -> f64 {
        if x.1 < x.0 || y.1 < y.0 {
            return 0.0;
        }
        let target = Rect::new(x.0 as f64, (x.1 + 1) as f64, y.0 as f64, (y.1 + 1) as f64);
        self.leaf_indices()
            .into_iter()
            .map(|i| match &self.nodes[i] {
                Node::Leaf(l) => l.mass_in(&target),
                _ => 0.0,
            })
            .sum()
    }

    /// The leaf rectangles and their counts (for inspection/rendering).
    pub fn cells(&self) -> Vec<(Rect, f64)> {
        self.leaf_indices()
            .into_iter()
            .filter_map(|i| match &self.nodes[i] {
                Node::Leaf(l) => Some((l.rect, l.count())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::deviation::AbsoluteDeviation;

    type H = Grid2dHistogram<AbsoluteDeviation>;

    #[test]
    fn rect_geometry() {
        let r = Rect::new(0.0, 10.0, 0.0, 4.0);
        assert_eq!(r.area(), 40.0);
        assert!(r.contains(5.0, 2.0));
        assert!(!r.contains(10.0, 2.0));
        let o = Rect::new(5.0, 15.0, 2.0, 6.0);
        assert_eq!(r.intersection_area(&o), 10.0);
    }

    #[test]
    fn single_cell_counts() {
        let mut h = H::new(16, (0, 9), (0, 9));
        h.insert(3, 3);
        h.insert(3, 3);
        assert_eq!(h.total_count(), 2.0);
        let est = h.estimate_range((0, 9), (0, 9));
        assert!((est - 2.0).abs() < 1e-9);
    }

    #[test]
    fn splits_up_to_capacity() {
        let mut h = H::new(8, (0, 99), (0, 99));
        for i in 0..2000i64 {
            h.insert(i % 100, (i * 37) % 100);
        }
        assert!(h.num_buckets() <= 8);
        assert!(h.num_buckets() > 1, "should have split at least once");
        assert_eq!(h.total_count(), 2000.0);
    }

    #[test]
    fn mass_is_partitioned_not_duplicated() {
        let mut h = H::new(16, (0, 49), (0, 49));
        for i in 0..3000i64 {
            h.insert((i * 7) % 50, (i * 11) % 50);
        }
        let cell_mass: f64 = h.cells().iter().map(|(_, c)| c).sum();
        assert!((cell_mass - 3000.0).abs() < 1e-6);
        // Cells must not overlap: total pairwise intersection area == 0.
        let cells = h.cells();
        for (i, (a, _)) in cells.iter().enumerate() {
            for (b, _) in cells.iter().skip(i + 1) {
                assert!(
                    a.intersection_area(b) < 1e-9,
                    "overlapping cells {a:?} and {b:?}"
                );
            }
        }
    }

    #[test]
    fn concentrates_buckets_on_clusters() {
        // Two tight clusters; the histogram should resolve them with small
        // cells while leaving the empty space coarse.
        let mut h = H::new(24, (0, 199), (0, 199));
        for i in 0..5000i64 {
            let (cx, cy) = if i % 2 == 0 { (30, 30) } else { (160, 170) };
            h.insert(cx + i % 5, cy + (i / 2) % 5);
        }
        // Estimates around the clusters should capture most of the mass.
        let near_a = h.estimate_range((25, 40), (25, 40));
        let near_b = h.estimate_range((155, 170), (165, 180));
        assert!(near_a > 1800.0, "cluster A estimate too low: {near_a}");
        assert!(near_b > 1800.0, "cluster B estimate too low: {near_b}");
        // The empty middle should be nearly empty.
        let middle = h.estimate_range((80, 120), (80, 120));
        assert!(middle < 300.0, "phantom mass in empty space: {middle}");
    }

    #[test]
    fn range_estimates_reasonable_on_uniform_data() {
        let mut h = H::new(32, (0, 99), (0, 99));
        for x in 0..100i64 {
            for y in 0..100i64 {
                h.insert(x, y);
            }
        }
        assert_eq!(h.total_count(), 10_000.0);
        let quarter = h.estimate_range((0, 49), (0, 49));
        assert!(
            (quarter - 2500.0).abs() < 250.0,
            "quarter estimate {quarter}"
        );
    }

    #[test]
    fn deletions_remove_mass() {
        let mut h = H::new(16, (0, 19), (0, 19));
        for x in 0..20i64 {
            for y in 0..20i64 {
                h.insert(x, y);
            }
        }
        for x in 0..20i64 {
            for y in 0..10i64 {
                h.delete(x, y);
            }
        }
        assert!((h.total_count() - 200.0).abs() < 1e-6);
        let lower = h.estimate_range((0, 19), (0, 9));
        let upper = h.estimate_range((0, 19), (10, 19));
        assert!(
            upper > lower,
            "deleted half ({lower}) should hold less than kept half ({upper})"
        );
        // Never negative anywhere.
        assert!(h.cells().iter().all(|&(_, c)| c >= -1e-9));
    }

    #[test]
    fn delete_on_empty_is_noop() {
        let mut h = H::new(4, (0, 9), (0, 9));
        h.delete(5, 5);
        assert_eq!(h.total_count(), 0.0);
    }

    #[test]
    fn out_of_domain_points_clamp() {
        let mut h = H::new(4, (0, 9), (0, 9));
        h.insert(-5, 100);
        assert_eq!(h.total_count(), 1.0);
        assert!((h.estimate_range((0, 9), (0, 9)) - 1.0).abs() < 1e-9);
    }
}
