//! Deviation measures distinguishing DVO from DADO.
//!
//! V-Optimal histograms minimize the sum of **squared** deviations of
//! frequencies from their bucket average (Eq. 3); the paper's
//! Average-Deviation Optimal variants minimize the sum of **absolute**
//! deviations instead (Eq. 5), which is more robust to the frequency
//! outliers that random arrival order produces — the reason DADO beats DVO
//! dynamically while SADO and SVO tie statically (Section 4.1).

/// How a frequency's deviation from the bucket average is penalized.
pub trait DeviationPolicy: std::fmt::Debug + Clone + Copy + Default + 'static {
    /// Human-readable histogram name ("DVO"/"DADO").
    const NAME: &'static str;

    /// Penalty of a single deviation `x = f - f̄`.
    fn dev(x: f64) -> f64;
}

/// Squared deviations: the V-Optimal measure of Eq. (3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredDeviation;

impl DeviationPolicy for SquaredDeviation {
    const NAME: &'static str = "DVO";

    #[inline]
    fn dev(x: f64) -> f64 {
        x * x
    }
}

/// Absolute deviations: the Average-Deviation-Optimal measure of Eq. (5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsoluteDeviation;

impl DeviationPolicy for AbsoluteDeviation {
    const NAME: &'static str = "DADO";

    #[inline]
    fn dev(x: f64) -> f64 {
        x.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_policy() {
        assert_eq!(SquaredDeviation::dev(3.0), 9.0);
        assert_eq!(SquaredDeviation::dev(-3.0), 9.0);
        assert_eq!(SquaredDeviation::NAME, "DVO");
    }

    #[test]
    fn absolute_policy() {
        assert_eq!(AbsoluteDeviation::dev(3.0), 3.0);
        assert_eq!(AbsoluteDeviation::dev(-3.0), 3.0);
        assert_eq!(AbsoluteDeviation::NAME, "DADO");
    }

    #[test]
    fn absolute_is_less_sensitive_to_outliers() {
        // The motivating property of Section 4.1: a single large outlier
        // dominates the squared measure far more than the absolute one.
        let inlier = 1.0;
        let outlier = 10.0;
        let sq_ratio = SquaredDeviation::dev(outlier) / SquaredDeviation::dev(inlier);
        let abs_ratio = AbsoluteDeviation::dev(outlier) / AbsoluteDeviation::dev(inlier);
        assert!(sq_ratio > abs_ratio);
    }
}
