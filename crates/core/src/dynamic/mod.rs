//! The paper's dynamic histograms: incrementally maintained under
//! insertions and deletions within a fixed memory budget.
//!
//! * [`DcHistogram`] — Dynamic Compressed (Section 3): relaxes the
//!   Compressed partition constraint and repartitions when a chi-square
//!   test rejects the bucket-count uniformity hypothesis.
//! * [`DvoHistogram`] / [`DadoHistogram`] — Dynamic V-Optimal and Dynamic
//!   Average-Deviation Optimal (Section 4): two sub-buckets per bucket and
//!   split/merge repartitioning driven by the deviation measure φ
//!   (squared deviations for DVO, absolute deviations for DADO).
//!
//! All three share the general idea of Section 3: *"relax histogram
//! constraints up to a certain point, after which the histogram is
//! reorganized in order to meet constraints."*

pub mod dc;
pub mod deviation;
pub mod grid2d;
pub mod multi;
pub mod split_merge;

pub use dc::DcHistogram;
pub use deviation::{AbsoluteDeviation, DeviationPolicy, SquaredDeviation};
pub use grid2d::{Grid2dHistogram, Rect};
pub use multi::MultiSubHistogram;
pub use split_merge::{DadoHistogram, DvoHistogram, SplitMergeHistogram};

/// A histogram maintenance operation, decoupled from any particular
/// workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Insert one occurrence of the value.
    Insert(i64),
    /// Delete one occurrence of the value.
    Delete(i64),
}
