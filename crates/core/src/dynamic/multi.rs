//! Generalized split/merge histogram with `K` sub-buckets per bucket.
//!
//! Section 4 of the paper reports trying "dividing each bucket into more
//! than two parts" and found that *"all alternatives with a small number
//! of sub-buckets (two or three) have comparable performance, with finer
//! subdivisions being worse"* — intuitively, many equi-width sub-buckets
//! make the histogram more Equi-Width than V-Optimal in nature, and under
//! the byte budget every extra counter costs buckets.
//!
//! [`MultiSubHistogram`] implements that ablation: a DADO/DVO-style
//! histogram whose buckets carry `K >= 2` equal-width sub-bucket counters.
//! For `K = 2` it behaves like [`super::SplitMergeHistogram`] (kept
//! separate because the two-counter version is the paper's algorithm and
//! has a leaner hot path). The `subbucket_ablation` bench reproduces the
//! paper's observation.

use crate::bucket::BucketSpan;
use crate::dynamic::deviation::DeviationPolicy;
use crate::histogram::{DynHistogram, ReadHistogram};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// Minimum width a bucket must exceed to be splittable.
const MIN_SPLIT_WIDTH: f64 = 1.0 + 1e-9;

/// A bucket with `K` equal-width sub-bucket counters.
#[derive(Debug, Clone, PartialEq)]
struct MBucket {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
}

impl MBucket {
    fn new(lo: f64, hi: f64, k: usize) -> Self {
        Self {
            lo,
            hi,
            counts: vec![0.0; k],
        }
    }

    fn width(&self) -> f64 {
        self.hi - self.lo
    }

    fn count(&self) -> f64 {
        self.counts.iter().sum()
    }

    fn k(&self) -> usize {
        self.counts.len()
    }

    /// Border positions of the sub-buckets (k + 1 values).
    fn sub_border(&self, i: usize) -> f64 {
        self.lo + self.width() * i as f64 / self.k() as f64
    }

    /// Index of the sub-bucket containing coordinate `x`.
    fn sub_of(&self, x: f64) -> usize {
        let w = self.width();
        if w <= 0.0 {
            return 0;
        }
        (((x - self.lo) / w * self.k() as f64) as usize).min(self.k() - 1)
    }

    /// The uniform density segments of this bucket.
    fn segments(&self) -> Vec<BucketSpan> {
        (0..self.k())
            .map(|i| BucketSpan::new(self.sub_border(i), self.sub_border(i + 1), self.counts[i]))
            .collect()
    }

    /// Deviation measure φ over the sub-bucket frequencies.
    fn phi<P: DeviationPolicy>(&self) -> f64 {
        let w = self.width();
        if w <= 0.0 {
            return 0.0;
        }
        let sub_w = w / self.k() as f64;
        let favg = self.count() / w;
        self.counts
            .iter()
            .map(|&c| sub_w * P::dev(c / sub_w - favg))
            .sum()
    }

    /// Rebuilds a bucket over `[lo, hi)` by integrating `segments` into
    /// `k` fresh equal-width sub-buckets.
    fn from_segments(lo: f64, hi: f64, k: usize, segments: &[BucketSpan]) -> Self {
        let mut b = MBucket::new(lo, hi, k);
        for i in 0..k {
            let a = b.sub_border(i);
            let z = b.sub_border(i + 1);
            b.counts[i] = segments.iter().map(|s| s.mass_in(a, z)).sum();
        }
        b
    }

    /// φ of the bucket that would result from merging `a` and `b`
    /// (Eq. 4 against the pair's current approximation).
    fn merged_phi<P: DeviationPolicy>(a: &MBucket, b: &MBucket) -> f64 {
        let w = b.hi - a.lo;
        if w <= 0.0 {
            return 0.0;
        }
        let favg = (a.count() + b.count()) / w;
        a.segments()
            .iter()
            .chain(b.segments().iter())
            .filter(|s| s.width() > 0.0)
            .map(|s| s.width() * P::dev(s.density() - favg))
            .sum()
    }

    /// Merges two buckets, deducing sub-counters from the old segments.
    fn merge(a: &MBucket, b: &MBucket) -> MBucket {
        let mut segs = a.segments();
        segs.extend(b.segments());
        MBucket::from_segments(a.lo, b.hi, a.k(), &segs)
    }

    /// Splits at the middle sub-border; each child re-buckets its half.
    fn split(&self) -> (MBucket, MBucket) {
        let k = self.k();
        let cut = self.sub_border(k / 2);
        // Guard degenerate cuts (k = 2 gives the exact midpoint; odd k
        // cuts off-center, as close to the middle as borders allow).
        let segs = self.segments();
        let left = MBucket::from_segments(self.lo, cut, k, &segs);
        let right = MBucket::from_segments(cut, self.hi, k, &segs);
        (left, right)
    }
}

/// A split/merge dynamic histogram with `K` sub-buckets per bucket.
///
/// # Examples
/// ```
/// use dh_core::dynamic::{AbsoluteDeviation, MultiSubHistogram};
/// use dh_core::{DynHistogram, ReadHistogram};
///
/// // A DADO-flavored histogram with 4 sub-buckets per bucket.
/// let mut h = MultiSubHistogram::<AbsoluteDeviation>::new(16, 4);
/// for v in 0..2000i64 {
///     h.insert(v % 300);
/// }
/// assert_eq!(h.total_count(), 2000.0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiSubHistogram<P: DeviationPolicy> {
    capacity: usize,
    subs: usize,
    state: MState,
    _policy: PhantomData<P>,
}

#[derive(Debug, Clone)]
enum MState {
    Loading {
        counts: BTreeMap<i64, u64>,
        total: u64,
    },
    Active {
        buckets: Vec<MBucket>,
        total: f64,
    },
}

impl<P: DeviationPolicy> MultiSubHistogram<P> {
    /// Creates a histogram with `capacity` buckets of `subs` sub-buckets
    /// each.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `subs < 2`.
    pub fn new(capacity: usize, subs: usize) -> Self {
        assert!(capacity > 0, "need at least one bucket");
        assert!(subs >= 2, "need at least two sub-buckets, got {subs}");
        Self {
            capacity,
            subs,
            state: MState::Loading {
                counts: BTreeMap::new(),
                total: 0,
            },
            _policy: PhantomData,
        }
    }

    /// Sub-buckets per bucket.
    pub fn sub_buckets(&self) -> usize {
        self.subs
    }

    /// Bucket capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn activate(&mut self) {
        let MState::Loading { counts, total } = &self.state else {
            return;
        };
        let values: Vec<(i64, u64)> = counts.iter().map(|(&v, &c)| (v, c)).collect();
        let total = *total as f64;
        let mut buckets = Vec::with_capacity(values.len());
        for (i, &(v, c)) in values.iter().enumerate() {
            let lo = if i == 0 {
                v as f64
            } else {
                ((values[i - 1].0 + 1) as f64 + v as f64) / 2.0
            };
            let hi = if i + 1 < values.len() {
                ((v + 1) as f64 + values[i + 1].0 as f64) / 2.0
            } else {
                (v + 1) as f64
            };
            let unit = BucketSpan::new(v as f64, (v + 1) as f64, c as f64);
            buckets.push(MBucket::from_segments(lo, hi, self.subs, &[unit]));
        }
        self.state = MState::Active { buckets, total };
    }

    fn maybe_split_merge(&mut self) {
        let MState::Active { buckets, .. } = &mut self.state else {
            return;
        };
        if buckets.len() < 3 {
            return;
        }
        let mut best_split: Option<(usize, f64)> = None;
        for (i, b) in buckets.iter().enumerate() {
            if b.width() <= MIN_SPLIT_WIDTH {
                continue;
            }
            let phi = b.phi::<P>();
            if best_split.is_none_or(|(_, bp)| phi > bp) {
                best_split = Some((i, phi));
            }
        }
        let Some((s, phi_s)) = best_split else {
            return;
        };
        let mut best_merge: Option<(usize, f64)> = None;
        for i in 0..buckets.len() - 1 {
            if i == s || i + 1 == s {
                continue;
            }
            let phi = MBucket::merged_phi::<P>(&buckets[i], &buckets[i + 1]);
            if best_merge.is_none_or(|(_, bp)| phi < bp) {
                best_merge = Some((i, phi));
            }
        }
        let Some((m, phi_m)) = best_merge else {
            return;
        };
        if phi_s > phi_m {
            let (first, second) = buckets[s].split();
            if s > m {
                buckets[s] = second;
                buckets.insert(s, first);
                let merged = MBucket::merge(&buckets[m], &buckets[m + 1]);
                buckets[m] = merged;
                buckets.remove(m + 1);
            } else {
                let merged = MBucket::merge(&buckets[m], &buckets[m + 1]);
                buckets[m] = merged;
                buckets.remove(m + 1);
                buckets[s] = second;
                buckets.insert(s, first);
            }
        }
    }
}

impl<P: DeviationPolicy> ReadHistogram for MultiSubHistogram<P> {
    fn spans(&self) -> Vec<BucketSpan> {
        match &self.state {
            MState::Loading { counts, .. } => counts
                .iter()
                .map(|(&v, &c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect(),
            MState::Active { buckets, .. } => buckets.iter().flat_map(|b| b.segments()).collect(),
        }
    }

    fn total_count(&self) -> f64 {
        match &self.state {
            MState::Loading { total, .. } => *total as f64,
            MState::Active { total, .. } => *total,
        }
    }

    fn num_buckets(&self) -> usize {
        match &self.state {
            MState::Loading { counts, .. } => counts.len(),
            MState::Active { buckets, .. } => buckets.len(),
        }
    }
}

impl<P: DeviationPolicy> DynHistogram for MultiSubHistogram<P> {
    fn as_read(&self) -> &dyn ReadHistogram {
        self
    }

    fn insert(&mut self, v: i64) {
        match &mut self.state {
            MState::Loading { counts, total } => {
                *counts.entry(v).or_insert(0) += 1;
                *total += 1;
                if counts.len() >= self.capacity {
                    self.activate();
                }
            }
            MState::Active { buckets, total } => {
                let x = v as f64 + 0.5;
                *total += 1.0;
                let first_lo = buckets[0].lo;
                let last_hi = buckets.last().expect("nonempty").hi;
                if x < first_lo || x >= last_hi {
                    let fresh = if x < first_lo {
                        let lo = (v as f64).min(first_lo - 1.0);
                        let mut b = MBucket::new(lo, first_lo, self.subs);
                        let s = b.sub_of(x);
                        b.counts[s] = 1.0;
                        buckets.insert(0, b);
                        0usize
                    } else {
                        let hi = ((v + 1) as f64).max(last_hi + 1.0);
                        let mut b = MBucket::new(last_hi, hi, self.subs);
                        let s = b.sub_of(x);
                        b.counts[s] = 1.0;
                        buckets.push(b);
                        buckets.len() - 1
                    };
                    let _ = fresh;
                    if buckets.len() > self.capacity {
                        let mut best: Option<(usize, f64)> = None;
                        for i in 0..buckets.len() - 1 {
                            let phi = MBucket::merged_phi::<P>(&buckets[i], &buckets[i + 1]);
                            if best.is_none_or(|(_, bp)| phi < bp) {
                                best = Some((i, phi));
                            }
                        }
                        if let Some((m, _)) = best {
                            let merged = MBucket::merge(&buckets[m], &buckets[m + 1]);
                            buckets[m] = merged;
                            buckets.remove(m + 1);
                        }
                    }
                } else {
                    let i = buckets.partition_point(|b| b.lo <= x).saturating_sub(1);
                    let s = buckets[i].sub_of(x);
                    buckets[i].counts[s] += 1.0;
                    self.maybe_split_merge();
                }
            }
        }
    }

    fn delete(&mut self, v: i64) {
        match &mut self.state {
            MState::Loading { counts, total } => {
                if let Some(c) = counts.get_mut(&v) {
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&v);
                    }
                    *total -= 1;
                }
            }
            MState::Active { buckets, total } => {
                if *total <= 0.0 {
                    return;
                }
                let last_hi = buckets.last().expect("nonempty").hi;
                let x = (v as f64 + 0.5).clamp(buckets[0].lo, last_hi - 1e-12);
                let i = buckets.partition_point(|b| b.lo <= x).saturating_sub(1);
                let mut need = 1.0f64;
                need -= take_mass(&mut buckets[i], x, need);
                let mut d = 1usize;
                while need > 1e-12 && d < buckets.len() {
                    if let Some(c) = i.checked_sub(d) {
                        let at = buckets[c].hi - 1e-12;
                        need -= take_mass(&mut buckets[c], at, need);
                    }
                    if need > 1e-12 {
                        if let Some(b) = buckets.get_mut(i + d) {
                            let at = b.lo;
                            need -= take_mass(b, at, need);
                        }
                    }
                    d += 1;
                }
                *total -= 1.0 - need.max(0.0);
                self.maybe_split_merge();
            }
        }
    }
}

/// Removes up to `need` mass from the bucket, starting at the sub-bucket
/// containing `x` and walking outward. Returns the amount removed.
fn take_mass(b: &mut MBucket, x: f64, need: f64) -> f64 {
    let start = b.sub_of(x);
    let k = b.k();
    let mut taken = 0.0;
    for d in 0..k {
        for idx in [start.checked_sub(d), start.checked_add(d)] {
            let Some(idx) = idx else { continue };
            if idx >= k || taken >= need {
                continue;
            }
            let t = b.counts[idx].min(need - taken);
            if t > 0.0 {
                b.counts[idx] -= t;
                taken += t;
            }
        }
        if taken >= need {
            break;
        }
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::deviation::{AbsoluteDeviation, SquaredDeviation};
    use crate::evaluate::ks_error;
    use crate::DataDistribution;

    type Dado4 = MultiSubHistogram<AbsoluteDeviation>;

    #[test]
    fn construction_guards() {
        let h = Dado4::new(8, 4);
        assert_eq!(h.capacity(), 8);
        assert_eq!(h.sub_buckets(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two sub-buckets")]
    fn rejects_single_sub_bucket() {
        let _ = Dado4::new(8, 1);
    }

    #[test]
    fn bucket_geometry() {
        let b = MBucket::new(0.0, 12.0, 3);
        assert_eq!(b.sub_border(0), 0.0);
        assert_eq!(b.sub_border(1), 4.0);
        assert_eq!(b.sub_border(3), 12.0);
        assert_eq!(b.sub_of(0.0), 0);
        assert_eq!(b.sub_of(5.0), 1);
        assert_eq!(b.sub_of(11.9), 2);
    }

    #[test]
    fn phi_reduces_to_two_sub_case() {
        // K=2 MBucket phi must equal the closed forms of the main engine.
        let mut b = MBucket::new(0.0, 10.0, 2);
        b.counts = vec![8.0, 2.0];
        assert!((b.phi::<AbsoluteDeviation>() - 6.0).abs() < 1e-12);
        assert!((b.phi::<SquaredDeviation>() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn merge_and_split_preserve_mass() {
        let mut a = MBucket::new(0.0, 4.0, 4);
        a.counts = vec![1.0, 2.0, 3.0, 4.0];
        let mut b = MBucket::new(4.0, 8.0, 4);
        b.counts = vec![4.0, 3.0, 2.0, 1.0];
        let m = MBucket::merge(&a, &b);
        assert!((m.count() - 20.0).abs() < 1e-9);
        assert_eq!(m.k(), 4);
        let (l, r) = m.split();
        assert!((l.count() + r.count() - 20.0).abs() < 1e-9);
        assert_eq!(l.hi, r.lo);
    }

    #[test]
    fn tracks_distribution_with_various_k() {
        for k in [2usize, 3, 4, 8] {
            let mut h = MultiSubHistogram::<AbsoluteDeviation>::new(24, k);
            let mut truth = DataDistribution::new();
            for i in 0..10_000i64 {
                let v = (i * 13) % 600;
                h.insert(v);
                truth.insert(v);
            }
            let ks = ks_error(&h, &truth);
            assert!(ks < 0.08, "k={k}: ks={ks}");
            assert!((h.total_count() - 10_000.0).abs() < 1e-6);
            assert_eq!(h.num_buckets(), 24);
        }
    }

    #[test]
    fn deletions_spill_and_stay_nonnegative() {
        let mut h = MultiSubHistogram::<AbsoluteDeviation>::new(8, 3);
        for v in 0..500i64 {
            h.insert(v % 50);
        }
        for v in 0..400i64 {
            h.delete(v % 50);
        }
        assert!((h.total_count() - 100.0).abs() < 1e-6);
        assert!(h.spans().iter().all(|s| s.count >= -1e-9));
    }

    #[test]
    fn out_of_range_growth() {
        let mut h = MultiSubHistogram::<SquaredDeviation>::new(5, 3);
        for v in [100, 110, 120, 130, 140] {
            h.insert(v);
        }
        h.insert(0);
        h.insert(500);
        assert_eq!(h.num_buckets(), 5);
        let spans = h.spans();
        assert!(spans[0].lo <= 0.0);
        assert!(spans.last().unwrap().hi >= 501.0);
    }
}
