//! The split/merge dynamic histograms of Section 4: DVO and DADO.
//!
//! Each bucket stores its borders and **two sub-bucket counters** over
//! equal halves of its value range — the minimal internal structure that
//! lets the algorithm *measure* the V-Optimal (or AD-Optimal) partition
//! constraint, which plain border+count buckets cannot (Section 4's
//! discussion of Eq. 3).
//!
//! Repartitioning is a split-merge pair:
//!
//! * **split** the bucket with the largest deviation measure φ along its
//!   sub-bucket border (splitting never increases φ; the new buckets start
//!   with equal sub-counters and φ = 0);
//! * **merge** the adjacent pair whose merged bucket has the smallest
//!   combined φ (merging never decreases φ).
//!
//! Theorem 4.1 shows the optimal triple is found by these two linear scans.
//! The pair is executed when `φ(split) > φ(merge)`, i.e. when the change
//! `Δφ = φ_M - φ_S` of Eq. (4) is negative — the paper's most aggressive
//! (zero) threshold.

use crate::bucket::BucketSpan;
use crate::dynamic::deviation::{AbsoluteDeviation, DeviationPolicy, SquaredDeviation};
use crate::histogram::{DynHistogram, ReadHistogram};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// Minimum width a bucket must exceed to be splittable: splitting a bucket
/// of unit width (one value) cannot improve a histogram over integer data.
const MIN_SPLIT_WIDTH: f64 = 1.0 + 1e-9;

/// One DVO/DADO bucket: borders plus two sub-bucket counters over the
/// equal halves of `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SmBucket {
    lo: f64,
    hi: f64,
    /// Count in `[lo, mid)`.
    left: f64,
    /// Count in `[mid, hi)`.
    right: f64,
}

impl SmBucket {
    fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    fn width(&self) -> f64 {
        self.hi - self.lo
    }

    fn count(&self) -> f64 {
        self.left + self.right
    }

    /// The deviation measure φ of this bucket: with equal-width
    /// sub-buckets, frequencies are `2c/w` and the average is `(cl+cr)/w`,
    /// so `φ = Σ_j d(f_j - f̄) = w·d((cl-cr)/w)` summed over both halves.
    fn phi<P: DeviationPolicy>(&self) -> f64 {
        let w = self.width();
        if w <= 0.0 {
            return 0.0;
        }
        let half = w / 2.0;
        let favg = self.count() / w;
        half * P::dev(self.left / half - favg) + half * P::dev(self.right / half - favg)
    }

    /// The four uniform density segments of two adjacent buckets.
    fn segments_of_pair(a: &SmBucket, b: &SmBucket) -> [BucketSpan; 4] {
        [
            BucketSpan::new(a.lo, a.mid(), a.left),
            BucketSpan::new(a.mid(), a.hi, a.right),
            BucketSpan::new(b.lo, b.mid(), b.left),
            BucketSpan::new(b.mid(), b.hi, b.right),
        ]
    }

    /// φ of the bucket that would result from merging `a` and `b`,
    /// evaluated per Eq. (4) against the pair's current piecewise-uniform
    /// approximation (the only "truth" available to the algorithm).
    fn merged_phi<P: DeviationPolicy>(a: &SmBucket, b: &SmBucket) -> f64 {
        let w = b.hi - a.lo;
        if w <= 0.0 {
            return 0.0;
        }
        let favg = (a.count() + b.count()) / w;
        Self::segments_of_pair(a, b)
            .iter()
            .filter(|s| s.width() > 0.0)
            .map(|s| s.width() * P::dev(s.density() - favg))
            .sum()
    }

    /// Merges `a` and `b` into one bucket, deducing the new sub-bucket
    /// counters from the old configuration (Fig. 4's "counters in the
    /// merged bucket are deduced from the old configuration").
    fn merge(a: &SmBucket, b: &SmBucket) -> SmBucket {
        let lo = a.lo;
        let hi = b.hi;
        let mid = (lo + hi) / 2.0;
        let left: f64 = Self::segments_of_pair(a, b)
            .iter()
            .map(|s| s.mass_in(lo, mid))
            .sum();
        let right = (a.count() + b.count()) - left;
        SmBucket {
            lo,
            hi,
            left,
            right: right.max(0.0),
        }
    }

    /// Splits this bucket along its sub-bucket border; each new bucket's
    /// sub-counters are equal, so both start with φ = 0.
    fn split(&self) -> (SmBucket, SmBucket) {
        let m = self.mid();
        (
            SmBucket {
                lo: self.lo,
                hi: m,
                left: self.left / 2.0,
                right: self.left / 2.0,
            },
            SmBucket {
                lo: m,
                hi: self.hi,
                left: self.right / 2.0,
                right: self.right / 2.0,
            },
        )
    }
}

/// The split/merge dynamic histogram, generic over the deviation measure.
///
/// Use the [`DvoHistogram`] and [`DadoHistogram`] aliases.
///
/// # Examples
/// ```
/// use dh_core::dynamic::DadoHistogram;
/// use dh_core::{DynHistogram, ReadHistogram};
///
/// let mut h = DadoHistogram::new(24);
/// for i in 0..5000i64 {
///     h.insert((i * 31) % 400);
/// }
/// assert_eq!(h.total_count(), 5000.0);
/// assert_eq!(h.num_buckets(), 24);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMergeHistogram<P: DeviationPolicy> {
    capacity: usize,
    state: State,
    /// Number of split-merge reorganizations performed.
    reorganizations: u64,
    _policy: PhantomData<P>,
}

/// Dynamic V-Optimal: squared deviations (Section 4).
pub type DvoHistogram = SplitMergeHistogram<SquaredDeviation>;

/// Dynamic Average-Deviation Optimal: absolute deviations (Section 4.1) —
/// the paper's best dynamic histogram.
pub type DadoHistogram = SplitMergeHistogram<AbsoluteDeviation>;

#[derive(Debug, Clone)]
enum State {
    Loading {
        counts: BTreeMap<i64, u64>,
        total: u64,
    },
    Active {
        buckets: Vec<SmBucket>,
        total: f64,
    },
}

impl<P: DeviationPolicy> SplitMergeHistogram<P> {
    /// Creates a histogram with `capacity` buckets (each holding two
    /// sub-bucket counters).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "{} needs at least one bucket", P::NAME);
        Self {
            capacity,
            state: State::Loading {
                counts: BTreeMap::new(),
                total: 0,
            },
            reorganizations: 0,
            _policy: PhantomData,
        }
    }

    /// The histogram's bucket capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The algorithm name from the deviation policy ("DVO" or "DADO").
    pub fn name(&self) -> &'static str {
        P::NAME
    }

    /// Number of split-merge reorganizations performed so far.
    pub fn reorganization_count(&self) -> u64 {
        self.reorganizations
    }

    /// Whether the histogram is still exact (loading phase).
    pub fn is_loading(&self) -> bool {
        matches!(self.state, State::Loading { .. })
    }

    /// Builds buckets from the loading-phase exact counts: borders placed
    /// between consecutive distinct values, each value's unit-interval mass
    /// integrated into the sub-buckets it overlaps.
    fn activate(&mut self) {
        let State::Loading { counts, total } = &self.state else {
            return;
        };
        let values: Vec<(i64, u64)> = counts.iter().map(|(&v, &c)| (v, c)).collect();
        let total = *total as f64;
        let mut buckets = Vec::with_capacity(values.len());
        for (i, &(v, _)) in values.iter().enumerate() {
            let lo = if i == 0 {
                v as f64
            } else {
                ((values[i - 1].0 + 1) as f64 + v as f64) / 2.0
            };
            let hi = if i + 1 < values.len() {
                ((v + 1) as f64 + values[i + 1].0 as f64) / 2.0
            } else {
                (v + 1) as f64
            };
            buckets.push(SmBucket {
                lo,
                hi,
                left: 0.0,
                right: 0.0,
            });
        }
        // Deposit each value's mass into the sub-halves it overlaps.
        for (i, &(v, c)) in values.iter().enumerate() {
            let b = &mut buckets[i];
            let unit = BucketSpan::new(v as f64, (v + 1) as f64, c as f64);
            let mid = b.mid();
            b.left += unit.mass_in(b.lo, mid);
            b.right += unit.mass_in(mid, b.hi);
        }
        self.state = State::Active { buckets, total };
    }

    /// Index of the bucket containing continuous coordinate `x` (clamped
    /// to the bucket range).
    fn bucket_of(buckets: &[SmBucket], x: f64) -> usize {
        buckets.partition_point(|b| b.lo <= x).saturating_sub(1)
    }

    /// Linear scan for the best split candidate: the splittable bucket
    /// with the largest φ (Theorem 4.1).
    fn find_best_to_split(buckets: &[SmBucket]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, b) in buckets.iter().enumerate() {
            if b.width() <= MIN_SPLIT_WIDTH {
                continue;
            }
            let phi = b.phi::<P>();
            if best.is_none_or(|(_, bp)| phi > bp) {
                best = Some((i, phi));
            }
        }
        best
    }

    /// Linear scan for the best merge candidate: the adjacent pair `(i,
    /// i+1)` minimizing the merged φ of Eq. (4). `exclude` removes pairs
    /// touching a bucket that is about to be split.
    fn find_best_to_merge(buckets: &[SmBucket], exclude: Option<usize>) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..buckets.len().saturating_sub(1) {
            if exclude.is_some_and(|s| i == s || i + 1 == s) {
                continue;
            }
            let phi = SmBucket::merged_phi::<P>(&buckets[i], &buckets[i + 1]);
            if best.is_none_or(|(_, bp)| phi < bp) {
                best = Some((i, phi));
            }
        }
        best
    }

    /// One repartitioning attempt after an in-range update: split the
    /// worst bucket and merge the most similar pair when that lowers φ.
    fn maybe_split_merge(&mut self) {
        let State::Active { buckets, .. } = &mut self.state else {
            return;
        };
        if buckets.len() < 3 {
            return;
        }
        let Some((s, phi_s)) = Self::find_best_to_split(buckets) else {
            return;
        };
        let Some((m, phi_m)) = Self::find_best_to_merge(buckets, Some(s)) else {
            return;
        };
        if phi_s > phi_m {
            // Order matters for indices: do the higher index first.
            let (first, second) = buckets[s].split();
            if s > m {
                buckets[s] = second;
                buckets.insert(s, first);
                let merged = SmBucket::merge(&buckets[m], &buckets[m + 1]);
                buckets[m] = merged;
                buckets.remove(m + 1);
            } else {
                let merged = SmBucket::merge(&buckets[m], &buckets[m + 1]);
                buckets[m] = merged;
                buckets.remove(m + 1);
                buckets[s] = second;
                buckets.insert(s, first);
            }
            self.reorganizations += 1;
        }
    }
}

impl<P: DeviationPolicy> ReadHistogram for SplitMergeHistogram<P> {
    /// Two spans per bucket — the sub-bucket counters are stored state, so
    /// estimation uses them at full resolution.
    fn spans(&self) -> Vec<BucketSpan> {
        match &self.state {
            State::Loading { counts, .. } => counts
                .iter()
                .map(|(&v, &c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect(),
            State::Active { buckets, .. } => buckets
                .iter()
                .flat_map(|b| {
                    [
                        BucketSpan::new(b.lo, b.mid(), b.left),
                        BucketSpan::new(b.mid(), b.hi, b.right),
                    ]
                })
                .collect(),
        }
    }

    fn total_count(&self) -> f64 {
        match &self.state {
            State::Loading { total, .. } => *total as f64,
            State::Active { total, .. } => *total,
        }
    }

    /// Logical bucket count (each logical bucket renders as two spans).
    fn num_buckets(&self) -> usize {
        match &self.state {
            State::Loading { counts, .. } => counts.len(),
            State::Active { buckets, .. } => buckets.len(),
        }
    }
}

impl<P: DeviationPolicy> DynHistogram for SplitMergeHistogram<P> {
    fn as_read(&self) -> &dyn ReadHistogram {
        self
    }

    fn insert(&mut self, v: i64) {
        match &mut self.state {
            State::Loading { counts, total } => {
                *counts.entry(v).or_insert(0) += 1;
                *total += 1;
                if counts.len() >= self.capacity {
                    self.activate();
                }
            }
            State::Active { buckets, total } => {
                let x = v as f64 + 0.5;
                *total += 1.0;
                if x < buckets[0].lo || x >= buckets.last().expect("nonempty").hi {
                    // Beyond the end buckets: borrow a bucket for the new
                    // point (Fig. 3), spanning the gap up to the old edge
                    // so the tiling stays contiguous, then merge the most
                    // similar pair to pay the bucket back.
                    let fresh = if x < buckets[0].lo {
                        let hi = buckets[0].lo;
                        let lo = (v as f64).min(hi - 1.0);
                        let mid = (lo + hi) / 2.0;
                        let (l, r) = if x < mid { (1.0, 0.0) } else { (0.0, 1.0) };
                        buckets.insert(
                            0,
                            SmBucket {
                                lo,
                                hi,
                                left: l,
                                right: r,
                            },
                        );
                        0
                    } else {
                        let lo = buckets.last().expect("nonempty").hi;
                        let hi = ((v + 1) as f64).max(lo + 1.0);
                        let mid = (lo + hi) / 2.0;
                        let (l, r) = if x < mid { (1.0, 0.0) } else { (0.0, 1.0) };
                        buckets.push(SmBucket {
                            lo,
                            hi,
                            left: l,
                            right: r,
                        });
                        buckets.len() - 1
                    };
                    if buckets.len() > self.capacity {
                        // The paper's findBestToMerge scans all pairs; the
                        // freshly borrowed bucket may itself take part.
                        let _ = fresh;
                        if let Some((m, _)) = Self::find_best_to_merge(buckets, None) {
                            let merged = SmBucket::merge(&buckets[m], &buckets[m + 1]);
                            buckets[m] = merged;
                            buckets.remove(m + 1);
                            self.reorganizations += 1;
                        }
                    }
                } else {
                    let i = Self::bucket_of(buckets, x);
                    let b = &mut buckets[i];
                    if x < b.mid() {
                        b.left += 1.0;
                    } else {
                        b.right += 1.0;
                    }
                    self.maybe_split_merge();
                }
            }
        }
    }

    fn delete(&mut self, v: i64) {
        match &mut self.state {
            State::Loading { counts, total } => {
                if let Some(c) = counts.get_mut(&v) {
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&v);
                    }
                    *total -= 1;
                }
            }
            State::Active { buckets, total } => {
                if *total <= 0.0 {
                    return;
                }
                let last_hi = buckets.last().expect("nonempty").hi;
                let x = (v as f64 + 0.5).clamp(buckets[0].lo, last_hi - 1e-12);
                let i = Self::bucket_of(buckets, x);
                // Remove one unit of mass. Counts are fractional after
                // splits and merges, so take what the target bucket holds,
                // spilling the remainder to the closest buckets outward
                // (Section 7.3's spill policy).
                let mut need = 1.0f64;
                let prefer_left = x < buckets[i].mid();
                need -= take_from(&mut buckets[i], prefer_left, need);
                let mut d = 1usize;
                while need > 1e-12 && d < buckets.len() {
                    if let Some(c) = i.checked_sub(d) {
                        // Left neighbor: its right sub-bucket is nearer.
                        need -= take_from(&mut buckets[c], false, need);
                    }
                    if need > 1e-12 {
                        if let Some(b) = buckets.get_mut(i + d) {
                            need -= take_from(b, true, need);
                        }
                    }
                    d += 1;
                }
                *total -= 1.0 - need.max(0.0);
                self.maybe_split_merge();
            }
        }
    }
}

/// Removes up to `need` mass from a bucket, draining the preferred
/// sub-bucket first. Returns the amount actually removed.
fn take_from(b: &mut SmBucket, prefer_left: bool, need: f64) -> f64 {
    let mut taken = 0.0;
    let order: [bool; 2] = if prefer_left {
        [true, false]
    } else {
        [false, true]
    };
    for left in order {
        if taken >= need {
            break;
        }
        let counter = if left { &mut b.left } else { &mut b.right };
        let t = counter.min(need - taken);
        if t > 0.0 {
            *counter -= t;
            taken += t;
        }
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::ks_error;
    use crate::DataDistribution;

    #[test]
    fn phi_zero_for_balanced_sub_buckets() {
        let b = SmBucket {
            lo: 0.0,
            hi: 10.0,
            left: 5.0,
            right: 5.0,
        };
        assert_eq!(b.phi::<SquaredDeviation>(), 0.0);
        assert_eq!(b.phi::<AbsoluteDeviation>(), 0.0);
    }

    #[test]
    fn phi_closed_forms() {
        // w=10, cl=8, cr=2: DADO phi = |cl-cr| = 6; DVO phi = (cl-cr)^2/w = 3.6.
        let b = SmBucket {
            lo: 0.0,
            hi: 10.0,
            left: 8.0,
            right: 2.0,
        };
        assert!((b.phi::<AbsoluteDeviation>() - 6.0).abs() < 1e-12);
        assert!((b.phi::<SquaredDeviation>() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn split_produces_zero_phi_children() {
        let b = SmBucket {
            lo: 0.0,
            hi: 8.0,
            left: 6.0,
            right: 2.0,
        };
        let (l, r) = b.split();
        assert_eq!(l.count() + r.count(), b.count());
        assert_eq!(l.phi::<SquaredDeviation>(), 0.0);
        assert_eq!(r.phi::<SquaredDeviation>(), 0.0);
        assert_eq!(l.hi, r.lo);
        assert_eq!(l.lo, b.lo);
        assert_eq!(r.hi, b.hi);
    }

    #[test]
    fn merge_preserves_mass_and_borders() {
        let a = SmBucket {
            lo: 0.0,
            hi: 4.0,
            left: 3.0,
            right: 1.0,
        };
        let b = SmBucket {
            lo: 4.0,
            hi: 12.0,
            left: 0.0,
            right: 8.0,
        };
        let m = SmBucket::merge(&a, &b);
        assert_eq!(m.lo, 0.0);
        assert_eq!(m.hi, 12.0);
        assert!((m.count() - 12.0).abs() < 1e-12);
        // Left half [0,6): segments give 3 + 1 + 0 = 4.
        assert!((m.left - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merged_phi_at_least_sum_of_parts_for_squared() {
        // "Merging never decreases phi" — check Eq. 4's phi_M dominates
        // the children's own phi for the squared measure.
        let a = SmBucket {
            lo: 0.0,
            hi: 4.0,
            left: 9.0,
            right: 1.0,
        };
        let b = SmBucket {
            lo: 4.0,
            hi: 8.0,
            left: 2.0,
            right: 8.0,
        };
        let pm = SmBucket::merged_phi::<SquaredDeviation>(&a, &b);
        let parts = a.phi::<SquaredDeviation>() + b.phi::<SquaredDeviation>();
        assert!(pm >= parts - 1e-9, "phi_M={pm} < parts={parts}");
    }

    #[test]
    fn merged_phi_zero_for_identical_flat_pair() {
        let a = SmBucket {
            lo: 0.0,
            hi: 4.0,
            left: 2.0,
            right: 2.0,
        };
        let b = SmBucket {
            lo: 4.0,
            hi: 8.0,
            left: 2.0,
            right: 2.0,
        };
        assert!(SmBucket::merged_phi::<SquaredDeviation>(&a, &b) < 1e-12);
    }

    #[test]
    fn loading_then_activation() {
        let mut h = DadoHistogram::new(4);
        for v in [10, 20, 30] {
            h.insert(v);
        }
        assert!(h.is_loading());
        h.insert(40);
        assert!(!h.is_loading());
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.total_count(), 4.0);
        // Spans: two per bucket.
        assert_eq!(h.spans().len(), 8);
    }

    #[test]
    fn buckets_stay_contiguous_and_capacity_bounded() {
        let mut h = DadoHistogram::new(12);
        for i in 0..20_000i64 {
            h.insert((i * 13) % 700);
        }
        assert_eq!(h.num_buckets(), 12);
        let spans = h.spans();
        for w in spans.windows(2) {
            assert!(
                (w[0].hi - w[1].lo).abs() < 1e-9,
                "gap or overlap between spans: {w:?}"
            );
        }
        assert!((h.total_count() - 20_000.0).abs() < 1e-6);
        let mass: f64 = spans.iter().map(|s| s.count).sum();
        assert!((mass - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_values_grow_domain() {
        let mut h = DvoHistogram::new(6);
        for v in [100, 110, 120, 130, 140, 150] {
            h.insert(v);
        }
        h.insert(10);
        h.insert(300);
        assert_eq!(h.num_buckets(), 6);
        let spans = h.spans();
        assert!(spans[0].lo <= 10.0);
        assert!(spans.last().unwrap().hi >= 301.0);
        assert_eq!(h.total_count(), 8.0);
    }

    #[test]
    fn dado_tracks_skewed_distribution() {
        let mut h = DadoHistogram::new(32);
        let mut truth = DataDistribution::new();
        // Zipf-ish: value v with frequency ~ 1/(v+1).
        for v in 0..200i64 {
            let reps = 2000 / (v + 1);
            for _ in 0..reps {
                h.insert(v);
                truth.insert(v);
            }
        }
        let ks = ks_error(&h, &truth);
        assert!(ks < 0.1, "DADO should capture static skew, ks={ks}");
    }

    #[test]
    fn dado_adapts_to_spike() {
        let mut h = DadoHistogram::new(16);
        let mut truth = DataDistribution::new();
        // 80% of the stream is a spike at 500, interleaved with a uniform
        // background (random-order arrival, as in the paper's workloads).
        for i in 0..10_000i64 {
            let v = if i % 5 != 0 { 500 } else { (i * 7) % 1000 };
            h.insert(v);
            truth.insert(v);
        }
        let ks = ks_error(&h, &truth);
        assert!(ks < 0.15, "DADO should adapt to the spike, ks={ks}");
        // The spike estimate should be much better than uniform smearing.
        let est = h.estimate_eq(500);
        assert!(est > 2000.0, "spike estimate too low: {est}");
    }

    #[test]
    fn deletion_decrements_and_spills() {
        let mut h = DadoHistogram::new(4);
        for v in [10, 20, 30, 40] {
            h.insert(v);
        }
        h.delete(10);
        assert_eq!(h.total_count(), 3.0);
        // Bucket for 10 is now empty; deleting 10 again spills to the
        // closest non-empty bucket.
        h.delete(10);
        assert_eq!(h.total_count(), 2.0);
        // Exhaust everything.
        h.delete(20);
        h.delete(30);
        assert_eq!(h.total_count(), 0.0);
        h.delete(40); // nothing left; must not underflow
        assert_eq!(h.total_count(), 0.0);
    }

    #[test]
    fn insert_delete_storm_keeps_counts_nonnegative() {
        let mut h = DadoHistogram::new(8);
        for i in 0..3000i64 {
            h.insert(i % 100);
            if i % 3 == 0 {
                h.delete((i / 2) % 100);
            }
        }
        for s in h.spans() {
            assert!(s.count >= 0.0, "negative span count: {s:?}");
        }
        let expected = 3000.0 - 1000.0;
        assert!((h.total_count() - expected).abs() < 1e-6);
    }

    #[test]
    fn dvo_and_dado_reorganize() {
        let mut dvo = DvoHistogram::new(8);
        let mut dado = DadoHistogram::new(8);
        for i in 0..5000i64 {
            let v = if i % 10 == 0 { 77 } else { (i * 17) % 500 };
            dvo.insert(v);
            dado.insert(v);
        }
        assert!(dvo.reorganization_count() > 0);
        assert!(dado.reorganization_count() > 0);
        assert_eq!(dvo.name(), "DVO");
        assert_eq!(dado.name(), "DADO");
    }

    #[test]
    fn capacity_one_survives() {
        let mut h = DadoHistogram::new(1);
        for v in 0..50i64 {
            h.insert(v);
        }
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.total_count(), 50.0);
    }
}
