//! Exact data distributions: the ground truth histograms approximate.
//!
//! [`DataDistribution`] tracks the exact multiset of live values under
//! insertions and deletions. Experiments replay the same update stream into
//! a distribution and into the histograms under test, then compare the two
//! with the KS statistic (see [`crate::evaluate`]).

use dh_stats::StepCdf;
use std::collections::BTreeMap;

/// An exact, updateable multiset of integer values with frequency lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataDistribution {
    freq: BTreeMap<i64, u64>,
    total: u64,
}

impl DataDistribution {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the distribution of a slice of values.
    pub fn from_values(values: &[i64]) -> Self {
        let mut d = Self::new();
        for &v in values {
            d.insert(v);
        }
        d
    }

    /// Builds from a `(value, frequency)` table.
    pub fn from_frequencies(pairs: impl IntoIterator<Item = (i64, u64)>) -> Self {
        let mut freq = BTreeMap::new();
        let mut total = 0u64;
        for (v, c) in pairs {
            if c > 0 {
                *freq.entry(v).or_insert(0) += c;
                total += c;
            }
        }
        Self { freq, total }
    }

    /// Records one occurrence of `v`.
    pub fn insert(&mut self, v: i64) {
        *self.freq.entry(v).or_insert(0) += 1;
        self.total += 1;
    }

    /// Removes one occurrence of `v`. Returns `true` if the value was live.
    pub fn delete(&mut self, v: i64) -> bool {
        match self.freq.get_mut(&v) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.freq.remove(&v);
                }
                self.total -= 1;
                true
            }
            None => false,
        }
    }

    /// Exact frequency of `v`.
    pub fn frequency(&self, v: i64) -> u64 {
        self.freq.get(&v).copied().unwrap_or(0)
    }

    /// Number of live data points.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct live values.
    pub fn distinct(&self) -> usize {
        self.freq.len()
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest live value, if any.
    pub fn min(&self) -> Option<i64> {
        self.freq.keys().next().copied()
    }

    /// Largest live value, if any.
    pub fn max(&self) -> Option<i64> {
        self.freq.keys().next_back().copied()
    }

    /// Exact count of live values `<= v`.
    pub fn count_le(&self, v: i64) -> u64 {
        self.freq.range(..=v).map(|(_, &c)| c).sum()
    }

    /// Exact count of live values in `[a, b]`.
    pub fn count_range(&self, a: i64, b: i64) -> u64 {
        if a > b {
            return 0;
        }
        self.freq.range(a..=b).map(|(_, &c)| c).sum()
    }

    /// Iterates `(value, frequency)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.freq.iter().map(|(&v, &c)| (v, c))
    }

    /// The `(value, frequency)` table as a vector.
    pub fn frequency_table(&self) -> Vec<(i64, u64)> {
        self.iter().collect()
    }

    /// The exact step CDF of this distribution **in the continuous
    /// embedding**: value `v` occupies `[v, v+1)`, so its mass registers at
    /// breakpoint `v + 1`.
    pub fn step_cdf(&self) -> StepCdf {
        StepCdf::from_counts(self.iter().map(|(v, c)| ((v + 1) as f64, c as f64)))
    }

    /// The exact *continuous* CDF of this distribution: one unit-width
    /// uniform span per distinct value. This is the ground-truth side of
    /// every KS comparison in this workspace — both truth and histogram
    /// live in the same continuous embedding, so a histogram that stores
    /// the distribution exactly (e.g. all-singular buckets) scores KS = 0,
    /// and at every integer coordinate `x` the CDF equals the true
    /// fraction of values `< x`.
    pub fn exact_cdf(&self) -> crate::bucket::HistogramCdf {
        crate::bucket::HistogramCdf::from_spans(
            self.iter()
                .map(|(v, c)| crate::bucket::BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect(),
        )
    }

    /// Materializes the multiset as a sorted vector of values.
    pub fn to_values(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.total as usize);
        for (v, c) in self.iter() {
            out.extend(std::iter::repeat_n(v, c as usize));
        }
        out
    }
}

impl FromIterator<i64> for DataDistribution {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        let mut d = Self::new();
        for v in iter {
            d.insert(v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_roundtrip() {
        let mut d = DataDistribution::new();
        d.insert(5);
        d.insert(5);
        d.insert(2);
        assert_eq!(d.total(), 3);
        assert_eq!(d.frequency(5), 2);
        assert!(d.delete(5));
        assert_eq!(d.frequency(5), 1);
        assert!(d.delete(5));
        assert_eq!(d.frequency(5), 0);
        assert!(!d.delete(5), "deleting a dead value must fail");
        assert_eq!(d.total(), 1);
    }

    #[test]
    fn counts_and_ranges() {
        let d = DataDistribution::from_values(&[1, 3, 3, 7, 9]);
        assert_eq!(d.count_le(0), 0);
        assert_eq!(d.count_le(3), 3);
        assert_eq!(d.count_range(3, 7), 3);
        assert_eq!(d.count_range(8, 2), 0);
        assert_eq!(d.min(), Some(1));
        assert_eq!(d.max(), Some(9));
        assert_eq!(d.distinct(), 4);
    }

    #[test]
    fn from_frequencies_skips_zeros() {
        let d = DataDistribution::from_frequencies([(1, 2), (4, 0), (9, 1)]);
        assert_eq!(d.distinct(), 2);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn step_cdf_uses_continuous_embedding() {
        use dh_stats::Cdf;
        let d = DataDistribution::from_values(&[0, 0, 10]);
        let c = d.step_cdf();
        // Mass of value 0 registers at breakpoint 1, not 0.
        assert_eq!(c.fraction_le(0.0), 0.0);
        assert!((c.fraction_le(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.fraction_le(11.0), 1.0);
    }

    #[test]
    fn to_values_is_sorted_multiset() {
        let d = DataDistribution::from_values(&[9, 1, 3, 3]);
        assert_eq!(d.to_values(), vec![1, 3, 3, 9]);
    }

    #[test]
    fn from_iterator() {
        let d: DataDistribution = [4i64, 4, 4].into_iter().collect();
        assert_eq!(d.frequency(4), 3);
    }
}
