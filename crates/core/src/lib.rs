//! Core histogram framework and the dynamic histograms of *Dynamic
//! Histograms: Capturing Evolving Data Sets* (ICDE 2000): Dynamic
//! Compressed (DC), Dynamic V-Optimal (DVO) and Dynamic Average-Deviation
//! Optimal (DADO).
//!
//! # The framework
//!
//! Following the histogram framework of Poosala et al. (reference \[9\] of
//! the paper), a histogram partitions the value axis into contiguous,
//! non-overlapping buckets and stores aggregate information per bucket.
//! Approximate distributions are reconstructed under two assumptions:
//!
//! * **uniform distribution** — mass is spread evenly inside a bucket;
//! * **continuous values** — every value in a bucket's range is assumed
//!   present.
//!
//! # The integer-value embedding
//!
//! Datasets are multisets of `i64` values. Internally each integer value
//! `v` occupies the unit interval `[v, v+1)` of a continuous axis, so that
//! a "width one" bucket (the paper's *singular* bucket) is exactly the unit
//! interval of a single value and bucket borders may sit at fractional
//! positions (DC repartitioning places them there). All estimators convert
//! back to integer semantics: [`ReadHistogram::estimate_le`] answers
//! `|{x : x <= v}|` and so on.
//!
//! # Modules
//!
//! * [`bucket`] — bucket spans and the piecewise-linear [`HistogramCdf`].
//! * [`distribution`] — exact [`DataDistribution`] ground truth.
//! * [`memory`] — the paper's byte-budget model ([`MemoryBudget`]).
//! * [`histogram`] — the [`ReadHistogram`]/[`DynHistogram`] traits (and
//!   the [`Histogram`] extension trait); see its migration notes.
//! * [`dynamic`] — DC, DVO and DADO.
//! * [`evaluate`] — KS-statistic evaluation glue (Section 6.2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bucket;
pub mod distribution;
pub mod dynamic;
pub mod evaluate;
pub mod histogram;
pub mod memory;

pub use bucket::{BucketSpan, HistogramCdf};
pub use distribution::DataDistribution;
pub use dynamic::UpdateOp;
pub use evaluate::{avg_relative_error_of, ks_error};
pub use histogram::{BoxedHistogram, DynHistogram, Histogram, ReadHistogram};
pub use memory::{HistogramClass, MemoryBudget};
