//! Histogram quality evaluation (Section 6.2 of the paper).
//!
//! The paper's metric of choice is the Kolmogorov–Smirnov statistic between
//! the true data distribution and the distribution the histogram
//! represents; Eq. (7)'s average relative error over a query workload is
//! kept as a cross-check. Both are exposed here as one-call helpers.

use crate::bucket::HistogramCdf;
use crate::distribution::DataDistribution;
use crate::histogram::ReadHistogram;
use dh_stats::ks_at_integers;
use dh_stats::metrics::{avg_relative_error, RangeQuery};

/// KS statistic between a histogram and the exact data distribution.
///
/// This is Eq. (6) evaluated exactly: the maximum absolute difference
/// between the true CDF and the histogram's CDF, both piecewise linear in
/// the continuous embedding (each integer value occupies its unit
/// interval). Its value is the maximum selectivity error of any one-sided
/// range predicate, as a fraction of the relation size; a histogram that
/// represents the distribution exactly scores 0.
pub fn ks_error(histogram: &impl ReadHistogram, truth: &DataDistribution) -> f64 {
    ks_at_integers(&truth.exact_cdf(), &histogram.cdf())
}

/// KS statistic between a histogram and a precomputed exact truth CDF.
///
/// Avoids rebuilding the truth CDF when many histograms are scored against
/// the same data (every figure in the paper does exactly that).
pub fn ks_error_against(histogram: &impl ReadHistogram, truth_cdf: &HistogramCdf) -> f64 {
    ks_at_integers(truth_cdf, &histogram.cdf())
}

/// Eq. (7): average relative selectivity error (percent) of the histogram
/// over a range-query workload, against the exact distribution.
pub fn avg_relative_error_of(
    histogram: &impl ReadHistogram,
    truth: &DataDistribution,
    queries: &[RangeQuery],
) -> f64 {
    avg_relative_error(&truth.exact_cdf(), &histogram.cdf(), queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketSpan;

    /// A histogram that represents `truth` perfectly: one unit-width bucket
    /// per distinct value.
    struct Exact(Vec<BucketSpan>);
    impl ReadHistogram for Exact {
        fn spans(&self) -> Vec<BucketSpan> {
            self.0.clone()
        }
    }

    fn exact_of(truth: &DataDistribution) -> Exact {
        Exact(
            truth
                .iter()
                .map(|(v, c)| BucketSpan::new(v as f64, v as f64 + 1.0, c as f64))
                .collect(),
        )
    }

    #[test]
    fn perfect_histogram_scores_zero() {
        let truth = DataDistribution::from_values(&[1, 5, 5, 9, 9, 9]);
        let h = exact_of(&truth);
        assert!(ks_error(&h, &truth) < 1e-12);
    }

    #[test]
    fn single_bucket_over_spike_scores_poorly() {
        // All mass at value 0, histogram spreads it over [0, 100).
        let truth = DataDistribution::from_values(&[0; 50]);
        let h = Exact(vec![BucketSpan::new(0.0, 100.0, 50.0)]);
        let ks = ks_error(&h, &truth);
        assert!(ks > 0.9, "expected near-total error, got {ks}");
    }

    #[test]
    fn equi_depth_error_bounded_by_bucket_fraction() {
        // Uniform data split into 4 exact equi-depth buckets: the paper's
        // 1/beta bound (Section 7.2.1).
        let values: Vec<i64> = (0..1000).collect();
        let truth = DataDistribution::from_values(&values);
        let h = Exact(
            (0..4)
                .map(|i| BucketSpan::new(f64::from(i) * 250.0, f64::from(i + 1) * 250.0, 250.0))
                .collect(),
        );
        let ks = ks_error(&h, &truth);
        assert!(ks <= 0.25 + 1e-9, "1/beta bound violated: {ks}");
        // For perfectly uniform data the error is in fact tiny.
        assert!(ks < 0.01, "uniform data should be easy: {ks}");
    }

    #[test]
    fn ks_error_against_matches_ks_error() {
        let truth = DataDistribution::from_values(&[3, 3, 8, 12]);
        let h = Exact(vec![BucketSpan::new(3.0, 13.0, 4.0)]);
        let a = ks_error(&h, &truth);
        let b = ks_error_against(&h, &truth.exact_cdf());
        assert_eq!(a, b);
    }

    #[test]
    fn relative_error_zero_for_exact_histogram() {
        let truth = DataDistribution::from_values(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let h = exact_of(&truth);
        let queries = dh_stats::metrics::uniform_range_workload(0.0, 10.0, 32);
        assert!(avg_relative_error_of(&h, &truth, &queries) < 1e-9);
    }
}
