//! The read and maintenance traits every histogram implements.
//!
//! [`ReadHistogram`] is the estimation interface a query optimizer would
//! consume: selectivity of range and equality predicates under the uniform
//! and continuous-value assumptions. [`Histogram`] adds the incremental
//! maintenance operations that distinguish the paper's *dynamic* histograms
//! (static histograms implement only `ReadHistogram` and are rebuilt from
//! scratch).

use crate::bucket::{BucketSpan, HistogramCdf};

/// Read-side histogram interface: rendering as bucket spans and
/// selectivity estimation.
///
/// Estimates use the continuous embedding (integer value `v` occupies
/// `[v, v+1)`); see the crate-level documentation.
pub trait ReadHistogram {
    /// The buckets as sorted, non-overlapping spans on the continuous axis.
    fn spans(&self) -> Vec<BucketSpan>;

    /// Total mass (number of live data points represented).
    fn total_count(&self) -> f64 {
        self.spans().iter().map(|s| s.count).sum()
    }

    /// Number of buckets currently held.
    fn num_buckets(&self) -> usize {
        self.spans().len()
    }

    /// The piecewise-linear CDF of this histogram.
    fn cdf(&self) -> HistogramCdf {
        HistogramCdf::from_spans(self.spans())
    }

    /// Estimated number of data points with value `<= v`.
    fn estimate_le(&self, v: i64) -> f64 {
        self.cdf().mass_below(v as f64 + 1.0)
    }

    /// Estimated number of data points with value strictly below the
    /// continuous coordinate `x` (for integer `x` this is `|{val < x}|`).
    fn estimate_less_than(&self, x: f64) -> f64 {
        self.cdf().mass_below(x)
    }

    /// Estimated number of data points with value in the inclusive integer
    /// range `[a, b]`.
    fn estimate_range(&self, a: i64, b: i64) -> f64 {
        if a > b {
            return 0.0;
        }
        self.cdf().mass_in(a as f64, b as f64 + 1.0)
    }

    /// Estimated number of data points equal to `v`.
    fn estimate_eq(&self, v: i64) -> f64 {
        self.estimate_range(v, v)
    }
}

/// A histogram that is maintained incrementally as the data set evolves —
/// the defining capability of the paper's dynamic histograms.
pub trait Histogram: ReadHistogram {
    /// Observes the insertion of one occurrence of `v` into the data set.
    fn insert(&mut self, v: i64);

    /// Observes the deletion of one occurrence of `v` from the data set.
    ///
    /// Deletion is "simply the inverse of insertion" (Section 7.3):
    /// implementations decrement the appropriate counter, falling back to
    /// the closest non-empty bucket when the target bucket has spilled.
    fn delete(&mut self, v: i64);

    /// Replays a stream of updates.
    fn apply<I: IntoIterator<Item = crate::dynamic::UpdateOp>>(&mut self, updates: I)
    where
        Self: Sized,
    {
        for u in updates {
            match u {
                crate::dynamic::UpdateOp::Insert(v) => self.insert(v),
                crate::dynamic::UpdateOp::Delete(v) => self.delete(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed two-bucket histogram for exercising the default estimators.
    struct Fixed;
    impl ReadHistogram for Fixed {
        fn spans(&self) -> Vec<BucketSpan> {
            vec![
                BucketSpan::new(0.0, 10.0, 100.0),
                BucketSpan::new(10.0, 20.0, 300.0),
            ]
        }
    }

    #[test]
    fn totals_and_counts() {
        assert_eq!(Fixed.total_count(), 400.0);
        assert_eq!(Fixed.num_buckets(), 2);
    }

    #[test]
    fn estimate_le_uses_continuous_embedding() {
        // Values 0..=9 live in [0,10): estimate_le(9) covers all of it.
        assert!((Fixed.estimate_le(9) - 100.0).abs() < 1e-9);
        // estimate_le(4) covers [0,5) = half the first bucket.
        assert!((Fixed.estimate_le(4) - 50.0).abs() < 1e-9);
        assert!((Fixed.estimate_le(19) - 400.0).abs() < 1e-9);
        assert_eq!(Fixed.estimate_le(-1), 0.0);
    }

    #[test]
    fn estimate_range_and_eq() {
        // [10, 19] is the whole second bucket.
        assert!((Fixed.estimate_range(10, 19) - 300.0).abs() < 1e-9);
        // A single value in the second bucket gets 1/10 of its mass.
        assert!((Fixed.estimate_eq(15) - 30.0).abs() < 1e-9);
        assert_eq!(Fixed.estimate_range(5, 3), 0.0);
    }

    #[test]
    fn estimate_less_than_fractional() {
        assert!((Fixed.estimate_less_than(5.0) - 50.0).abs() < 1e-9);
        assert!((Fixed.estimate_less_than(0.0)).abs() < 1e-9);
    }
}
