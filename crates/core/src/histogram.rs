//! The read and maintenance traits every histogram implements.
//!
//! [`ReadHistogram`] is the estimation interface a query optimizer would
//! consume: selectivity of range and equality predicates under the uniform
//! and continuous-value assumptions. [`DynHistogram`] adds the incremental
//! maintenance operations that distinguish the paper's *dynamic* histograms
//! (static histograms implement only `ReadHistogram` and are rebuilt from
//! scratch, or are adapted through a rebuild wrapper such as
//! `dh_catalog`'s `StaticRebuild`).
//!
//! # Migration notes (trait split)
//!
//! Earlier revisions had a single `Histogram` trait carrying `insert`,
//! `delete` and the generic `apply<I>`. Because `apply` is generic, that
//! trait was not object-safe, so histograms could not be handled as
//! `Box<dyn Histogram>` — which is exactly the deployment the paper
//! describes (an optimizer reading a histogram *while* it is maintained in
//! place, algorithm chosen at run time). The trait is now split:
//!
//! * [`DynHistogram`] — object-safe maintenance: `insert`, `delete` and the
//!   batched [`DynHistogram::apply_slice`]. Implement **this** trait on new
//!   histogram types (where you previously implemented `Histogram`).
//! * [`Histogram`] — a blanket extension trait over every `DynHistogram`
//!   carrying the generic [`Histogram::apply`]. Existing call sites —
//!   `fn f<H: Histogram>(..)` bounds and `h.apply(stream)` calls — keep
//!   compiling unchanged; the trait is never implemented by hand anymore.
//! * [`ReadHistogram`] additionally offers the allocation-free read path
//!   [`ReadHistogram::for_each_span`] / [`ReadHistogram::spans_into`],
//!   which hot paths (snapshots, joins) prefer over the allocating
//!   [`ReadHistogram::spans`].
//!
//! `ReadHistogram` and `DynHistogram` are both object-safe and implemented
//! for references and boxes, so `&dyn ReadHistogram`,
//! `Box<dyn DynHistogram>` and the [`BoxedHistogram`] alias compose with
//! every generic function in the workspace. On a `&dyn DynHistogram`, use
//! [`DynHistogram::as_read`] to obtain a `&dyn ReadHistogram` view (the
//! workspace MSRV predates implicit trait upcasting).

use crate::bucket::{BucketSpan, HistogramCdf};
use crate::dynamic::UpdateOp;

/// A maintainable histogram behind a thread-safe trait object — the
/// currency of `AlgoSpec::build` registries and multi-column catalogs.
pub type BoxedHistogram = Box<dyn DynHistogram + Send + Sync>;

/// Read-side histogram interface: rendering as bucket spans and
/// selectivity estimation.
///
/// Estimates use the continuous embedding (integer value `v` occupies
/// `[v, v+1)`); see the crate-level documentation.
///
/// The only required method is [`ReadHistogram::spans`]; implementations
/// holding materialized spans should also override
/// [`ReadHistogram::for_each_span`] so the allocation-free read path (and
/// the default `total_count` / `num_buckets` / `spans_into`, which are
/// built on it) skips the intermediate `Vec`.
pub trait ReadHistogram {
    /// The buckets as sorted, non-overlapping spans on the continuous axis.
    fn spans(&self) -> Vec<BucketSpan>;

    /// Visits every span in order without allocating.
    ///
    /// The default renders [`ReadHistogram::spans`]; histograms that store
    /// their buckets directly should override this to iterate them in
    /// place.
    fn for_each_span(&self, f: &mut dyn FnMut(&BucketSpan)) {
        for s in self.spans() {
            f(&s);
        }
    }

    /// Writes the spans into a caller-provided buffer (cleared first),
    /// reusing its capacity — the allocation-free counterpart of
    /// [`ReadHistogram::spans`] for snapshot/refresh loops.
    fn spans_into(&self, out: &mut Vec<BucketSpan>) {
        out.clear();
        self.for_each_span(&mut |s| out.push(*s));
    }

    /// Total mass (number of live data points represented).
    fn total_count(&self) -> f64 {
        let mut total = 0.0;
        self.for_each_span(&mut |s| total += s.count);
        total
    }

    /// Number of buckets currently held.
    fn num_buckets(&self) -> usize {
        let mut n = 0;
        self.for_each_span(&mut |_| n += 1);
        n
    }

    /// The piecewise-linear CDF of this histogram.
    fn cdf(&self) -> HistogramCdf {
        HistogramCdf::from_spans(self.spans())
    }

    /// Estimated number of data points with value `<= v`.
    fn estimate_le(&self, v: i64) -> f64 {
        self.cdf().mass_below(v as f64 + 1.0)
    }

    /// Estimated number of data points with value strictly below the
    /// continuous coordinate `x` (for integer `x` this is `|{val < x}|`).
    fn estimate_less_than(&self, x: f64) -> f64 {
        self.cdf().mass_below(x)
    }

    /// Estimated number of data points with value in the inclusive integer
    /// range `[a, b]`.
    fn estimate_range(&self, a: i64, b: i64) -> f64 {
        if a > b {
            return 0.0;
        }
        self.cdf().mass_in(a as f64, b as f64 + 1.0)
    }

    /// Estimated number of data points equal to `v`.
    fn estimate_eq(&self, v: i64) -> f64 {
        self.estimate_range(v, v)
    }
}

/// Forwards every `ReadHistogram` method (so implementor overrides are
/// preserved through references and boxes).
macro_rules! forward_read_histogram {
    () => {
        fn spans(&self) -> Vec<BucketSpan> {
            (**self).spans()
        }
        fn for_each_span(&self, f: &mut dyn FnMut(&BucketSpan)) {
            (**self).for_each_span(f)
        }
        fn spans_into(&self, out: &mut Vec<BucketSpan>) {
            (**self).spans_into(out)
        }
        fn total_count(&self) -> f64 {
            (**self).total_count()
        }
        fn num_buckets(&self) -> usize {
            (**self).num_buckets()
        }
        fn cdf(&self) -> HistogramCdf {
            (**self).cdf()
        }
        fn estimate_le(&self, v: i64) -> f64 {
            (**self).estimate_le(v)
        }
        fn estimate_less_than(&self, x: f64) -> f64 {
            (**self).estimate_less_than(x)
        }
        fn estimate_range(&self, a: i64, b: i64) -> f64 {
            (**self).estimate_range(a, b)
        }
        fn estimate_eq(&self, v: i64) -> f64 {
            (**self).estimate_eq(v)
        }
    };
}

impl<H: ReadHistogram + ?Sized> ReadHistogram for &H {
    forward_read_histogram!();
}

impl<H: ReadHistogram + ?Sized> ReadHistogram for &mut H {
    forward_read_histogram!();
}

impl<H: ReadHistogram + ?Sized> ReadHistogram for Box<H> {
    forward_read_histogram!();
}

/// Implements the span-rendering half of [`ReadHistogram`] (`spans` plus
/// the allocation-free `for_each_span`) for a type that stores its
/// buckets in a `self.spans: Vec<BucketSpan>` field. Invoke inside the
/// `impl ReadHistogram for ...` block; other methods may still be
/// overridden alongside it.
#[macro_export]
macro_rules! span_backed_reads {
    () => {
        fn spans(&self) -> Vec<$crate::BucketSpan> {
            self.spans.clone()
        }

        fn for_each_span(&self, f: &mut dyn FnMut(&$crate::BucketSpan)) {
            for s in &self.spans {
                f(s);
            }
        }
    };
}

/// Object-safe incremental maintenance — the defining capability of the
/// paper's dynamic histograms, usable as `Box<dyn DynHistogram>` (or the
/// `Send + Sync` [`BoxedHistogram`] alias) so the algorithm can be chosen
/// at run time and maintained in place while readers estimate off it.
pub trait DynHistogram: ReadHistogram {
    /// Observes the insertion of one occurrence of `v` into the data set.
    fn insert(&mut self, v: i64);

    /// Observes the deletion of one occurrence of `v` from the data set.
    ///
    /// Deletion is "simply the inverse of insertion" (Section 7.3):
    /// implementations decrement the appropriate counter, falling back to
    /// the closest non-empty bucket when the target bucket has spilled.
    fn delete(&mut self, v: i64);

    /// Replays a batch of updates — the ingestion unit of streaming
    /// consumers (catalogs apply whole batches under one lock).
    fn apply_slice(&mut self, updates: &[UpdateOp]) {
        for &u in updates {
            match u {
                UpdateOp::Insert(v) => self.insert(v),
                UpdateOp::Delete(v) => self.delete(v),
            }
        }
    }

    /// This histogram as a plain read-side trait object.
    ///
    /// Implementations are invariably `{ self }`. (Kept explicit because
    /// the workspace MSRV predates `dyn DynHistogram -> dyn ReadHistogram`
    /// upcasting coercions.)
    fn as_read(&self) -> &dyn ReadHistogram;
}

impl<H: DynHistogram + ?Sized> DynHistogram for &mut H {
    fn insert(&mut self, v: i64) {
        (**self).insert(v)
    }
    fn delete(&mut self, v: i64) {
        (**self).delete(v)
    }
    fn apply_slice(&mut self, updates: &[UpdateOp]) {
        (**self).apply_slice(updates)
    }
    fn as_read(&self) -> &dyn ReadHistogram {
        (**self).as_read()
    }
}

impl<H: DynHistogram + ?Sized> DynHistogram for Box<H> {
    fn insert(&mut self, v: i64) {
        (**self).insert(v)
    }
    fn delete(&mut self, v: i64) {
        (**self).delete(v)
    }
    fn apply_slice(&mut self, updates: &[UpdateOp]) {
        (**self).apply_slice(updates)
    }
    fn as_read(&self) -> &dyn ReadHistogram {
        (**self).as_read()
    }
}

/// Generic conveniences over any [`DynHistogram`] — blanket-implemented,
/// never implemented by hand (implement [`DynHistogram`] instead).
pub trait Histogram: DynHistogram {
    /// Replays a stream of updates.
    fn apply<I: IntoIterator<Item = UpdateOp>>(&mut self, updates: I)
    where
        Self: Sized,
    {
        for u in updates {
            match u {
                UpdateOp::Insert(v) => self.insert(v),
                UpdateOp::Delete(v) => self.delete(v),
            }
        }
    }
}

impl<H: DynHistogram + ?Sized> Histogram for H {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed two-bucket histogram for exercising the default estimators.
    struct Fixed;
    impl ReadHistogram for Fixed {
        fn spans(&self) -> Vec<BucketSpan> {
            vec![
                BucketSpan::new(0.0, 10.0, 100.0),
                BucketSpan::new(10.0, 20.0, 300.0),
            ]
        }
    }

    /// A trivially maintainable histogram: one unit bucket per value.
    #[derive(Default)]
    struct Unit {
        counts: std::collections::BTreeMap<i64, f64>,
    }
    impl ReadHistogram for Unit {
        fn spans(&self) -> Vec<BucketSpan> {
            self.counts
                .iter()
                .map(|(&v, &c)| BucketSpan::new(v as f64, (v + 1) as f64, c))
                .collect()
        }
    }
    impl DynHistogram for Unit {
        fn insert(&mut self, v: i64) {
            *self.counts.entry(v).or_insert(0.0) += 1.0;
        }
        fn delete(&mut self, v: i64) {
            *self.counts.entry(v).or_insert(0.0) -= 1.0;
        }
        fn as_read(&self) -> &dyn ReadHistogram {
            self
        }
    }

    #[test]
    fn totals_and_counts() {
        assert_eq!(Fixed.total_count(), 400.0);
        assert_eq!(Fixed.num_buckets(), 2);
    }

    #[test]
    fn estimate_le_uses_continuous_embedding() {
        // Values 0..=9 live in [0,10): estimate_le(9) covers all of it.
        assert!((Fixed.estimate_le(9) - 100.0).abs() < 1e-9);
        // estimate_le(4) covers [0,5) = half the first bucket.
        assert!((Fixed.estimate_le(4) - 50.0).abs() < 1e-9);
        assert!((Fixed.estimate_le(19) - 400.0).abs() < 1e-9);
        assert_eq!(Fixed.estimate_le(-1), 0.0);
    }

    #[test]
    fn estimate_range_and_eq() {
        // [10, 19] is the whole second bucket.
        assert!((Fixed.estimate_range(10, 19) - 300.0).abs() < 1e-9);
        // A single value in the second bucket gets 1/10 of its mass.
        assert!((Fixed.estimate_eq(15) - 30.0).abs() < 1e-9);
        assert_eq!(Fixed.estimate_range(5, 3), 0.0);
    }

    #[test]
    fn estimate_less_than_fractional() {
        assert!((Fixed.estimate_less_than(5.0) - 50.0).abs() < 1e-9);
        assert!((Fixed.estimate_less_than(0.0)).abs() < 1e-9);
    }

    #[test]
    fn allocation_free_read_path_matches_spans() {
        let mut seen = Vec::new();
        Fixed.for_each_span(&mut |s| seen.push(*s));
        assert_eq!(seen, Fixed.spans());
        let mut buf = vec![BucketSpan::new(0.0, 1.0, 1.0); 7];
        Fixed.spans_into(&mut buf);
        assert_eq!(buf, Fixed.spans());
    }

    #[test]
    fn boxed_dyn_histogram_end_to_end() {
        let mut h: Box<dyn DynHistogram> = Box::<Unit>::default();
        h.apply_slice(&[
            UpdateOp::Insert(3),
            UpdateOp::Insert(3),
            UpdateOp::Insert(7),
            UpdateOp::Delete(7),
        ]);
        assert_eq!(h.total_count(), 2.0);
        assert_eq!(h.estimate_eq(3), 2.0);
        // The generic extension applies through the box, too.
        h.apply([UpdateOp::Insert(5)]);
        assert_eq!(h.as_read().total_count(), 3.0);
        // And the box itself reads as a histogram.
        let read: &dyn ReadHistogram = &h;
        assert_eq!(read.num_buckets(), 3);
    }

    #[test]
    fn references_forward_overrides() {
        fn total(h: impl ReadHistogram) -> f64 {
            h.total_count()
        }
        assert_eq!(total(&Fixed), 400.0);
        let mut u = Unit::default();
        {
            let r: &mut dyn DynHistogram = &mut u;
            r.insert(1);
        }
        assert_eq!(total(&u), 1.0);
    }
}
