//! The paper's memory-budget model.
//!
//! Section 7 compares every algorithm at equal amounts of *main memory*
//! measured in bytes (sweeping 0.11 KB – 4 KB), with 4-byte numbers as was
//! standard on 1999 hardware. Each histogram class converts a byte budget
//! into a bucket count according to its per-bucket layout:
//!
//! * DC and all the static histograms store one left border and one count
//!   per bucket, plus the closing right border:
//!   `bytes = (n + 1) * 4 + n * 4` (Section 3.1).
//! * DVO and DADO store one left border and **two** sub-bucket counters per
//!   bucket: `bytes = (n + 1) * 4 + 2 * n * 4` (Section 4.4).
//!
//! The Approximate Compressed baseline additionally receives a *disk*
//! budget of `disk_factor x memory` bytes for its backing sample, at 4
//! bytes per sampled element.

/// Size of one stored number (border or counter) in bytes, per the paper.
pub const BYTES_PER_NUMBER: usize = 4;

/// Per-bucket storage layout of a histogram class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistogramClass {
    /// One border + one counter per bucket: DC, Equi-Width, Equi-Depth,
    /// Compressed, V-Optimal, SADO, SSBM, and the in-memory part of AC.
    BorderAndCount,
    /// One border + two sub-bucket counters per bucket: DVO and DADO.
    BorderAndTwoCounters,
}

impl HistogramClass {
    /// Bytes consumed by `n` buckets of this class (including the closing
    /// border).
    pub fn bytes_for(self, buckets: usize) -> usize {
        let numbers = match self {
            HistogramClass::BorderAndCount => (buckets + 1) + buckets,
            HistogramClass::BorderAndTwoCounters => (buckets + 1) + 2 * buckets,
        };
        numbers * BYTES_PER_NUMBER
    }
}

/// A main-memory budget in bytes, convertible to bucket counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// A budget of exactly `bytes` bytes.
    pub fn from_bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// A budget of `kb` kilobytes (1 KB = 1024 bytes), rounded down.
    ///
    /// # Panics
    /// Panics if `kb` is negative or non-finite.
    pub fn from_kb(kb: f64) -> Self {
        assert!(kb.is_finite() && kb >= 0.0, "invalid KB budget: {kb}");
        Self {
            bytes: (kb * 1024.0).floor() as usize,
        }
    }

    /// The budget in bytes.
    pub fn bytes(self) -> usize {
        self.bytes
    }

    /// The budget in kilobytes.
    pub fn kb(self) -> f64 {
        self.bytes as f64 / 1024.0
    }

    /// Largest bucket count of the given class that fits, but never fewer
    /// than one bucket (a histogram must exist to be measured).
    pub fn buckets(self, class: HistogramClass) -> usize {
        let per_number = BYTES_PER_NUMBER;
        let numbers = self.bytes / per_number;
        let n = match class {
            // numbers = 2n + 1  =>  n = (numbers - 1) / 2
            HistogramClass::BorderAndCount => numbers.saturating_sub(1) / 2,
            // numbers = 3n + 1  =>  n = (numbers - 1) / 3
            HistogramClass::BorderAndTwoCounters => numbers.saturating_sub(1) / 3,
        };
        n.max(1)
    }

    /// Largest bucket count for a layout of one border plus `counters`
    /// counters per bucket (generalizing [`Self::buckets`]): used by the
    /// sub-bucket ablation of Section 4, where finer subdivisions pay for
    /// themselves in lost buckets.
    ///
    /// # Panics
    /// Panics if `counters == 0`.
    pub fn buckets_with_counters(self, counters: usize) -> usize {
        assert!(counters > 0, "buckets need at least one counter");
        let numbers = self.bytes / BYTES_PER_NUMBER;
        (numbers.saturating_sub(1) / (counters + 1)).max(1)
    }

    /// Number of 4-byte sample elements a disk allowance of
    /// `factor x self` can hold — the backing-sample size of the AC
    /// baseline ("disk space equal to twenty times the main memory").
    pub fn sample_elements(self, disk_factor: usize) -> usize {
        (self.bytes * disk_factor) / BYTES_PER_NUMBER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kb_bucket_counts_match_paper_layouts() {
        let m = MemoryBudget::from_kb(1.0);
        assert_eq!(m.bytes(), 1024);
        // (1024/4 - 1) / 2 = 127 buckets for border+count.
        assert_eq!(m.buckets(HistogramClass::BorderAndCount), 127);
        // (1024/4 - 1) / 3 = 85 buckets for border+2 counters.
        assert_eq!(m.buckets(HistogramClass::BorderAndTwoCounters), 85);
    }

    #[test]
    fn bytes_for_inverts_buckets() {
        for &class in &[
            HistogramClass::BorderAndCount,
            HistogramClass::BorderAndTwoCounters,
        ] {
            for bytes in [100usize, 143, 512, 1024, 4096] {
                let m = MemoryBudget::from_bytes(bytes);
                let n = m.buckets(class);
                assert!(
                    class.bytes_for(n) <= bytes || n == 1,
                    "{class:?} with {bytes}B gave {n} buckets needing {} bytes",
                    class.bytes_for(n)
                );
                // One more bucket would not fit.
                assert!(class.bytes_for(n + 1) > bytes);
            }
        }
    }

    #[test]
    fn small_budgets_still_give_one_bucket() {
        let m = MemoryBudget::from_bytes(0);
        assert_eq!(m.buckets(HistogramClass::BorderAndCount), 1);
        assert_eq!(m.buckets(HistogramClass::BorderAndTwoCounters), 1);
    }

    #[test]
    fn paper_static_figure_budget() {
        // Figs 9-12 use M = 0.14 KB = 143 bytes.
        let m = MemoryBudget::from_kb(0.14);
        assert_eq!(m.bytes(), 143);
        assert_eq!(m.buckets(HistogramClass::BorderAndCount), 17);
        assert_eq!(m.buckets(HistogramClass::BorderAndTwoCounters), 11);
    }

    #[test]
    fn generalized_counter_layout_matches_fixed_classes() {
        let m = MemoryBudget::from_kb(1.0);
        assert_eq!(
            m.buckets_with_counters(1),
            m.buckets(HistogramClass::BorderAndCount)
        );
        assert_eq!(
            m.buckets_with_counters(2),
            m.buckets(HistogramClass::BorderAndTwoCounters)
        );
        // More counters per bucket means fewer buckets.
        assert!(m.buckets_with_counters(4) < m.buckets_with_counters(2));
        assert_eq!(m.buckets_with_counters(4), 51);
    }

    #[test]
    fn sample_elements_scale_with_disk_factor() {
        let m = MemoryBudget::from_kb(1.0);
        assert_eq!(m.sample_elements(20), 5120);
        assert_eq!(m.sample_elements(40), 10240);
        assert_eq!(m.sample_elements(60), 15360);
    }

    #[test]
    fn kb_roundtrip() {
        let m = MemoryBudget::from_kb(0.25);
        assert_eq!(m.bytes(), 256);
        assert!((m.kb() - 0.25).abs() < 1e-12);
    }
}
