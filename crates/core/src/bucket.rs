//! Bucket spans and the piecewise-linear CDF they induce.
//!
//! A [`BucketSpan`] is the read-side view of one histogram bucket: a
//! half-open interval `[lo, hi)` of the continuous axis carrying `count`
//! units of mass, spread uniformly (the uniform-distribution assumption).
//! Every histogram in this workspace renders itself as a sorted,
//! non-overlapping sequence of spans, from which [`HistogramCdf`] builds
//! the continuous cumulative distribution used for selectivity estimation
//! and KS evaluation.

use dh_stats::Cdf;

/// One bucket as seen by estimators: uniform mass `count` over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSpan {
    /// Inclusive left border on the continuous axis.
    pub lo: f64,
    /// Exclusive right border on the continuous axis.
    pub hi: f64,
    /// Mass (number of data points) in the bucket; nonnegative.
    pub count: f64,
}

impl BucketSpan {
    /// Creates a span.
    ///
    /// # Panics
    /// Panics if the borders are out of order, non-finite, or the count is
    /// negative.
    pub fn new(lo: f64, hi: f64, count: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "borders must be finite");
        assert!(lo <= hi, "bucket borders out of order: [{lo}, {hi})");
        assert!(count >= 0.0, "bucket count must be nonnegative: {count}");
        Self { lo, hi, count }
    }

    /// Width of the span on the continuous axis; for integer data this is
    /// (approximately) the number of distinct values the bucket covers.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Mass density inside the span (`count / width`); zero for empty or
    /// degenerate spans.
    pub fn density(&self) -> f64 {
        let w = self.width();
        if w > 0.0 {
            self.count / w
        } else {
            0.0
        }
    }

    /// Mass lying strictly below `x` under the uniform assumption.
    pub fn mass_below(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            self.count
        } else {
            self.count * (x - self.lo) / self.width()
        }
    }

    /// Mass lying in the intersection of this span with `[a, b)`.
    pub fn mass_in(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            0.0
        } else {
            (self.mass_below(b) - self.mass_below(a)).max(0.0)
        }
    }

    /// Whether the span covers a single integer value (the paper's
    /// "width equal to one" criterion for singular buckets), with a small
    /// tolerance for floating-point borders.
    pub fn is_unit_width(&self) -> bool {
        (self.width() - 1.0).abs() < 1e-9
    }
}

/// The continuous, piecewise-linear CDF of a sequence of bucket spans.
///
/// Implements [`dh_stats::Cdf`], so it can be compared directly against the
/// true data distribution with [`dh_stats::ks_between`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramCdf {
    spans: Vec<BucketSpan>,
    /// `cumulative[i]` = mass strictly left of `spans[i]`.
    cumulative: Vec<f64>,
    total: f64,
}

impl HistogramCdf {
    /// Builds a CDF from spans.
    ///
    /// Spans may arrive unsorted; they are sorted by `lo`. Overlapping
    /// spans are rejected (histogram buckets never overlap); gaps are
    /// allowed and carry zero mass.
    ///
    /// # Panics
    /// Panics if any two spans overlap by more than a tolerance.
    pub fn from_spans(mut spans: Vec<BucketSpan>) -> Self {
        spans.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        for w in spans.windows(2) {
            assert!(
                w[0].hi <= w[1].lo + 1e-9,
                "overlapping bucket spans: [{}, {}) and [{}, {})",
                w[0].lo,
                w[0].hi,
                w[1].lo,
                w[1].hi
            );
        }
        let mut cumulative = Vec::with_capacity(spans.len());
        let mut acc = 0.0;
        for s in &spans {
            cumulative.push(acc);
            acc += s.count;
        }
        Self {
            spans,
            cumulative,
            total: acc,
        }
    }

    /// Total mass across all spans.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Unnormalized mass strictly below `x`.
    pub fn mass_below(&self, x: f64) -> f64 {
        // Index of the first span with lo >= x; all spans before it may
        // contribute.
        let i = self.spans.partition_point(|s| s.lo < x);
        if i == 0 {
            return 0.0;
        }
        let s = &self.spans[i - 1];
        self.cumulative[i - 1] + s.mass_below(x)
    }

    /// Unnormalized mass in `[a, b)`.
    pub fn mass_in(&self, a: f64, b: f64) -> f64 {
        (self.mass_below(b) - self.mass_below(a)).max(0.0)
    }

    /// The spans backing this CDF, sorted by `lo`.
    pub fn spans(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl Cdf for HistogramCdf {
    fn fraction_le(&self, x: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.mass_below(x) / self.total
    }

    // Continuous CDF: fraction_lt == fraction_le (default).

    fn breakpoints(&self) -> Vec<f64> {
        let mut pts = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            pts.push(s.lo);
            pts.push(s.hi);
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_geometry() {
        let s = BucketSpan::new(2.0, 6.0, 8.0);
        assert_eq!(s.width(), 4.0);
        assert_eq!(s.density(), 2.0);
        assert_eq!(s.mass_below(2.0), 0.0);
        assert_eq!(s.mass_below(4.0), 4.0);
        assert_eq!(s.mass_below(100.0), 8.0);
        assert_eq!(s.mass_in(3.0, 5.0), 4.0);
        assert!(!s.is_unit_width());
        assert!(BucketSpan::new(7.0, 8.0, 3.0).is_unit_width());
    }

    #[test]
    fn degenerate_span_has_zero_density() {
        let s = BucketSpan::new(5.0, 5.0, 0.0);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.mass_below(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_borders_rejected() {
        let _ = BucketSpan::new(3.0, 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_count_rejected() {
        let _ = BucketSpan::new(0.0, 1.0, -1.0);
    }

    fn cdf() -> HistogramCdf {
        HistogramCdf::from_spans(vec![
            BucketSpan::new(0.0, 4.0, 4.0),
            BucketSpan::new(4.0, 6.0, 8.0),
            BucketSpan::new(8.0, 10.0, 4.0), // gap over [6, 8)
        ])
    }

    #[test]
    fn cdf_mass_below_walks_segments() {
        let c = cdf();
        assert_eq!(c.total(), 16.0);
        assert_eq!(c.mass_below(0.0), 0.0);
        assert_eq!(c.mass_below(2.0), 2.0);
        assert_eq!(c.mass_below(4.0), 4.0);
        assert_eq!(c.mass_below(5.0), 8.0);
        assert_eq!(c.mass_below(7.0), 12.0); // inside the gap
        assert_eq!(c.mass_below(9.0), 14.0);
        assert_eq!(c.mass_below(42.0), 16.0);
    }

    #[test]
    fn cdf_fraction_is_normalized_and_monotone() {
        let c = cdf();
        let mut prev = -1.0;
        for i in 0..=110 {
            let x = f64::from(i) * 0.1 - 0.5;
            let f = c.fraction_le(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(c.fraction_le(10.0), 1.0);
    }

    #[test]
    fn cdf_accepts_unsorted_spans() {
        let a = HistogramCdf::from_spans(vec![
            BucketSpan::new(4.0, 6.0, 8.0),
            BucketSpan::new(0.0, 4.0, 4.0),
        ]);
        assert_eq!(a.mass_below(5.0), 8.0);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn cdf_rejects_overlap() {
        let _ = HistogramCdf::from_spans(vec![
            BucketSpan::new(0.0, 5.0, 1.0),
            BucketSpan::new(4.0, 6.0, 1.0),
        ]);
    }

    #[test]
    fn cdf_mass_in_range() {
        let c = cdf();
        assert_eq!(c.mass_in(0.0, 10.0), 16.0);
        assert_eq!(c.mass_in(4.0, 6.0), 8.0);
        assert_eq!(c.mass_in(6.0, 8.0), 0.0); // the gap
        assert_eq!(c.mass_in(9.0, 3.0), 0.0); // reversed
    }

    #[test]
    fn empty_cdf() {
        let c = HistogramCdf::from_spans(vec![]);
        assert_eq!(c.total(), 0.0);
        assert_eq!(c.fraction_le(3.0), 0.0);
        assert!(c.breakpoints().is_empty());
    }
}
