//! Histogram-backed cardinality estimation — the use case that motivates
//! the paper.
//!
//! Section 1: *"The cost of executing a relational operator is a function
//! of the sizes of the tuple streams that are input to the operator ...
//! errors in the size estimates will grow intolerably (exponentially in
//! the number of joins in the worst case), and the optimizer's estimates
//! may be completely wrong."*
//!
//! This crate turns any [`dh_core::ReadHistogram`] into the estimator a
//! cost-based optimizer needs:
//!
//! * [`estimate`] — selection cardinalities (range, equality) under the
//!   uniform and continuous-value assumptions;
//! * [`join`] — equi-join size estimation by integrating the product of
//!   per-value frequency densities over the buckets of both histograms,
//!   plus the histogram of the join *output*, enabling chained estimation;
//! * [`propagation`] — the error-propagation experiment of the paper's
//!   reference \[2\] (Ioannidis & Christodoulakis): relative error of a join
//!   chain's size estimate as the chain deepens, comparing fresh dynamic
//!   histograms against stale static ones.
//!
//! Every entry point also has a serving-layer face written against
//! `dh_catalog`'s object-safe `ColumnStore` trait
//! ([`Predicate::cardinality_at`], [`estimate_equi_join_at`],
//! [`propagate_chain_at`]): cross-column estimates read from one
//! epoch-pinned `SnapshotSet`, so a join or chain can never mix column
//! states from before and after a write batch — the consistency the
//! paper's maintained-while-queried deployment needs once histograms
//! are updated concurrently.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod estimate;
pub mod join;
pub mod propagation;

pub use estimate::{Predicate, Selectivity};
pub use join::{
    estimate_equi_join, estimate_equi_join_at, exact_equi_join, join_histogram, SpanHistogram,
};
pub use propagation::{propagate_chain, propagate_chain_at, ChainReport};
