//! Equi-join size estimation from histograms.
//!
//! For an equi-join `R ⋈_{R.a = S.b} S`, the exact result size is
//! `Σ_v f_R(v) · f_S(v)`. Under the continuous-value assumption each
//! integer value occupies a unit interval, so the histogram estimate is
//! the integral of the product of the two per-value frequency *densities*:
//!
//! ```text
//! |R ⋈ S| ≈ ∫ d_R(x) · d_S(x) dx
//! ```
//!
//! evaluated piecewise over the elementary intervals of the two bucket
//! sets. The same product density, materialized as spans, is the histogram
//! of the join *output*'s attribute — which is what lets estimates chain
//! through multi-join plans (see [`crate::propagation`]).

use dh_catalog::{CatalogError, ColumnStore};
use dh_core::{BucketSpan, DataDistribution, HistogramCdf, ReadHistogram};

/// Rasterizes spans to unit (per-value) resolution: the estimated
/// frequency of value `v` is the span mass inside `[v, v+1)`.
///
/// Join size is the *quadratic* functional `Σ_v f̂1(v)·f̂2(v)`, so —
/// unlike CDF reads — it is sensitive to how mass is placed *within* a
/// value's unit interval. A dynamic histogram may hold a spike in a
/// sub-unit bucket (density inflated by 1/width); rasterizing first
/// restores the discrete per-value semantics.
fn rasterize(spans: &[BucketSpan]) -> Vec<BucketSpan> {
    if spans.is_empty() {
        return Vec::new();
    }
    let cdf = HistogramCdf::from_spans(spans.to_vec());
    let lo = spans[0].lo.floor() as i64;
    let hi = spans.last().expect("nonempty").hi.ceil() as i64;
    let mut out = Vec::with_capacity((hi - lo).max(0) as usize);
    for v in lo..hi {
        let mass = cdf.mass_in(v as f64, (v + 1) as f64);
        if mass > 0.0 {
            out.push(BucketSpan::new(v as f64, (v + 1) as f64, mass));
        }
    }
    out
}

/// Elementary-interval sweep over two span lists, calling `f(lo, hi, d1,
/// d2)` for every interval where either side has density.
fn sweep_products(a: &[BucketSpan], b: &[BucketSpan], mut f: impl FnMut(f64, f64, f64, f64)) {
    let mut borders: Vec<f64> = a
        .iter()
        .chain(b.iter())
        .flat_map(|s| [s.lo, s.hi])
        .collect();
    borders.sort_by(f64::total_cmp);
    borders.dedup();
    // Densities are looked up by binary search per elementary interval;
    // span lists are sorted (ReadHistogram contract).
    let density_at = |spans: &[BucketSpan], x: f64| -> f64 {
        match spans.partition_point(|s| s.lo <= x) {
            0 => 0.0,
            i => {
                let s = &spans[i - 1];
                if x < s.hi {
                    s.density()
                } else {
                    0.0
                }
            }
        }
    };
    for w in borders.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi <= lo {
            continue;
        }
        let mid = (lo + hi) / 2.0;
        let d1 = density_at(a, mid);
        let d2 = density_at(b, mid);
        if d1 > 0.0 || d2 > 0.0 {
            f(lo, hi, d1, d2);
        }
    }
}

/// Estimated equi-join result size from two histograms over the join
/// attribute.
pub fn estimate_equi_join(r: &dyn ReadHistogram, s: &dyn ReadHistogram) -> f64 {
    let (ra, sb) = (rasterize(&r.spans()), rasterize(&s.spans()));
    let mut size = 0.0;
    sweep_products(&ra, &sb, |lo, hi, d1, d2| {
        size += d1 * d2 * (hi - lo);
    });
    size
}

/// Estimated equi-join result size read straight off a serving store:
/// both columns come from one [`ColumnStore::snapshot_set`], so the two
/// sides are pinned to the *same* epoch — the estimate can never mix a
/// column state from before a write batch with another from after it.
/// A self-join (`r == s`) reads the one shared snapshot twice.
///
/// # Errors
/// [`CatalogError::UnknownColumn`] if either column is absent.
pub fn estimate_equi_join_at(
    store: &dyn ColumnStore,
    r: &str,
    s: &str,
) -> Result<f64, CatalogError> {
    let set = store.snapshot_set(&[r, s])?;
    let rh = set.get(r).expect("requested column present");
    let sh = set.get(s).expect("requested column present");
    Ok(estimate_equi_join(rh, sh))
}

/// Histogram (as spans) of the join output's attribute values: the product
/// density over elementary intervals. Feeding this into
/// [`estimate_equi_join`] again estimates a deeper join.
pub fn join_histogram(r: &dyn ReadHistogram, s: &dyn ReadHistogram) -> Vec<BucketSpan> {
    let (ra, sb) = (rasterize(&r.spans()), rasterize(&s.spans()));
    let mut out = Vec::new();
    sweep_products(&ra, &sb, |lo, hi, d1, d2| {
        let count = d1 * d2 * (hi - lo);
        if count > 0.0 {
            out.push(BucketSpan::new(lo, hi, count));
        }
    });
    out
}

/// Exact equi-join size of two value multisets.
pub fn exact_equi_join(r: &DataDistribution, s: &DataDistribution) -> u64 {
    // Iterate the smaller distinct set.
    let (small, large) = if r.distinct() <= s.distinct() {
        (r, s)
    } else {
        (s, r)
    };
    small.iter().map(|(v, c)| c * large.frequency(v)).sum()
}

/// A plain spans-backed histogram, for chaining join outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanHistogram {
    spans: Vec<BucketSpan>,
}

impl SpanHistogram {
    /// Wraps sorted spans.
    pub fn new(spans: Vec<BucketSpan>) -> Self {
        Self { spans }
    }
}

impl ReadHistogram for SpanHistogram {
    dh_core::span_backed_reads!();
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Exact(DataDistribution);
    impl ReadHistogram for Exact {
        fn spans(&self) -> Vec<BucketSpan> {
            self.0
                .iter()
                .map(|(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect()
        }
    }

    #[test]
    fn exact_join_size() {
        let r = DataDistribution::from_values(&[1, 1, 2, 3]);
        let s = DataDistribution::from_values(&[1, 2, 2, 5]);
        // 1: 2*1, 2: 1*2, 3: 1*0, 5: 0*1 => 4.
        assert_eq!(exact_equi_join(&r, &s), 4);
        assert_eq!(exact_equi_join(&s, &r), 4);
    }

    #[test]
    fn lossless_histograms_estimate_joins_exactly() {
        let r = DataDistribution::from_values(&[1, 1, 2, 3, 7, 7, 7]);
        let s = DataDistribution::from_values(&[1, 3, 3, 7, 9]);
        let est = estimate_equi_join(&Exact(r.clone()), &Exact(s.clone()));
        let exact = exact_equi_join(&r, &s) as f64;
        assert!((est - exact).abs() < 1e-9, "est {est}, exact {exact}");
    }

    #[test]
    fn disjoint_domains_join_to_zero() {
        let r = DataDistribution::from_values(&[1, 2, 3]);
        let s = DataDistribution::from_values(&[100, 101]);
        assert_eq!(exact_equi_join(&r, &s), 0);
        assert!(estimate_equi_join(&Exact(r), &Exact(s)) < 1e-9);
    }

    #[test]
    fn join_histogram_carries_join_size() {
        let r = DataDistribution::from_values(&[1, 1, 2, 5, 5]);
        let s = DataDistribution::from_values(&[1, 2, 2, 5]);
        let rh = Exact(r.clone());
        let sh = Exact(s.clone());
        let out = SpanHistogram::new(join_histogram(&rh, &sh));
        assert!((out.total_count() - exact_equi_join(&r, &s) as f64).abs() < 1e-9);
        // The output histogram reflects per-value contributions exactly
        // for lossless inputs: value 5 contributes 2*1 = 2 tuples.
        assert!((out.estimate_eq(5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn chained_join_estimate_matches_exact_for_lossless() {
        // (R join S) join T on the same attribute.
        let r = DataDistribution::from_values(&[1, 1, 2, 3]);
        let s = DataDistribution::from_values(&[1, 2, 2, 3]);
        let t = DataDistribution::from_values(&[1, 3, 3]);
        let rs = SpanHistogram::new(join_histogram(&Exact(r.clone()), &Exact(s.clone())));
        let est = estimate_equi_join(&rs, &Exact(t.clone()));
        // Exact: value v contributes fr*fs*ft.
        let exact: u64 = [1i64, 2, 3]
            .iter()
            .map(|&v| r.frequency(v) * s.frequency(v) * t.frequency(v))
            .sum();
        assert!(
            (est - exact as f64).abs() < 1e-9,
            "est {est}, exact {exact}"
        );
    }

    #[test]
    fn sub_unit_spike_buckets_do_not_inflate_join_products() {
        // A 1000-point spike at value 7 held in a 0.25-wide bucket: the
        // density is 4x the per-value frequency, so without rasterization
        // a self-join would be overestimated 4x.
        let spike = SpanHistogram::new(vec![BucketSpan::new(7.25, 7.5, 1000.0)]);
        let est = estimate_equi_join(&spike, &spike);
        let exact = 1000.0 * 1000.0;
        assert!(
            (est - exact).abs() / exact < 1e-9,
            "self-join of a unit spike must be f^2, got {est}"
        );
    }

    #[test]
    fn coarse_histograms_overestimate_or_underestimate_but_stay_finite() {
        // One coarse bucket per side: the classic uniform-assumption bias.
        let r = DataDistribution::from_values(&(0..100).collect::<Vec<_>>());
        let coarse_r = SpanHistogram::new(vec![BucketSpan::new(0.0, 100.0, 100.0)]);
        let est = estimate_equi_join(&coarse_r, &coarse_r);
        let exact = exact_equi_join(&r, &r) as f64;
        assert!(
            (est - exact).abs() < 1e-9,
            "uniform data is estimated exactly"
        );
    }
}
