//! Selection predicates and their estimated cardinalities.

use dh_catalog::{CatalogError, ColumnStore, SnapshotSet};
use dh_core::ReadHistogram;

/// A selection predicate over one integer attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// `X = v`
    Eq(i64),
    /// `X <= v`
    Le(i64),
    /// `X < v`
    Lt(i64),
    /// `X >= v`
    Ge(i64),
    /// `X > v`
    Gt(i64),
    /// `a <= X <= b`
    Between(i64, i64),
}

impl Predicate {
    /// Estimated number of qualifying tuples under the histogram.
    pub fn cardinality(&self, h: &dyn ReadHistogram) -> f64 {
        match *self {
            Predicate::Eq(v) => h.estimate_eq(v),
            Predicate::Le(v) => h.estimate_le(v),
            Predicate::Lt(v) => h.estimate_le(v - 1),
            Predicate::Ge(v) => (h.total_count() - h.estimate_le(v - 1)).max(0.0),
            Predicate::Gt(v) => (h.total_count() - h.estimate_le(v)).max(0.0),
            Predicate::Between(a, b) => h.estimate_range(a, b),
        }
    }

    /// Estimated selectivity (fraction of the relation qualifying).
    pub fn selectivity(&self, h: &dyn ReadHistogram) -> f64 {
        let total = h.total_count();
        if total <= 0.0 {
            return 0.0;
        }
        (self.cardinality(h) / total).clamp(0.0, 1.0)
    }

    /// Estimated number of qualifying tuples on `column`, read off the
    /// store's wait-free front — the serving-layer face of
    /// [`Predicate::cardinality`], written once against any
    /// [`ColumnStore`] design.
    ///
    /// Pins one epoch via [`ColumnStore::snapshot_set`] and probes
    /// *through the front cache* ([`Predicate::cardinality_in`]): the
    /// optimizer's repeated selectivity probes short-circuit in the
    /// generation's predicate memo instead of touching spans.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if `column` is absent.
    pub fn cardinality_at(
        &self,
        store: &dyn ColumnStore,
        column: &str,
    ) -> Result<f64, CatalogError> {
        self.cardinality_in(&store.snapshot_set(&[column])?, column)
    }

    /// Estimated number of qualifying tuples on `column`, read off an
    /// already-pinned [`SnapshotSet`]. All reads go through the set's
    /// cached probes ([`SnapshotSet::estimate_range`] and friends), so a
    /// set served off the wait-free front memoizes every predicate shape
    /// it answers; every comparison predicate decomposes into cached
    /// range / eq / total reads at the set's single epoch.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if `column` is not in the set.
    pub fn cardinality_in(&self, set: &SnapshotSet, column: &str) -> Result<f64, CatalogError> {
        // `X <= v` as a cached range probe: the histogram CDF gives
        // `mass_in(MIN, v+1) = mass_below(v+1) - 0`, identical to
        // `estimate_le(v)`.
        let le = |v: i64| set.estimate_range(column, i64::MIN, v);
        match *self {
            Predicate::Eq(v) => set.estimate_eq(column, v),
            Predicate::Le(v) => le(v),
            Predicate::Lt(v) if v == i64::MIN => set.total_count(column).map(|_| 0.0),
            Predicate::Lt(v) => le(v - 1),
            Predicate::Ge(v) => {
                let lt = if v == i64::MIN { 0.0 } else { le(v - 1)? };
                Ok((set.total_count(column)? - lt).max(0.0))
            }
            Predicate::Gt(v) => Ok((set.total_count(column)? - le(v)?).max(0.0)),
            Predicate::Between(a, b) => set.estimate_range(column, a, b),
        }
    }

    /// Estimated selectivity on `column`, read off the store's wait-free
    /// front (one pinned epoch; cardinality and total can never straddle
    /// a commit).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if `column` is absent.
    pub fn selectivity_at(
        &self,
        store: &dyn ColumnStore,
        column: &str,
    ) -> Result<f64, CatalogError> {
        self.selectivity_in(&store.snapshot_set(&[column])?, column)
    }

    /// Estimated selectivity on `column` off an already-pinned
    /// [`SnapshotSet`], through the cached probes (see
    /// [`Predicate::cardinality_in`]).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if `column` is not in the set.
    pub fn selectivity_in(&self, set: &SnapshotSet, column: &str) -> Result<f64, CatalogError> {
        let total = set.total_count(column)?;
        if total <= 0.0 {
            return Ok(0.0);
        }
        Ok((self.cardinality_in(set, column)? / total).clamp(0.0, 1.0))
    }

    /// Exact number of qualifying tuples in a value multiset (ground truth
    /// for experiments).
    pub fn exact(&self, dist: &dh_core::DataDistribution) -> u64 {
        match *self {
            Predicate::Eq(v) => dist.frequency(v),
            Predicate::Le(v) => dist.count_le(v),
            Predicate::Lt(v) => dist.count_le(v - 1),
            Predicate::Ge(v) => dist.total() - dist.count_le(v - 1),
            Predicate::Gt(v) => dist.total() - dist.count_le(v),
            Predicate::Between(a, b) => dist.count_range(a, b),
        }
    }
}

/// A selectivity estimate paired with its ground truth, for error
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selectivity {
    /// Histogram estimate.
    pub estimated: f64,
    /// Exact count.
    pub exact: f64,
}

impl Selectivity {
    /// Computes both sides for one predicate.
    pub fn of(p: Predicate, h: &dyn ReadHistogram, truth: &dh_core::DataDistribution) -> Self {
        Self {
            estimated: p.cardinality(h),
            exact: p.exact(truth) as f64,
        }
    }

    /// Relative error `|est - exact| / exact` (infinite if exact is 0 but
    /// the estimate is not).
    pub fn relative_error(&self) -> f64 {
        if self.exact == 0.0 {
            if self.estimated.abs() < 1e-9 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.estimated - self.exact).abs() / self.exact
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::{BucketSpan, DataDistribution, ReadHistogram};

    struct Exact(DataDistribution);
    impl ReadHistogram for Exact {
        fn spans(&self) -> Vec<BucketSpan> {
            self.0
                .iter()
                .map(|(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect()
        }
    }

    fn setup() -> (Exact, DataDistribution) {
        let d = DataDistribution::from_values(&[1, 2, 2, 3, 3, 3, 10]);
        (Exact(d.clone()), d)
    }

    #[test]
    fn all_predicate_forms_match_exact_on_lossless_histogram() {
        let (h, truth) = setup();
        let cases = [
            Predicate::Eq(3),
            Predicate::Le(2),
            Predicate::Lt(3),
            Predicate::Ge(3),
            Predicate::Gt(3),
            Predicate::Between(2, 3),
        ];
        for p in cases {
            let s = Selectivity::of(p, &h, &truth);
            assert!((s.estimated - s.exact).abs() < 1e-9, "{p:?}: {s:?}");
            assert_eq!(s.relative_error(), 0.0);
        }
    }

    #[test]
    fn selectivity_is_a_fraction() {
        let (h, _) = setup();
        assert!((Predicate::Le(3).selectivity(&h) - 6.0 / 7.0).abs() < 1e-9);
        assert_eq!(Predicate::Lt(0).selectivity(&h), 0.0);
        assert_eq!(Predicate::Ge(0).selectivity(&h), 1.0);
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        let s = Selectivity {
            estimated: 0.0,
            exact: 0.0,
        };
        assert_eq!(s.relative_error(), 0.0);
        let s = Selectivity {
            estimated: 5.0,
            exact: 0.0,
        };
        assert!(s.relative_error().is_infinite());
    }

    #[test]
    fn complements_sum_to_total() {
        let (h, _) = setup();
        let le = Predicate::Le(3).cardinality(&h);
        let gt = Predicate::Gt(3).cardinality(&h);
        assert!((le + gt - 7.0).abs() < 1e-9);
    }
}
