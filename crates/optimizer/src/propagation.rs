//! Error propagation through join chains.
//!
//! The paper's introduction cites Ioannidis & Christodoulakis (its
//! reference \[2\]): selectivity estimation errors propagate through join
//! plans, in the worst case exponentially in the number of joins. This
//! module runs that experiment on any set of histograms: estimate the size
//! of `R1 ⋈ R2 ⋈ ... ⋈ Rk` (all on one attribute) by chaining
//! [`crate::join::join_histogram`], and compare against the exact size.

use crate::join::{estimate_equi_join, exact_equi_join, join_histogram, SpanHistogram};
use dh_catalog::{CatalogError, ColumnStore};
use dh_core::{DataDistribution, ReadHistogram};

/// Estimated vs exact cardinalities at each depth of a join chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReport {
    /// `estimated[k]` is the estimated size of the (k+2)-relation join
    /// (index 0 = two-way join).
    pub estimated: Vec<f64>,
    /// Exact sizes at the same depths.
    pub exact: Vec<f64>,
}

impl ChainReport {
    /// Relative error at each depth (`|est - exact| / exact`, `inf` when
    /// the exact size is zero but the estimate is not).
    pub fn relative_errors(&self) -> Vec<f64> {
        self.estimated
            .iter()
            .zip(&self.exact)
            .map(|(&e, &x)| {
                if x == 0.0 {
                    if e.abs() < 1e-9 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (e - x).abs() / x
                }
            })
            .collect()
    }

    /// The deepest join's relative error.
    pub fn final_error(&self) -> f64 {
        self.relative_errors().last().copied().unwrap_or(0.0)
    }
}

/// Estimates the size of a left-deep equi-join chain over the given
/// histograms, comparing against the exact sizes computed from the true
/// distributions.
///
/// `histograms[i]` must approximate `truths[i]`. The relations are plain
/// `&dyn ReadHistogram`, so every position in the chain may use a
/// different algorithm (e.g. a maintained DC build side joining a
/// V-Optimal probe side, or catalog snapshots). Returns one entry per
/// join (chain depth 2..=n).
///
/// # Panics
/// Panics if fewer than two relations are supplied or the lengths differ.
pub fn propagate_chain(
    histograms: &[&dyn ReadHistogram],
    truths: &[DataDistribution],
) -> ChainReport {
    assert!(histograms.len() >= 2, "a join chain needs >= 2 relations");
    assert_eq!(
        histograms.len(),
        truths.len(),
        "histogram/truth count mismatch"
    );

    let mut estimated = Vec::with_capacity(histograms.len() - 1);
    let mut exact = Vec::with_capacity(histograms.len() - 1);

    // Estimated side: fold join_histogram left-deep.
    let mut acc_est = SpanHistogram::new(histograms[0].spans());
    // Exact side: fold the true per-value product frequencies.
    let mut acc_truth: Vec<(i64, f64)> = truths[0].iter().map(|(v, c)| (v, c as f64)).collect();

    for (h, t) in histograms.iter().zip(truths).skip(1) {
        estimated.push(estimate_equi_join(&acc_est, h));
        acc_est = SpanHistogram::new(join_histogram(&acc_est, h));

        let mut next = Vec::with_capacity(acc_truth.len());
        let mut size = 0.0;
        for &(v, c) in &acc_truth {
            let f = t.frequency(v) as f64;
            let prod = c * f;
            if prod > 0.0 {
                next.push((v, prod));
                size += prod;
            }
        }
        acc_truth = next;
        exact.push(size);
    }
    ChainReport { estimated, exact }
}

/// Estimates a left-deep equi-join chain straight off a serving store:
/// `columns[i]` must approximate `truths[i]`. Every column is read from
/// one [`ColumnStore::snapshot_set`], so the whole chain estimate is
/// pinned to a single epoch — no position can observe a newer state than
/// another, no matter how writers interleave.
///
/// # Errors
/// [`CatalogError::UnknownColumn`] if any column is absent.
///
/// # Panics
/// Panics if fewer than two columns are supplied or the lengths differ
/// (same contract as [`propagate_chain`]).
pub fn propagate_chain_at(
    store: &dyn ColumnStore,
    columns: &[&str],
    truths: &[DataDistribution],
) -> Result<ChainReport, CatalogError> {
    let set = store.snapshot_set(columns)?;
    let refs: Vec<&dyn ReadHistogram> = columns
        .iter()
        .map(|c| set.get(c).expect("requested column present") as _)
        .collect();
    Ok(propagate_chain(&refs, truths))
}

/// Exact two-way equi-join size (re-exported convenience).
pub fn exact_join_size(r: &DataDistribution, s: &DataDistribution) -> u64 {
    exact_equi_join(r, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::BucketSpan;

    struct Exact(DataDistribution);
    impl ReadHistogram for Exact {
        fn spans(&self) -> Vec<BucketSpan> {
            self.0
                .iter()
                .map(|(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect()
        }
    }

    #[test]
    fn lossless_chain_has_zero_error_at_every_depth() {
        let rels: Vec<DataDistribution> = (0..4)
            .map(|k| {
                DataDistribution::from_values(
                    &(0..50).map(|i| (i * (k + 3)) % 40).collect::<Vec<_>>(),
                )
            })
            .collect();
        let hists: Vec<Exact> = rels.iter().cloned().map(Exact).collect();
        let refs: Vec<&dyn ReadHistogram> = hists.iter().map(|h| h as _).collect();
        let report = propagate_chain(&refs, &rels);
        assert_eq!(report.estimated.len(), 3);
        for (e, x) in report.estimated.iter().zip(&report.exact) {
            assert!((e - x).abs() < 1e-6, "est {e} vs exact {x}");
        }
        assert!(report.final_error() < 1e-9);
    }

    #[test]
    fn exact_sizes_match_pairwise_formula() {
        let r = DataDistribution::from_values(&[1, 1, 2]);
        let s = DataDistribution::from_values(&[1, 2, 2]);
        let (hr, hs) = (Exact(r.clone()), Exact(s.clone()));
        let report = propagate_chain(&[&hr, &hs], &[r.clone(), s.clone()]);
        assert_eq!(report.exact, vec![exact_join_size(&r, &s) as f64]);
    }

    #[test]
    fn coarse_histograms_accumulate_error_with_depth() {
        // Skewed relations approximated by a single coarse bucket: the
        // uniform assumption misestimates, and the error grows with chain
        // depth (the paper's motivating phenomenon).
        let mut values = vec![0i64; 900];
        values.extend(1..=99i64); // heavy spike at 0 plus a tail
        let rel = DataDistribution::from_values(&values);
        let coarse = |d: &DataDistribution| {
            crate::join::SpanHistogram::new(vec![BucketSpan::new(0.0, 100.0, d.total() as f64)])
        };
        let rels = vec![rel.clone(), rel.clone(), rel.clone(), rel.clone()];
        let hists: Vec<_> = rels.iter().map(coarse).collect();
        let refs: Vec<&dyn ReadHistogram> = hists.iter().map(|h| h as _).collect();
        let report = propagate_chain(&refs, &rels);
        let errs = report.relative_errors();
        assert!(
            errs.windows(2).all(|w| w[1] >= w[0] * 0.99),
            "errors should (weakly) grow with depth: {errs:?}"
        );
        assert!(
            errs.last().unwrap() > &0.9,
            "deep chain should be badly misestimated: {errs:?}"
        );
    }

    #[test]
    #[should_panic(expected = ">= 2 relations")]
    fn chain_needs_two_relations() {
        let r = DataDistribution::from_values(&[1]);
        let h = Exact(r.clone());
        let _ = propagate_chain(&[&h], &[r]);
    }
}
