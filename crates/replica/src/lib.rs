//! Read replicas for the catalog serving stack: a [`Follower`] tails a
//! leader's epoch changelog (`dh_wal`) and serves the same wait-free
//! read path the leader does, at a bounded, *reported* staleness.
//!
//! The leader side is `dh_catalog`'s `DurableStore`: its changelog is a
//! totally-ordered sequence of whole-epoch state transitions whose
//! replay is deterministic. A follower is nothing more than that replay
//! running continuously against a directory someone else is writing —
//! a shared directory, or one fed by a file-copying replication stream:
//!
//! * [`Follower`] — owns an inner store of the leader's
//!   [`StoreKind`](dh_catalog::StoreKind), applies sealed epochs as
//!   they become visible ([`Follower::poll`]), serves every
//!   `ColumnStore` read (`snapshot_set`, `estimate_*`, the predicate
//!   front cache), rejects every mutation with
//!   [`CatalogError::ReadOnlyReplica`](dh_catalog::CatalogError), and
//!   reports its staleness ([`Follower::lag_epochs`],
//!   [`Follower::leader_epoch_hint`]).
//! * [`chaos`] — [`ChaosDir`](chaos::ChaosDir), the fault-injecting
//!   segment-copier the chaos suite (`tests/replica_chaos.rs`) races
//!   the follower against: truncated tails, delayed and reordered
//!   segment appearance, checkpoint deletion mid-copy.
//!
//! The tailing state machine, the staleness contract and the fault
//! matrix are documented in `docs/REPLICATION.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
mod follower;

pub use follower::{Follower, PollReport, PollStatus};
