//! The follower: continuous changelog replay behind a swappable
//! serving state.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use dh_catalog::durable::{config_from_record, plan_from_deltas, restore_base, strip_policy};
use dh_catalog::{
    AlgoSpec, CatalogError, ColumnConfig, ColumnShape, ColumnStore, DurableError, ReadStats,
    RebuildPlan, Snapshot, SnapshotSet, StoreKind, WriteBatch,
};
use dh_core::UpdateOp;
use dh_wal::segment::latest_checkpoint;
use dh_wal::tail::{TailReader, TailStatus};
use dh_wal::WalRecord;

/// What one [`Follower::poll`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollStatus {
    /// Everything visible on disk is applied; the follower serves the
    /// newest state the changelog exposes.
    CaughtUp,
    /// Progress is blocked on something transient — an epoch gap from a
    /// segment that has not appeared (or finished copying) yet, or a
    /// pruned log whose checkpoint is not readable right now. The
    /// follower keeps serving its current whole-epoch state; poll again.
    Stalled,
    /// The leader's checkpoint pruning ran past the reader, and the
    /// follower rebuilt itself from the newest readable checkpoint plus
    /// the surviving log tail, swapping the serving state forward.
    Restored,
}

/// One poll's outcome: how many epochs were applied and how it ended.
#[derive(Debug, Clone, Copy)]
pub struct PollReport {
    /// Commits applied (epochs advanced) during this poll, including
    /// any applied onto a checkpoint restore.
    pub applied: u64,
    /// How the poll left the follower.
    pub status: PollStatus,
}

/// What replaying a batch of records onto the serving store found.
enum Applied {
    /// Every record landed (or was idempotently skipped).
    Clean,
    /// A record's epoch runs ahead of the store: a segment is missing
    /// or incomplete between here and there. Nothing past the gap was
    /// applied.
    Gap,
}

/// The state readers see, swapped atomically on checkpoint fallback.
struct ServingState {
    store: Box<dyn ColumnStore>,
}

/// The tailing side, serialized under one lock so concurrent `poll`
/// calls cannot interleave replay.
struct TailState {
    reader: TailReader,
    configs: BTreeMap<String, ColumnConfig>,
    /// Per column, the highest legacy re-shard barrier already applied
    /// — a gap rewind can re-read such a record at exactly the current
    /// epoch, and applying it twice could recompute borders the leader
    /// only computed once.
    resharded: BTreeMap<String, u64>,
    /// Per column, the highest rebuild ordinal
    /// ([`WalRecord::Rebuild::seq`]) already applied. Rebuilds dedup on
    /// the ordinal, not the barrier: rebuilds publish no epoch, so two
    /// distinct rebuilds can legitimately share a barrier, and only the
    /// ordinal tells them apart from a gap-rewind re-read.
    rebuilt: BTreeMap<String, u64>,
}

/// A read replica: tails a leader's changelog directory and serves the
/// full [`ColumnStore`] read path from the replayed state; every
/// mutation returns [`CatalogError::ReadOnlyReplica`].
///
/// Reads are wait-free exactly as on the leader — they go through the
/// inner store's front generation; the follower adds one atomic
/// pointer chase to reach the current serving state. Replay runs only
/// inside [`Follower::poll`], which the serving process calls on its
/// own cadence (there is no background thread; the caller owns the
/// schedule and therefore the staleness).
///
/// ```no_run
/// use dh_catalog::{ColumnStore, StoreKind};
/// use dh_replica::Follower;
///
/// let follower = Follower::open("leader-wal-dir", StoreKind::Single).unwrap();
/// loop {
///     follower.poll().unwrap();
///     if follower.contains("amount") {
///         let estimate = follower.estimate_range("amount", 0, 100).unwrap();
///         let staleness = follower.lag_epochs();
///         println!("~{estimate} rows ({staleness} epochs behind)");
///     }
/// #   break;
/// }
/// ```
pub struct Follower {
    dir: PathBuf,
    kind: StoreKind,
    serving: RwLock<Arc<ServingState>>,
    tail: Mutex<TailState>,
    /// Monotone lower bound on the leader's published epoch, refreshed
    /// by every poll; readable without any lock.
    hint: AtomicU64,
}

impl Follower {
    /// Opens a follower over the leader's changelog directory. The
    /// directory may not exist yet (the copy stream has not delivered
    /// anything): the follower starts empty and picks the log up on
    /// later polls. If a checkpoint is already visible, the follower
    /// seeds itself from it instead of replaying the whole history.
    ///
    /// # Errors
    /// [`DurableError::Wal`] if a visible checkpoint is unreadable for
    /// a non-transient reason (store-kind mismatch);
    /// [`DurableError::Recovery`] if it is internally inconsistent.
    pub fn open(dir: impl Into<PathBuf>, kind: StoreKind) -> Result<Follower, DurableError> {
        let dir = dir.into();
        let checkpoint = load_checkpoint(&dir, kind)?;
        let base = checkpoint.as_ref().map_or(0, |ckpt| ckpt.epoch);
        let (store, configs) = restore_base(kind, checkpoint.as_ref())?;
        let rebuilt = checkpoint.as_ref().map(seed_rebuilt).unwrap_or_default();
        let mut reader = TailReader::new(&dir, kind.tag());
        if base > 0 {
            reader.seek(base);
        }
        Ok(Follower {
            dir,
            kind,
            serving: RwLock::new(Arc::new(ServingState { store })),
            tail: Mutex::new(TailState {
                reader,
                configs,
                resharded: BTreeMap::new(),
                rebuilt,
            }),
            hint: AtomicU64::new(base),
        })
    }

    /// The changelog directory this follower tails.
    pub fn wal_dir(&self) -> &Path {
        &self.dir
    }

    /// The store design this follower replays into.
    pub fn kind(&self) -> StoreKind {
        self.kind
    }

    /// A monotone lower bound on the leader's published epoch, learned
    /// from the last [`poll`](Follower::poll): commit epochs and
    /// re-shard barriers seen in the log, plus segment and checkpoint
    /// file names (a segment starting at `S` proves the leader
    /// published `S - 1`). Never overshoots the leader.
    pub fn leader_epoch_hint(&self) -> u64 {
        self.hint.load(Ordering::Acquire).max(self.epoch())
    }

    /// The reported staleness bound:
    /// [`leader_epoch_hint`](Follower::leader_epoch_hint) minus the
    /// epoch this follower serves. `0` means the follower has applied
    /// everything the last poll could see; the true lag additionally
    /// includes whatever the leader published after that poll (bounded,
    /// for a file-copied stream, by the leader's unsynced window plus
    /// its in-flight segment — see `docs/REPLICATION.md`).
    pub fn lag_epochs(&self) -> u64 {
        self.leader_epoch_hint().saturating_sub(self.epoch())
    }

    /// Reads everything newly visible in the changelog and applies the
    /// sealed epochs, in order, to the serving state. Readers are never
    /// blocked and only ever observe whole-epoch states.
    ///
    /// # Errors
    /// [`DurableError::Wal`] on real corruption or a foreign directory;
    /// [`DurableError::Recovery`] if the log contradicts the replayed
    /// state. Transient copy races (torn tails, half-rotated segments,
    /// delayed files) are never errors — they surface as
    /// [`PollStatus::Stalled`] or an empty
    /// [`PollStatus::CaughtUp`] and resolve on later polls.
    pub fn poll(&self) -> Result<PollReport, DurableError> {
        let mut tail = self
            .tail
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let serving = self.current();
        let mut applied = 0u64;
        let polled = tail.reader.poll()?;
        let status = match polled.status {
            TailStatus::Lost => self.fall_back(&mut tail, &mut applied)?,
            TailStatus::CaughtUp => {
                let TailState {
                    configs,
                    resharded,
                    rebuilt,
                    ..
                } = &mut *tail;
                match apply_records(
                    serving.store.as_ref(),
                    configs,
                    resharded,
                    rebuilt,
                    polled.records,
                    &mut applied,
                )? {
                    Applied::Clean => PollStatus::CaughtUp,
                    Applied::Gap => {
                        // A later segment became visible before an
                        // earlier one finished copying — or the epochs
                        // between here and there are pruned for good
                        // and only a checkpoint can bridge them (a
                        // follower joining a long-running leader parks
                        // on a surviving segment and would otherwise
                        // stall forever: the missing history is never
                        // going to arrive). If a readable checkpoint
                        // lands past our epoch, restore through it;
                        // otherwise rewind to our own epoch and retry
                        // (the overlap re-reads idempotently once the
                        // missing piece lands).
                        let bridges = load_checkpoint(&self.dir, self.kind)?
                            .is_some_and(|ckpt| ckpt.epoch > serving.store.epoch());
                        if bridges {
                            self.fall_back(&mut tail, &mut applied)?
                        } else {
                            tail.reader.seek(serving.store.epoch());
                            PollStatus::Stalled
                        }
                    }
                }
            }
        };
        let hint = tail.reader.epoch_hint();
        self.hint.fetch_max(hint, Ordering::AcqRel);
        Ok(PollReport { applied, status })
    }

    /// The pruned-log fallback: rebuild from the newest readable
    /// checkpoint, replay the surviving tail onto it, and swap the
    /// serving state — but never backwards. If no checkpoint is
    /// readable right now (deleted mid-copy, not delivered yet), keep
    /// serving the current state and retry on a later poll.
    fn fall_back(
        &self,
        tail: &mut TailState,
        applied: &mut u64,
    ) -> Result<PollStatus, DurableError> {
        let old_epoch = self.epoch();
        let Some(ckpt) = load_checkpoint(&self.dir, self.kind)? else {
            tail.reader.seek(old_epoch);
            return Ok(PollStatus::Stalled);
        };
        let (store, mut configs) = restore_base(self.kind, Some(&ckpt))?;
        let mut resharded = BTreeMap::new();
        // Seed the rebuild-ordinal floor from the checkpoint: a rebuild
        // record at exactly the checkpoint epoch is still in the log
        // tail, and only its ordinal proves it is already inside the
        // restored shape.
        let mut rebuilt = seed_rebuilt(&ckpt);
        let mut reader = TailReader::new(&self.dir, self.kind.tag());
        reader.seek(ckpt.epoch);
        let polled = reader.poll()?;
        let mut restored_applied = 0u64;
        let clean = match polled.status {
            // Pruned again while restoring: keep the old state, retry.
            TailStatus::Lost => {
                tail.reader.seek(old_epoch);
                return Ok(PollStatus::Stalled);
            }
            TailStatus::CaughtUp => matches!(
                apply_records(
                    store.as_ref(),
                    &mut configs,
                    &mut resharded,
                    &mut rebuilt,
                    polled.records,
                    &mut restored_applied,
                )?,
                Applied::Clean
            ),
        };
        if store.epoch() < old_epoch {
            // The readable checkpoint plus tail lands *behind* what we
            // already serve (a stale copy of the directory). Never step
            // a replica backwards; retry from our own epoch.
            tail.reader.seek(old_epoch);
            return Ok(PollStatus::Stalled);
        }
        if !clean {
            // The restored state is a valid whole-epoch state, but the
            // tail past it has a gap; park the new reader at the new
            // epoch for the retry.
            reader.seek(store.epoch());
        }
        self.hint.fetch_max(ckpt.epoch, Ordering::AcqRel);
        *applied += restored_applied;
        *self
            .serving
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Arc::new(ServingState { store });
        tail.reader = reader;
        tail.configs = configs;
        tail.resharded = resharded;
        tail.rebuilt = rebuilt;
        Ok(PollStatus::Restored)
    }

    fn current(&self) -> Arc<ServingState> {
        self.serving
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

impl std::fmt::Debug for Follower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Follower")
            .field("kind", &self.kind)
            .field("dir", &self.dir)
            .field("epoch", &self.epoch())
            .field("lag_epochs", &self.lag_epochs())
            .finish()
    }
}

/// Loads the newest readable checkpoint, tolerating a directory that
/// does not exist yet (nothing delivered): that is `None`, not an
/// error.
fn load_checkpoint(
    dir: &Path,
    kind: StoreKind,
) -> Result<Option<dh_wal::Checkpoint>, DurableError> {
    if !dir.exists() {
        return Ok(None);
    }
    Ok(latest_checkpoint(dir, kind.tag())?)
}

/// The per-column rebuild ordinals a checkpoint proves applied — the
/// dedup floor replay starts from after a checkpoint restore.
fn seed_rebuilt(ckpt: &dh_wal::Checkpoint) -> BTreeMap<String, u64> {
    ckpt.columns
        .iter()
        .filter(|col| col.config.rebuild_seq > 0)
        .map(|col| (col.column.clone(), col.config.rebuild_seq))
        .collect()
}

/// Replays records onto a serving store, mirroring the leader-side
/// recovery replay — with one deliberate difference: where recovery
/// treats an epoch gap as unreplayable corruption (the leader owns its
/// log; a gap there is data loss), a follower treats it as a segment
/// that has not arrived yet and reports [`Applied::Gap`] for a retry.
fn apply_records(
    store: &dyn ColumnStore,
    configs: &mut BTreeMap<String, ColumnConfig>,
    resharded: &mut BTreeMap<String, u64>,
    rebuilt: &mut BTreeMap<String, u64>,
    records: Vec<WalRecord>,
    applied: &mut u64,
) -> Result<Applied, DurableError> {
    for record in records {
        match record {
            WalRecord::Register { column, config } => {
                let config = config_from_record(&config)?;
                match configs.get(&column) {
                    // Re-read after a seek, or covered by the restored
                    // checkpoint.
                    Some(live) if *live == config => {}
                    Some(live) => {
                        return Err(DurableError::Recovery(format!(
                            "register record for '{column}' contradicts the replica's \
                             config ({config:?} vs {live:?})"
                        )));
                    }
                    None => {
                        store.register(&column, strip_policy(&config))?;
                        configs.insert(column, config);
                    }
                }
            }
            WalRecord::Commit { epoch, columns } => {
                let at = store.epoch();
                if epoch <= at {
                    continue; // re-read overlap after a seek
                }
                if epoch != at + 1 {
                    return Ok(Applied::Gap);
                }
                let mut batch = WriteBatch::new();
                for (column, ops) in columns {
                    batch.extend(&column, ops);
                }
                store.commit(batch)?;
                *applied += 1;
            }
            // Legacy records: written before the elastic rebuild plane
            // (today's leaders log every border move as `Rebuild`). At
            // most one could land per barrier, so the barrier doubles as
            // its identity and the dedup below is sound for them.
            WalRecord::Reshard { column, barrier } => {
                let at = store.epoch();
                if barrier < at || resharded.get(&column).is_some_and(|&b| barrier <= b) {
                    // The leader appends under one lock, so the byte
                    // stream is a prefix in epoch order: having applied
                    // any commit past `barrier` proves this re-shard
                    // was already replayed (or checkpoint-covered) —
                    // likewise one re-read at exactly the current epoch
                    // after a gap rewind.
                    continue;
                }
                if barrier > at {
                    return Ok(Applied::Gap);
                }
                store.reshard(&column)?;
                resharded.insert(column, barrier);
            }
            WalRecord::Rebuild {
                column,
                barrier,
                seq,
                shards,
                spec,
                memory_bytes,
                channel,
            } => {
                let at = store.epoch();
                if barrier < at || rebuilt.get(&column).is_some_and(|&s| seq <= s) {
                    // A commit past `barrier` proves this rebuild was
                    // already replayed or checkpoint-covered (the same
                    // prefix-order argument as for re-shard records).
                    // At the barrier itself only the ordinal decides:
                    // rebuilds publish no epoch, so a *distinct* second
                    // rebuild at the same barrier (seq above the floor)
                    // must apply, while a gap-rewind re-read (seq at or
                    // below it) must not.
                    continue;
                }
                if barrier > at {
                    return Ok(Applied::Gap);
                }
                let plan = plan_from_deltas(shards, spec.as_deref(), memory_bytes, channel)?;
                store.rebuild(&column, plan)?;
                rebuilt.insert(column, seq);
            }
        }
    }
    Ok(Applied::Clean)
}

/// A read-only error for every mutation arriving through the trait.
fn read_only<T>() -> Result<T, CatalogError> {
    Err(CatalogError::ReadOnlyReplica)
}

impl ColumnStore for Follower {
    /// Mutation: rejected with [`CatalogError::ReadOnlyReplica`] —
    /// columns appear on a follower by replaying the leader's register
    /// records.
    fn register(&self, _column: &str, _config: ColumnConfig) -> Result<(), CatalogError> {
        read_only()
    }

    fn columns(&self) -> Vec<String> {
        self.current().store.columns()
    }

    fn contains(&self, column: &str) -> bool {
        self.current().store.contains(column)
    }

    fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        self.current().store.spec(column)
    }

    /// Mutation: rejected with [`CatalogError::ReadOnlyReplica`] —
    /// commits reach a follower only through the changelog.
    fn commit(&self, _batch: WriteBatch) -> Result<u64, CatalogError> {
        read_only()
    }

    /// Mutation: rejected with [`CatalogError::ReadOnlyReplica`].
    fn apply(&self, _column: &str, _batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        read_only()
    }

    fn flush(&self, column: &str) -> Result<(), CatalogError> {
        self.current().store.flush(column)
    }

    fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        self.current().store.snapshot(column)
    }

    fn snapshot_set(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError> {
        self.current().store.snapshot_set(columns)
    }

    fn snapshot_set_at(&self, columns: &[&str], epoch: u64) -> Result<SnapshotSet, CatalogError> {
        self.current().store.snapshot_set_at(columns, epoch)
    }

    fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        self.current().store.checkpoint(column)
    }

    fn epoch(&self) -> u64 {
        self.current().store.epoch()
    }

    /// Mutation: rejected with [`CatalogError::ReadOnlyReplica`] — the
    /// leader logs every border move; followers replay it at its exact
    /// barrier epoch.
    fn reshard(&self, _column: &str) -> Result<bool, CatalogError> {
        read_only()
    }

    /// Mutation: rejected with [`CatalogError::ReadOnlyReplica`] — the
    /// leader logs every shape change; followers replay it at its exact
    /// barrier epoch.
    fn rebuild(&self, _column: &str, _plan: RebuildPlan) -> Result<bool, CatalogError> {
        read_only()
    }

    fn column_shape(&self, column: &str) -> Result<Option<ColumnShape>, CatalogError> {
        self.current().store.column_shape(column)
    }

    fn shard_load(&self, column: &str) -> Result<Vec<u64>, CatalogError> {
        self.current().store.shard_load(column)
    }

    fn clamped_ops(&self, column: &str) -> Result<u64, CatalogError> {
        self.current().store.clamped_ops(column)
    }

    fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        self.current().store.estimate_range(column, a, b)
    }

    fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        self.current().store.estimate_eq(column, v)
    }

    fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        self.current().store.total_count(column)
    }

    fn read_stats(&self) -> ReadStats {
        self.current().store.read_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_catalog::{DurableOptions, DurableStore};
    use dh_core::MemoryBudget;
    use dh_wal::tmp::TempDir;
    use dh_wal::SyncPolicy;

    fn opts() -> DurableOptions {
        DurableOptions {
            sync: SyncPolicy::Off,
            checkpoint_every: None,
            retain_generations: 2,
        }
    }

    fn config() -> ColumnConfig {
        ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)).with_seed(3)
    }

    #[test]
    fn follower_tails_a_shared_directory() {
        let dir = TempDir::new("fol-shared");
        let leader = DurableStore::open(dir.path(), StoreKind::Single, opts()).unwrap();
        leader.register("c", config()).unwrap();
        leader.apply("c", &[UpdateOp::Insert(5)]).unwrap();

        let follower = Follower::open(dir.path(), StoreKind::Single).unwrap();
        let report = follower.poll().unwrap();
        assert_eq!(report.status, PollStatus::CaughtUp);
        assert_eq!(report.applied, 1);
        assert_eq!(follower.epoch(), 1);
        assert_eq!(follower.lag_epochs(), 0);
        assert_eq!(
            follower.total_count("c").unwrap().to_bits(),
            leader.total_count("c").unwrap().to_bits()
        );

        // More commits appear; the follower picks them up in order.
        for v in [7, 9, 11] {
            leader.apply("c", &[UpdateOp::Insert(v)]).unwrap();
        }
        assert_eq!(follower.poll().unwrap().applied, 3);
        assert_eq!(follower.epoch(), leader.epoch());
        assert_eq!(
            follower.estimate_range("c", 0, 100).unwrap().to_bits(),
            leader.estimate_range("c", 0, 100).unwrap().to_bits()
        );
    }

    #[test]
    fn mutations_are_typed_read_only_rejections() {
        let dir = TempDir::new("fol-ro");
        drop(DurableStore::open(dir.path(), StoreKind::Single, opts()).unwrap());
        let follower = Follower::open(dir.path(), StoreKind::Single).unwrap();

        assert!(matches!(
            follower.register("c", config()),
            Err(CatalogError::ReadOnlyReplica)
        ));
        let mut batch = WriteBatch::new();
        batch.extend("c", [UpdateOp::Insert(1)]);
        assert!(matches!(
            follower.commit(batch),
            Err(CatalogError::ReadOnlyReplica)
        ));
        assert!(matches!(
            follower.apply("c", &[UpdateOp::Insert(1)]),
            Err(CatalogError::ReadOnlyReplica)
        ));
        assert!(matches!(
            follower.reshard("c"),
            Err(CatalogError::ReadOnlyReplica)
        ));
        assert!(matches!(
            follower.rebuild("c", RebuildPlan::new().with_shards(4)),
            Err(CatalogError::ReadOnlyReplica)
        ));
        assert!(CatalogError::ReadOnlyReplica
            .to_string()
            .contains("read-only replica"));
    }

    #[test]
    fn missing_directory_starts_empty_and_catches_up_later() {
        let root = TempDir::new("fol-late");
        let dir = root.path().join("wal");
        let follower = Follower::open(&dir, StoreKind::Single).unwrap();
        assert_eq!(follower.poll().unwrap().status, PollStatus::CaughtUp);
        assert_eq!(follower.epoch(), 0);

        let leader = DurableStore::open(&dir, StoreKind::Single, opts()).unwrap();
        leader.register("c", config()).unwrap();
        leader.apply("c", &[UpdateOp::Insert(5)]).unwrap();
        assert_eq!(follower.poll().unwrap().applied, 1);
        assert_eq!(follower.epoch(), 1);
    }

    #[test]
    fn pruned_log_falls_back_to_checkpoint_restore() {
        let dir = TempDir::new("fol-prune");
        let leader = DurableStore::open(dir.path(), StoreKind::Single, opts()).unwrap();
        leader.register("c", config()).unwrap();

        let follower = Follower::open(dir.path(), StoreKind::Single).unwrap();
        follower.poll().unwrap();

        // The leader runs ahead and checkpoints twice: the segment the
        // follower's cursor was parked in is pruned away.
        for e in 0..6 {
            leader.apply("c", &[UpdateOp::Insert(e)]).unwrap();
            if e % 2 == 1 {
                leader.checkpoint_now().unwrap();
            }
        }
        let report = follower.poll().unwrap();
        assert_eq!(report.status, PollStatus::Restored);
        assert_eq!(follower.epoch(), leader.epoch());
        // Mass is exact through a checkpoint restore.
        assert_eq!(
            follower.total_count("c").unwrap().to_bits(),
            leader.total_count("c").unwrap().to_bits()
        );
        // And the follower keeps tailing normally afterwards.
        leader.apply("c", &[UpdateOp::Insert(50)]).unwrap();
        let report = follower.poll().unwrap();
        assert_eq!(report.status, PollStatus::CaughtUp);
        assert_eq!(follower.epoch(), leader.epoch());
    }
}
