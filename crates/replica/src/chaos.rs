//! Fault-injecting changelog replication: the adversary the chaos
//! suite races a [`Follower`](crate::Follower) against.
//!
//! [`ChaosDir`] models the ugliest honest replication stream a
//! follower can face: a process copying the leader's changelog
//! directory file-by-file, where any copy can be caught mid-write
//! (truncated tails at arbitrary byte boundaries), any file's
//! appearance can be delayed or reordered relative to the leader's
//! write order, and checkpoint files can vanish mid-copy. It never
//! *invents* bytes — every follower-side file is always a prefix of
//! some past-or-present leader-side file — because the follower's
//! contract is to survive every honest race, while actual bit rot is
//! (correctly) a typed corruption error.
//!
//! Faults are driven by a seeded deterministic generator, so every
//! chaos schedule in the test suite is reproducible from its seed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A faulty one-way copier from a leader's changelog directory to a
/// follower's.
///
/// Each [`step`](ChaosDir::step) makes one pass over the leader's
/// files, copying each with an injected fault (or skipping it); it
/// also mirrors the leader's deletions (segment pruning, checkpoint
/// retention) and occasionally deletes a follower-side checkpoint
/// mid-copy. [`settle`](ChaosDir::settle) ends the storm: it copies
/// everything faithfully, after which the follower must converge.
#[derive(Debug)]
pub struct ChaosDir {
    leader: PathBuf,
    follower: PathBuf,
    rng: u64,
}

impl ChaosDir {
    /// A chaos copier from `leader` to `follower` (created if absent),
    /// with all faults drawn deterministically from `seed`.
    ///
    /// # Errors
    /// Any I/O failure creating the follower directory.
    pub fn new(
        leader: impl Into<PathBuf>,
        follower: impl Into<PathBuf>,
        seed: u64,
    ) -> io::Result<ChaosDir> {
        let leader = leader.into();
        let follower = follower.into();
        fs::create_dir_all(&follower)?;
        Ok(ChaosDir {
            leader,
            follower,
            // xorshift must not start at 0; fold the seed into a
            // non-zero state.
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        })
    }

    /// The follower-side directory the copier writes into.
    pub fn follower_dir(&self) -> &Path {
        &self.follower
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: deterministic, no external dependency.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// One faulty replication pass. Per leader file, one of: skip it
    /// this round (delayed/reordered appearance), deliver a prefix
    /// truncated at a random byte boundary (a copy caught mid-write),
    /// or deliver it whole. Mirrors leader-side deletions, and with
    /// some probability deletes one follower-side checkpoint (the
    /// mid-copy checkpoint-deletion fault).
    ///
    /// # Errors
    /// Any real I/O failure; injected faults are not errors.
    pub fn step(&mut self) -> io::Result<()> {
        for (name, path) in list(&self.leader)? {
            let roll = self.next() % 100;
            if roll < 30 {
                continue; // delayed: this file does not appear yet
            }
            // Tolerate the leader pruning the file mid-pass.
            let bytes = match fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let deliver = if roll < 60 {
                // Truncated mid-copy, at any byte boundary.
                let cut = (self.next() as usize) % (bytes.len() + 1);
                &bytes[..cut]
            } else {
                &bytes[..]
            };
            // Never regress a fully-delivered file to a shorter prefix:
            // a real copier appends, it does not rewind. (The tail
            // reader tolerates shrinkage too, but the chaos model stays
            // an honest stream.)
            let dst = self.follower.join(&name);
            let have = fs::metadata(&dst).map(|m| m.len()).unwrap_or(0);
            if (deliver.len() as u64) < have {
                continue;
            }
            fs::write(&dst, deliver)?;
        }
        self.mirror_deletions()?;
        if self.next() % 100 < 20 {
            // Mid-copy checkpoint deletion: one follower-side
            // checkpoint vanishes even though the leader still has it.
            let checkpoints: Vec<PathBuf> = list(&self.follower)?
                .into_iter()
                .filter(|(name, _)| name.ends_with(".ck"))
                .map(|(_, path)| path)
                .collect();
            if !checkpoints.is_empty() {
                let victim = &checkpoints[(self.next() as usize) % checkpoints.len()];
                let _ = fs::remove_file(victim);
            }
        }
        Ok(())
    }

    /// Ends the fault schedule: copies every leader file whole and
    /// mirrors deletions, leaving the follower directory an exact
    /// replica of the leader's. After this, a polling follower must
    /// converge bit-identically.
    ///
    /// # Errors
    /// Any real I/O failure.
    pub fn settle(&mut self) -> io::Result<()> {
        for (name, path) in list(&self.leader)? {
            let bytes = match fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            fs::write(self.follower.join(&name), &bytes)?;
        }
        self.mirror_deletions()
    }

    /// Removes follower-side files the leader no longer has — the
    /// replication stream's view of segment pruning and checkpoint
    /// retention.
    fn mirror_deletions(&mut self) -> io::Result<()> {
        let keep: Vec<String> = list(&self.leader)?.into_iter().map(|(n, _)| n).collect();
        for (name, path) in list(&self.follower)? {
            if !keep.contains(&name) {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(())
    }
}

/// Changelog files (segments and checkpoints) in `dir`, sorted by name
/// — which for segments is start-epoch order. A missing directory
/// lists empty.
fn list(dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(files),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
            continue;
        };
        if name.ends_with(".seg") || name.ends_with(".ck") {
            files.push((name, entry.path()));
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_wal::tmp::TempDir;

    #[test]
    fn settle_produces_an_exact_replica() {
        let leader = TempDir::new("chaos-leader");
        let follower = TempDir::new("chaos-follower");
        fs::write(leader.path().join("wal-00000000000000000000.seg"), b"abc").unwrap();
        fs::write(leader.path().join("ckpt-00000000000000000004.ck"), b"xyz").unwrap();
        fs::write(follower.path().join("wal-99999999999999999999.seg"), b"zzz").unwrap();

        let mut chaos = ChaosDir::new(leader.path(), follower.path(), 1).unwrap();
        for _ in 0..5 {
            chaos.step().unwrap();
        }
        chaos.settle().unwrap();

        let snap = |dir: &Path| {
            let mut v = list(dir)
                .unwrap()
                .into_iter()
                .map(|(n, p)| (n, fs::read(p).unwrap()))
                .collect::<Vec<_>>();
            v.sort();
            v
        };
        assert_eq!(snap(leader.path()), snap(follower.path()));
    }

    #[test]
    fn faults_only_ever_deliver_prefixes() {
        let leader = TempDir::new("chaos-pre-leader");
        let follower = TempDir::new("chaos-pre-follower");
        let payload: Vec<u8> = (0..=255).collect();
        fs::write(leader.path().join("wal-00000000000000000000.seg"), &payload).unwrap();

        let mut chaos = ChaosDir::new(leader.path(), follower.path(), 7).unwrap();
        for _ in 0..20 {
            chaos.step().unwrap();
            let dst = follower.path().join("wal-00000000000000000000.seg");
            if let Ok(bytes) = fs::read(&dst) {
                assert_eq!(bytes[..], payload[..bytes.len()], "not a prefix");
            }
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |label: &str| {
            let leader = TempDir::new(&format!("chaos-det-l-{label}"));
            let follower = TempDir::new(&format!("chaos-det-f-{label}"));
            for i in 0..4u64 {
                fs::write(
                    leader.path().join(format!("wal-{i:020}.seg")),
                    vec![i as u8; 64],
                )
                .unwrap();
            }
            let mut chaos = ChaosDir::new(leader.path(), follower.path(), 42).unwrap();
            let mut trace = Vec::new();
            for _ in 0..6 {
                chaos.step().unwrap();
                let mut state: Vec<(String, u64)> = list(follower.path())
                    .unwrap()
                    .into_iter()
                    .map(|(n, p)| (n, fs::metadata(p).unwrap().len()))
                    .collect();
                state.sort();
                trace.push(state);
            }
            trace
        };
        assert_eq!(run("a"), run("b"));
    }
}
