//! Segmented append-only log files and checkpoint files.
//!
//! A log directory holds:
//!
//! ```text
//! wal-00000000000000000000.seg   segment: records with epochs >= 0
//! wal-00000000000000000129.seg   segment: records with epochs >= 129
//! ckpt-00000000000000000128.ck   checkpoint of the whole store at epoch 128
//! ```
//!
//! Every file opens with a 9-byte header: an 8-byte magic/version
//! (`DHWAL001` / `DHCKP001`) and a store-kind tag byte, so a sharded
//! store cannot silently replay a single-cell store's log. Segments are
//! named by the first epoch they may contain; rotation happens right
//! after a checkpoint at epoch `E`, opening `wal-{E+1}.seg`, which makes
//! "segments fully covered by a checkpoint" a pure filename computation
//! (see [`Wal::remove_covered`]).
//!
//! Torn-tail policy: only the **last** segment may end mid-record or
//! with a failed checksum, and only when nothing decodable follows the
//! damage — [`Wal::open`] then physically truncates it back to its last
//! valid record. A damaged frame with a decodable frame after it is
//! mid-file bit rot, not a torn tail; that, the same shape in a sealed
//! segment, or a checksum-valid record that does not decode anywhere,
//! is a [`WalError::Corrupt`].

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use dh_core::BucketSpan;

use crate::record::{self, ConfigRecord, Frame, Reader, WalRecord, Writer};
use crate::{SyncPolicy, WalError};

pub(crate) const SEG_MAGIC: &[u8; 8] = b"DHWAL001";
const CKPT_MAGIC: &[u8; 8] = b"DHCKP001";
pub(crate) const HEADER_LEN: u64 = 9;

pub(crate) fn segment_name(start_epoch: u64) -> String {
    format!("wal-{start_epoch:020}.seg")
}

fn checkpoint_name(epoch: u64) -> String {
    format!("ckpt-{epoch:020}.ck")
}

/// Parses `wal-{epoch:020}.seg` back to its start epoch.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let epoch = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    (epoch.len() == 20).then(|| epoch.parse().ok()).flatten()
}

pub(crate) fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let epoch = name.strip_prefix("ckpt-")?.strip_suffix(".ck")?;
    (epoch.len() == 20).then(|| epoch.parse().ok()).flatten()
}

fn fsync_dir(dir: &Path) -> Result<(), WalError> {
    let handle = File::open(dir).map_err(|e| WalError::io(dir, "open dir", e))?;
    handle
        .sync_all()
        .map_err(|e| WalError::io(dir, "fsync dir", e))
}

/// Validates a 9-byte header, returning the remaining payload offset.
pub(crate) fn check_header(
    path: &Path,
    buf: &[u8],
    magic: &[u8; 8],
    kind: u8,
) -> Result<(), WalError> {
    if buf.len() < HEADER_LEN as usize {
        return Err(WalError::BadHeader {
            path: path.to_path_buf(),
            why: format!("file is {} bytes, shorter than the header", buf.len()),
        });
    }
    if &buf[..8] != magic {
        return Err(WalError::BadHeader {
            path: path.to_path_buf(),
            why: format!("magic {:02x?} != {:02x?}", &buf[..8], magic),
        });
    }
    if buf[8] != kind {
        return Err(WalError::StoreKindMismatch {
            path: path.to_path_buf(),
            expected: kind,
            found: buf[8],
        });
    }
    Ok(())
}

/// The append-only epoch changelog: an open handle on the active
/// segment plus the sorted ledger of every segment in the directory.
///
/// All mutation goes through the owning `DurableStore`, which serializes
/// appends under its commit lock — `Wal` itself is single-writer and
/// does no locking.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    kind: u8,
    policy: SyncPolicy,
    file: File,
    path: PathBuf,
    /// Every segment in the directory (sealed + active), sorted by
    /// start epoch. The last entry is the active segment.
    segments: Vec<(u64, PathBuf)>,
    /// Appends since the last fsync, for [`SyncPolicy::Batched`].
    unsynced: u64,
}

impl Wal {
    /// Opens (or creates) the changelog in `dir`, validating every
    /// segment and returning all surviving records in append order —
    /// which, because appends are serialized under the commit lock, is
    /// exactly epoch order.
    ///
    /// A torn tail on the *last* segment is truncated away (crash
    /// mid-append); a partially-created last segment (shorter than its
    /// header — crash mid-rotation) is removed. Any other damage is a
    /// typed error.
    pub fn open(
        dir: impl Into<PathBuf>,
        kind: u8,
        policy: SyncPolicy,
    ) -> Result<(Wal, Vec<WalRecord>), WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| WalError::io(&dir, "create dir", e))?;

        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| WalError::io(&dir, "read dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| WalError::io(&dir, "read dir", e))?;
            let name = entry.file_name();
            if let Some(start) = name.to_str().and_then(parse_segment_name) {
                segments.push((start, entry.path()));
            }
        }
        segments.sort();

        // A crash between "create next segment" and "write its header"
        // can leave a headerless file in the *last* position only.
        if let Some((_, path)) = segments.last() {
            let len = fs::metadata(path)
                .map_err(|e| WalError::io(path, "stat", e))?
                .len();
            if len < HEADER_LEN && segments.len() > 1 {
                let path = path.clone();
                fs::remove_file(&path).map_err(|e| WalError::io(&path, "remove", e))?;
                segments.pop();
            }
        }

        if segments.is_empty() {
            let path = dir.join(segment_name(0));
            let file = Self::create_segment(&path, kind)?;
            fsync_dir(&dir)?;
            let wal = Wal {
                dir,
                kind,
                policy,
                file,
                path: path.clone(),
                segments: vec![(0, path)],
                unsynced: 0,
            };
            return Ok((wal, Vec::new()));
        }

        let mut records = Vec::new();
        let last = segments.len() - 1;
        for (i, (_, path)) in segments.iter().enumerate() {
            Self::read_segment(path, kind, i == last, &mut records)?;
        }

        let path = segments[last].1.clone();
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| WalError::io(&path, "open for append", e))?;
        let wal = Wal {
            dir,
            kind,
            policy,
            file,
            path,
            segments,
            unsynced: 0,
        };
        Ok((wal, records))
    }

    fn create_segment(path: &Path, kind: u8) -> Result<File, WalError> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)
            .map_err(|e| WalError::io(path, "create", e))?;
        file.write_all(SEG_MAGIC)
            .and_then(|()| file.write_all(&[kind]))
            .map_err(|e| WalError::io(path, "write header", e))?;
        file.sync_data()
            .map_err(|e| WalError::io(path, "fsync", e))?;
        Ok(file)
    }

    /// Reads one segment, pushing its records; truncates a torn tail if
    /// `is_last`, errors on it otherwise.
    fn read_segment(
        path: &Path,
        kind: u8,
        is_last: bool,
        records: &mut Vec<WalRecord>,
    ) -> Result<(), WalError> {
        let mut buf = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| WalError::io(path, "read", e))?;
        if is_last && buf.len() < HEADER_LEN as usize {
            // Single partially-created segment (fresh log that crashed
            // during creation): rewrite the header in place.
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| WalError::io(path, "open", e))?;
            file.set_len(0)
                .map_err(|e| WalError::io(path, "truncate", e))?;
            drop(file);
            let f = Self::create_or_reset_header(path, kind)?;
            drop(f);
            return Ok(());
        }
        check_header(path, &buf, SEG_MAGIC, kind)?;

        let mut at = HEADER_LEN as usize;
        loop {
            match record::read_frame(&buf, at) {
                Frame::Done => return Ok(()),
                Frame::Record { record, next } => {
                    records.push(record);
                    at = next;
                }
                Frame::Torn if is_last => {
                    // A torn frame only means "crash mid-append" when
                    // nothing decodable follows it. If a later offset
                    // still yields a valid frame, the damage is mid-file
                    // bit rot and truncating here would silently discard
                    // valid (possibly acknowledged) records after it.
                    if Self::scan_finds_frame(&buf, at) {
                        return Err(WalError::Corrupt {
                            path: path.to_path_buf(),
                            offset: at as u64,
                            why: "damaged record followed by decodable data in the active segment"
                                .into(),
                        });
                    }
                    // Crash mid-append: shed the tail and keep the
                    // surviving prefix.
                    let file = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| WalError::io(path, "open", e))?;
                    file.set_len(at as u64)
                        .map_err(|e| WalError::io(path, "truncate", e))?;
                    file.sync_data()
                        .map_err(|e| WalError::io(path, "fsync", e))?;
                    return Ok(());
                }
                Frame::Torn => {
                    return Err(WalError::Corrupt {
                        path: path.to_path_buf(),
                        offset: at as u64,
                        why: "incomplete or checksum-failed record in a sealed segment".into(),
                    });
                }
                Frame::Invalid { why } => {
                    return Err(WalError::Corrupt {
                        path: path.to_path_buf(),
                        offset: at as u64,
                        why,
                    });
                }
            }
        }
    }

    /// True when any offset past `from` still parses as a complete
    /// frame (checksum-verified record or a typed-but-invalid payload):
    /// the byte stream continues past the damage, so it cannot be a
    /// torn tail. Only runs on the active segment's damaged suffix,
    /// which a crash keeps short.
    fn scan_finds_frame(buf: &[u8], from: usize) -> bool {
        for at in from + 1..buf.len() {
            match record::read_frame(buf, at) {
                Frame::Record { .. } | Frame::Invalid { .. } => return true,
                Frame::Torn | Frame::Done => {}
            }
        }
        false
    }

    fn create_or_reset_header(path: &Path, kind: u8) -> Result<File, WalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| WalError::io(path, "open", e))?;
        file.write_all(SEG_MAGIC)
            .and_then(|()| file.write_all(&[kind]))
            .map_err(|e| WalError::io(path, "write header", e))?;
        file.sync_data()
            .map_err(|e| WalError::io(path, "fsync", e))?;
        Ok(file)
    }

    /// Appends one record to the active segment, honouring the sync
    /// policy. The caller (the commit lock) guarantees append order ==
    /// epoch order.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let frame = record.encode_frame();
        self.file
            .write_all(&frame)
            .map_err(|e| WalError::io(&self.path, "append", e))?;
        match self.policy {
            SyncPolicy::PerCommit => {
                self.file
                    .sync_data()
                    .map_err(|e| WalError::io(&self.path, "fsync", e))?;
            }
            SyncPolicy::Batched(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Forces an fsync of the active segment.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file
            .sync_data()
            .map_err(|e| WalError::io(&self.path, "fsync", e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Seals the active segment and opens `wal-{next_start}.seg`.
    /// Called right after a checkpoint at epoch `next_start - 1`, so
    /// every sealed segment holds only checkpoint-covered epochs.
    pub fn rotate(&mut self, next_start: u64) -> Result<(), WalError> {
        self.sync()?;
        let path = self.dir.join(segment_name(next_start));
        let file = Self::create_segment(&path, self.kind)?;
        fsync_dir(&self.dir)?;
        self.file = file;
        self.path = path.clone();
        self.segments.push((next_start, path));
        Ok(())
    }

    /// Removes every sealed segment fully covered by a checkpoint at
    /// `checkpoint_epoch`: a sealed segment is removable when its
    /// *successor's* start epoch is `<= checkpoint_epoch + 1` (all its
    /// records then replay to states the checkpoint already contains).
    /// Callers that keep fallback checkpoints should pass the *oldest*
    /// retained checkpoint's epoch (see [`checkpoint_epochs`]), not the
    /// newest, or the fallback loses its log tail. The active segment is
    /// never removed. Returns how many segments were deleted.
    pub fn remove_covered(&mut self, checkpoint_epoch: u64) -> Result<usize, WalError> {
        let mut removed = 0;
        while self.segments.len() > 1 && self.segments[1].0 <= checkpoint_epoch + 1 {
            let (_, path) = self.segments.remove(0);
            fs::remove_file(&path).map_err(|e| WalError::io(&path, "remove", e))?;
            removed += 1;
        }
        if removed > 0 {
            fsync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many segment files the directory currently holds.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// A whole-store snapshot at one published epoch: everything recovery
/// needs to re-seed a store without replaying older segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The epoch the snapshot was composed at.
    pub epoch: u64,
    /// One entry per registered column, in registration order.
    pub columns: Vec<CheckpointColumn>,
}

/// One column's slice of a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointColumn {
    /// Column name.
    pub column: String,
    /// The registration config (restored verbatim, minus any inner
    /// re-shard policy — the durable layer runs policy itself).
    pub config: ConfigRecord,
    /// Commits that touched this column up to the checkpoint epoch.
    pub accepted: u64,
    /// Update ops absorbed by this column up to the checkpoint epoch.
    pub updates: u64,
    /// The composed whole-column histogram spans at the epoch.
    pub spans: Vec<BucketSpan>,
}

impl Checkpoint {
    fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.epoch);
        w.u32(self.columns.len() as u32);
        for col in &self.columns {
            w.str_(&col.column);
            col.config.encode(&mut w);
            w.u64(col.accepted);
            w.u64(col.updates);
            w.u32(col.spans.len() as u32);
            for span in &col.spans {
                w.f64(span.lo);
                w.f64(span.hi);
                w.f64(span.count);
            }
        }
        w.buf
    }

    fn decode_payload(payload: &[u8]) -> Result<Checkpoint, String> {
        let mut r = Reader::new(payload);
        let epoch = r.u64()?;
        let n = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let column = r.str_()?;
            let config = ConfigRecord::decode(&mut r)?;
            let accepted = r.u64()?;
            let updates = r.u64()?;
            let n_spans = r.u32()? as usize;
            let mut spans = Vec::with_capacity(n_spans.min(1 << 16));
            for _ in 0..n_spans {
                let (lo, hi, count) = (r.f64()?, r.f64()?, r.f64()?);
                if !(lo.is_finite() && hi.is_finite() && count.is_finite())
                    || hi < lo
                    || count < 0.0
                {
                    return Err(format!("invalid span [{lo}, {hi}] x {count}"));
                }
                spans.push(BucketSpan::new(lo, hi, count));
            }
            columns.push(CheckpointColumn {
                column,
                config,
                accepted,
                updates,
                spans,
            });
        }
        r.finish()?;
        Ok(Checkpoint { epoch, columns })
    }
}

/// Writes `ckpt-{epoch}.ck` atomically (temp file, fsync, rename, fsync
/// dir), then prunes all but the two newest checkpoint files — the
/// newest is the recovery base, the second-newest the fallback if the
/// newest turns out damaged.
pub fn write_checkpoint(dir: &Path, kind: u8, ckpt: &Checkpoint) -> Result<PathBuf, WalError> {
    let payload = ckpt.encode_payload();
    let mut buf = Vec::with_capacity(payload.len() + 17);
    buf.extend_from_slice(CKPT_MAGIC);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&record::crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);

    let path = dir.join(checkpoint_name(ckpt.epoch));
    let tmp = dir.join(format!("{}.tmp", checkpoint_name(ckpt.epoch)));
    {
        let mut file = File::create(&tmp).map_err(|e| WalError::io(&tmp, "create", e))?;
        file.write_all(&buf)
            .map_err(|e| WalError::io(&tmp, "write", e))?;
        file.sync_data()
            .map_err(|e| WalError::io(&tmp, "fsync", e))?;
    }
    fs::rename(&tmp, &path).map_err(|e| WalError::io(&path, "rename", e))?;
    fsync_dir(dir)?;

    // Prune: keep the two newest checkpoints.
    let mut epochs = list_checkpoints(dir)?;
    while epochs.len() > 2 {
        let (_, old) = epochs.remove(0);
        fs::remove_file(&old).map_err(|e| WalError::io(&old, "remove", e))?;
    }
    Ok(path)
}

/// Epochs of every on-disk checkpoint, oldest first. The oldest entry
/// is the retention floor for segment pruning: segments must survive
/// back to it so that falling back from a damaged newer checkpoint
/// still finds a contiguous log tail.
pub fn checkpoint_epochs(dir: &Path) -> Result<Vec<u64>, WalError> {
    Ok(list_checkpoints(dir)?.into_iter().map(|(e, _)| e).collect())
}

fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut found = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| WalError::io(dir, "read dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| WalError::io(dir, "read dir", e))?;
        if let Some(epoch) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            found.push((epoch, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Loads the newest checkpoint that validates, newest-first. A damaged
/// checkpoint file (torn rename, bit rot) is skipped in favour of an
/// older one — callers must retain WAL segments back to the *oldest*
/// on-disk checkpoint (see [`checkpoint_epochs`]) so the fallback still
/// has a contiguous log tail to replay. A store-kind mismatch is a real
/// error, not a fallback.
pub fn latest_checkpoint(dir: &Path, kind: u8) -> Result<Option<Checkpoint>, WalError> {
    let mut candidates = list_checkpoints(dir)?;
    while let Some((_, path)) = candidates.pop() {
        let mut buf = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| WalError::io(&path, "read", e))?;
        match check_header(&path, &buf, CKPT_MAGIC, kind) {
            Ok(()) => {}
            Err(WalError::StoreKindMismatch {
                path,
                expected,
                found,
            }) => {
                return Err(WalError::StoreKindMismatch {
                    path,
                    expected,
                    found,
                })
            }
            Err(_) => continue, // damaged header: fall back
        }
        let body = &buf[HEADER_LEN as usize..];
        if body.len() < 8 {
            continue;
        }
        let len = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
        if len > record::MAX_RECORD_LEN as usize || body.len() - 8 != len {
            continue;
        }
        let payload = &body[8..];
        if record::crc32(payload) != crc {
            continue;
        }
        match Checkpoint::decode_payload(payload) {
            Ok(ckpt) => return Ok(Some(ckpt)),
            Err(_) => continue,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmp::TempDir;
    use dh_core::UpdateOp;

    const KIND: u8 = 7;

    fn commit(epoch: u64) -> WalRecord {
        WalRecord::Commit {
            epoch,
            columns: vec![("c".into(), vec![UpdateOp::Insert(epoch as i64)])],
        }
    }

    #[test]
    fn append_reopen_round_trips_in_order() {
        let dir = TempDir::new("seg-roundtrip");
        let records: Vec<WalRecord> = (1..=10).map(commit).collect();
        {
            let (mut wal, recovered) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
            assert!(recovered.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let (_, recovered) = Wal::open(dir.path(), KIND, SyncPolicy::default()).unwrap();
        assert_eq!(recovered, records);
    }

    #[test]
    fn rotation_spreads_records_and_remove_covered_prunes() {
        let dir = TempDir::new("seg-rotate");
        {
            let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
            for e in 1..=4 {
                wal.append(&commit(e)).unwrap();
            }
            wal.rotate(5).unwrap();
            for e in 5..=8 {
                wal.append(&commit(e)).unwrap();
            }
            wal.rotate(9).unwrap();
            wal.append(&commit(9)).unwrap();
            assert_eq!(wal.segment_count(), 3);

            // A checkpoint at epoch 4 covers only the first segment.
            assert_eq!(wal.remove_covered(4).unwrap(), 1);
            assert_eq!(wal.segment_count(), 2);
            // At epoch 8 the second goes too; the active one stays.
            assert_eq!(wal.remove_covered(8).unwrap(), 1);
            assert_eq!(wal.segment_count(), 1);
            wal.sync().unwrap();
        }
        let (_, recovered) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        assert_eq!(recovered, vec![commit(9)]);
    }

    #[test]
    fn torn_tail_in_last_segment_truncates() {
        let dir = TempDir::new("seg-torn");
        {
            let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
            for e in 1..=3 {
                wal.append(&commit(e)).unwrap();
            }
        }
        let path = dir.path().join(segment_name(0));
        let len = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (mut wal, recovered) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
        assert_eq!(recovered, vec![commit(1), commit(2)]);
        // The truncated log accepts new appends cleanly.
        wal.append(&commit(3)).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
        assert_eq!(recovered, vec![commit(1), commit(2), commit(3)]);
    }

    #[test]
    fn mid_file_damage_in_last_segment_is_typed_corruption() {
        let dir = TempDir::new("seg-midrot");
        {
            let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
            for e in 1..=3 {
                wal.append(&commit(e)).unwrap();
            }
        }
        // Flip a payload byte inside the *first* record: the later
        // records still decode, so this is bit rot, not a torn tail —
        // truncating would silently drop commits 2 and 3.
        let path = dir.path().join(segment_name(0));
        let mut buf = fs::read(&path).unwrap();
        let at = HEADER_LEN as usize + 8 + 1;
        buf[at] ^= 0x40;
        fs::write(&path, &buf).unwrap();

        match Wal::open(dir.path(), KIND, SyncPolicy::PerCommit) {
            Err(WalError::Corrupt { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // And nothing was truncated while deciding.
        assert_eq!(fs::read(&path).unwrap(), buf);
    }

    #[test]
    fn damage_in_sealed_segment_is_typed_corruption() {
        let dir = TempDir::new("seg-sealed");
        {
            let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
            for e in 1..=3 {
                wal.append(&commit(e)).unwrap();
            }
            wal.rotate(4).unwrap();
            wal.append(&commit(4)).unwrap();
        }
        let sealed = dir.path().join(segment_name(0));
        let len = fs::metadata(&sealed).unwrap().len();
        let file = OpenOptions::new().write(true).open(&sealed).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        match Wal::open(dir.path(), KIND, SyncPolicy::PerCommit) {
            Err(WalError::Corrupt { path, .. }) => assert_eq!(path, sealed),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let dir = TempDir::new("seg-kind");
        {
            let (_wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        }
        match Wal::open(dir.path(), KIND + 1, SyncPolicy::Off) {
            Err(WalError::StoreKindMismatch {
                expected, found, ..
            }) => {
                assert_eq!((expected, found), (KIND + 1, KIND));
            }
            other => panic!("expected StoreKindMismatch, got {other:?}"),
        }
    }

    #[test]
    fn headerless_trailing_segment_is_dropped() {
        let dir = TempDir::new("seg-headerless");
        {
            let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
            wal.append(&commit(1)).unwrap();
        }
        // Simulate a crash mid-rotation: a next segment with a partial
        // header.
        fs::write(dir.path().join(segment_name(2)), b"DHW").unwrap();
        let (wal, recovered) = Wal::open(dir.path(), KIND, SyncPolicy::PerCommit).unwrap();
        assert_eq!(recovered, vec![commit(1)]);
        assert_eq!(wal.segment_count(), 1);
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            epoch: 128,
            columns: vec![CheckpointColumn {
                column: "c".into(),
                config: ConfigRecord {
                    spec: "DC".into(),
                    memory_bytes: 1024,
                    seed: 3,
                    plan: None,
                    reshard: None,
                    autoscale: None,
                    rebuilt: Some(crate::record::ShapeRecord {
                        shards: 8,
                        spec: "DADO".into(),
                        memory_bytes: 1024,
                        channel: false,
                    }),
                    rebuild_seq: 2,
                },
                accepted: 128,
                updates: 4096,
                spans: vec![
                    BucketSpan::new(0.0, 10.0, 40.0),
                    BucketSpan::new(10.0, 20.0, 2.5),
                ],
            }],
        }
    }

    #[test]
    fn checkpoint_round_trips_and_prunes_to_two() {
        let dir = TempDir::new("ckpt-roundtrip");
        assert_eq!(latest_checkpoint(dir.path(), KIND).unwrap(), None);
        for epoch in [64, 128, 192] {
            let mut ckpt = sample_checkpoint();
            ckpt.epoch = epoch;
            write_checkpoint(dir.path(), KIND, &ckpt).unwrap();
        }
        let loaded = latest_checkpoint(dir.path(), KIND).unwrap().unwrap();
        assert_eq!(loaded.epoch, 192);
        assert_eq!(loaded.columns, sample_checkpoint().columns);
        assert_eq!(list_checkpoints(dir.path()).unwrap().len(), 2);
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_previous() {
        let dir = TempDir::new("ckpt-fallback");
        for epoch in [64, 128] {
            let mut ckpt = sample_checkpoint();
            ckpt.epoch = epoch;
            write_checkpoint(dir.path(), KIND, &ckpt).unwrap();
        }
        // Flip a byte deep inside the newest checkpoint's payload.
        let newest = dir.path().join(checkpoint_name(128));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let loaded = latest_checkpoint(dir.path(), KIND).unwrap().unwrap();
        assert_eq!(loaded.epoch, 64);
    }

    #[test]
    fn checkpoint_kind_mismatch_is_rejected() {
        let dir = TempDir::new("ckpt-kind");
        write_checkpoint(dir.path(), KIND, &sample_checkpoint()).unwrap();
        match latest_checkpoint(dir.path(), KIND + 1) {
            Err(WalError::StoreKindMismatch { .. }) => {}
            other => panic!("expected StoreKindMismatch, got {other:?}"),
        }
    }
}
