//! Read-only tailing of a live changelog directory.
//!
//! [`TailReader`] is the follower-side counterpart of
//! [`Wal::open`](crate::segment::Wal::open): it scans the same segment
//! files, but it does **not own** the directory — the leader (or a
//! file-copying replication stream) is still appending, rotating and
//! pruning under its feet. That changes every damage-handling decision
//! the owning scan makes:
//!
//! * A torn or incomplete frame at the tail is not a crash to repair —
//!   it is an append (or a file copy) that has not finished yet. The
//!   reader parks the cursor *before* the damage and re-polls; it never
//!   truncates.
//! * A segment shorter than its 9-byte header is a rotation (or copy)
//!   caught mid-creation, not debris to delete. The reader treats it as
//!   pending and retries; it never removes files.
//! * The cursor's segment vanishing means the leader's checkpoint
//!   pruning overtook the reader. That is reported as
//!   [`TailStatus::Lost`] so the caller can fall back to a checkpoint
//!   restore and re-[`seek`](TailReader::seek) — the reader itself
//!   cannot decide where to resume.
//! * A sealed-looking segment is only left behind once its decoded
//!   records actually reach the next segment's start epoch. A copy
//!   truncated exactly at a frame boundary looks clean but is not
//!   complete; advancing past it would silently skip the missing
//!   epochs (unrecoverably, if the next segment is still empty), so
//!   the reader parks there until the copy catches up.
//!
//! What stays as strict as the owning scan: a checksum-valid record
//! that does not decode is [`WalError::Corrupt`], and a header with the
//! wrong magic or store-kind tag is a typed error — a replica must
//! never replay a directory that is not the leader's changelog.
//!
//! The full state machine, and the fault matrix the chaos suite drives
//! through it, are documented in `docs/REPLICATION.md`.

use std::fs::{self, File};
use std::io::Read as _;
use std::path::{Path, PathBuf};

use crate::record::{self, Frame, WalRecord};
use crate::segment::{parse_checkpoint_name, parse_segment_name, HEADER_LEN, SEG_MAGIC};
use crate::WalError;

/// Where the reader stands: a segment (by start epoch) and an absolute
/// byte offset of the next unread frame inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cursor {
    start: u64,
    offset: u64,
}

/// What one [`TailReader::poll`] observed beyond the decoded records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte currently visible and decodable has been consumed;
    /// the cursor is parked at the first byte that has not been written
    /// (or copied) yet. Poll again later.
    CaughtUp,
    /// The segment the cursor was parked in no longer exists: the
    /// leader's checkpoint pruning ran past the reader. The caller must
    /// restore from a checkpoint and [`TailReader::seek`] to its epoch;
    /// polling again without seeking keeps returning `Lost`.
    Lost,
}

/// One poll's harvest: the records decoded this round (in append
/// order — which is epoch order) and the tail condition met.
#[derive(Debug)]
pub struct TailPoll {
    /// Newly visible records, in append order.
    pub records: Vec<WalRecord>,
    /// Why the poll stopped.
    pub status: TailStatus,
}

/// An incremental, strictly read-only scanner over a changelog
/// directory that something else is writing. See the [module
/// docs](self) for the contract.
#[derive(Debug)]
pub struct TailReader {
    dir: PathBuf,
    kind: u8,
    cursor: Option<Cursor>,
    /// Pending [`seek`](TailReader::seek) target: the next poll
    /// positions the cursor at the newest segment that can contain
    /// epoch `resume + 1`.
    resume: Option<u64>,
    /// The highest epoch proven *behind* the cursor: the caller's
    /// replayed epoch at the last seek, raised by every commit epoch
    /// and re-shard barrier decoded since. Gates segment advancement —
    /// the continuity proof that the current segment is really
    /// exhausted, not just truncated at a frame boundary.
    seen: u64,
    hint: u64,
}

/// How one segment's readable suffix ended.
enum SegmentEnd {
    /// Every visible byte decoded; the cursor sits at end-of-file.
    Clean,
    /// The tail ends mid-frame, the file is shorter than the header or
    /// the cursor (a copy in progress), or the file is momentarily
    /// absent: wait and re-poll.
    Pending,
}

impl TailReader {
    /// A reader over `dir`, expecting segments stamped with store-kind
    /// tag `kind`. The directory may not exist yet — polls simply
    /// report an empty [`TailStatus::CaughtUp`] until it does.
    pub fn new(dir: impl Into<PathBuf>, kind: u8) -> TailReader {
        TailReader {
            dir: dir.into(),
            kind,
            cursor: None,
            resume: None,
            seen: 0,
            hint: 0,
        }
    }

    /// Repositions the reader after a checkpoint restore at `epoch`:
    /// the next [`poll`](TailReader::poll) starts at the newest segment
    /// whose records can still include epoch `epoch + 1` (segments are
    /// named by the first epoch they may contain), re-reading it from
    /// the top. Re-read records overlap state the caller already has;
    /// replay must skip them idempotently.
    pub fn seek(&mut self, epoch: u64) {
        self.cursor = None;
        self.resume = Some(epoch);
        self.seen = epoch;
    }

    /// A lower bound on the leader's published epoch, learned from
    /// everything this reader has seen on disk: commit epochs and
    /// re-shard barriers decoded so far, segment names (a segment
    /// starting at `S` proves epoch `S - 1` was published), and
    /// checkpoint names. Monotone; `0` before the first poll.
    pub fn epoch_hint(&self) -> u64 {
        self.hint
    }

    /// Reads everything new since the last poll. Errors are permanent
    /// (corruption, a foreign directory); transient racy shapes — torn
    /// tails, half-copied files, headerless rotations — all land in
    /// [`TailStatus::CaughtUp`] with the cursor parked for a retry.
    pub fn poll(&mut self) -> Result<TailPoll, WalError> {
        let mut records = Vec::new();
        let segments = self.list_segments()?;
        for &(start, _) in &segments {
            self.hint = self.hint.max(start.saturating_sub(1));
        }
        if segments.is_empty() {
            return Ok(TailPoll {
                records,
                status: TailStatus::CaughtUp,
            });
        }

        let mut idx = match self.cursor {
            Some(Cursor { start, .. }) => {
                match segments.iter().position(|&(s, _)| s == start) {
                    Some(i) => i,
                    None => {
                        // Pruned under us; the caller must restore and seek.
                        return Ok(TailPoll {
                            records,
                            status: TailStatus::Lost,
                        });
                    }
                }
            }
            None => {
                let i = match self.resume.take() {
                    Some(epoch) => segments
                        .iter()
                        .rposition(|&(s, _)| s <= epoch.saturating_add(1))
                        .unwrap_or(0),
                    None => 0,
                };
                self.cursor = Some(Cursor {
                    start: segments[i].0,
                    offset: HEADER_LEN,
                });
                i
            }
        };

        loop {
            let is_last = idx + 1 == segments.len();
            let (_, path) = &segments[idx];
            let cursor = self.cursor.as_mut().expect("positioned above");
            let before = records.len();
            let end = read_segment_tail(path, self.kind, &mut cursor.offset, &mut records)?;
            for record in &records[before..] {
                match record {
                    WalRecord::Commit { epoch, .. } => self.seen = self.seen.max(*epoch),
                    WalRecord::Reshard { barrier, .. } => self.seen = self.seen.max(*barrier),
                    WalRecord::Rebuild { barrier, .. } => self.seen = self.seen.max(*barrier),
                    WalRecord::Register { .. } => {}
                }
            }
            match end {
                SegmentEnd::Pending => break,
                SegmentEnd::Clean if is_last => break,
                SegmentEnd::Clean => {
                    // Continuity proof before leaving a sealed segment
                    // behind: its records must reach the next segment's
                    // start epoch. A copy truncated at a frame boundary
                    // decodes cleanly but stops short — advancing would
                    // skip the missing epochs for good, so park here
                    // until the rest of the segment arrives.
                    if self.seen.saturating_add(1) < segments[idx + 1].0 {
                        break;
                    }
                    idx += 1;
                    *cursor = Cursor {
                        start: segments[idx].0,
                        offset: HEADER_LEN,
                    };
                }
            }
        }

        for record in &records {
            match record {
                WalRecord::Commit { epoch, .. } => self.hint = self.hint.max(*epoch),
                WalRecord::Reshard { barrier, .. } => self.hint = self.hint.max(*barrier),
                WalRecord::Rebuild { barrier, .. } => self.hint = self.hint.max(*barrier),
                WalRecord::Register { .. } => {}
            }
        }
        Ok(TailPoll {
            records,
            status: TailStatus::CaughtUp,
        })
    }

    /// Segment files currently in the directory, sorted by start epoch.
    /// A missing directory is an empty listing, not an error — the
    /// leader (or the copy stream) may not have created it yet. Also
    /// harvests checkpoint names into the epoch hint.
    fn list_segments(&mut self) -> Result<Vec<(u64, PathBuf)>, WalError> {
        let mut segments = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segments),
            Err(e) => return Err(WalError::io(&self.dir, "read dir", e)),
        };
        for entry in entries {
            let entry = entry.map_err(|e| WalError::io(&self.dir, "read dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(start) = parse_segment_name(name) {
                segments.push((start, entry.path()));
            } else if let Some(epoch) = parse_checkpoint_name(name) {
                self.hint = self.hint.max(epoch);
            }
        }
        segments.sort();
        Ok(segments)
    }
}

/// Decodes one segment's frames from `*offset` forward, advancing the
/// offset past every whole record consumed. Never writes to the file.
fn read_segment_tail(
    path: &Path,
    kind: u8,
    offset: &mut u64,
    records: &mut Vec<WalRecord>,
) -> Result<SegmentEnd, WalError> {
    let mut buf = Vec::new();
    let read = File::open(path).and_then(|mut f| f.read_to_end(&mut buf));
    match read {
        Ok(_) => {}
        // Vanished between the directory listing and the open: the next
        // poll's listing will classify it (pruned -> Lost).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(SegmentEnd::Pending),
        Err(e) => return Err(WalError::io(path, "read", e)),
    }
    if (buf.len() as u64) < HEADER_LEN {
        // Rotation (or copy) caught between create and header write.
        // The owning scan may delete this; a reader that does not own
        // the file retries instead.
        return Ok(SegmentEnd::Pending);
    }
    crate::segment::check_header(path, &buf, SEG_MAGIC, kind)?;
    if (buf.len() as u64) < *offset {
        // Shorter than what we already consumed: a copy stream is
        // rewriting the file and has not caught back up yet.
        return Ok(SegmentEnd::Pending);
    }
    let mut at = *offset as usize;
    loop {
        match record::read_frame(&buf, at) {
            Frame::Done => {
                *offset = at as u64;
                return Ok(SegmentEnd::Clean);
            }
            Frame::Record { record, next } => {
                records.push(record);
                at = next;
                *offset = next as u64;
            }
            // Mid-append or mid-copy; even in a sealed segment a copied
            // stream can present a torn tail that later heals, so a
            // reader never escalates this to corruption.
            Frame::Torn => return Ok(SegmentEnd::Pending),
            Frame::Invalid { why } => {
                return Err(WalError::Corrupt {
                    path: path.to_path_buf(),
                    offset: at as u64,
                    why,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{segment_name, Wal};
    use crate::tmp::TempDir;
    use crate::SyncPolicy;
    use dh_core::UpdateOp;
    use std::fs;

    const KIND: u8 = 7;

    fn commit(epoch: u64) -> WalRecord {
        WalRecord::Commit {
            epoch,
            columns: vec![("c".into(), vec![UpdateOp::Insert(epoch as i64)])],
        }
    }

    #[test]
    fn follows_live_appends_across_polls() {
        let dir = TempDir::new("tail-live");
        let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        let mut tail = TailReader::new(dir.path(), KIND);

        for e in 1..=3 {
            wal.append(&commit(e)).unwrap();
        }
        let out = tail.poll().unwrap();
        assert_eq!(out.status, TailStatus::CaughtUp);
        assert_eq!(out.records, (1..=3).map(commit).collect::<Vec<_>>());
        assert_eq!(tail.epoch_hint(), 3);

        // Nothing new: empty harvest, same position.
        assert!(tail.poll().unwrap().records.is_empty());

        for e in 4..=5 {
            wal.append(&commit(e)).unwrap();
        }
        let out = tail.poll().unwrap();
        assert_eq!(out.records, (4..=5).map(commit).collect::<Vec<_>>());
        assert_eq!(tail.epoch_hint(), 5);
    }

    #[test]
    fn missing_directory_is_pending_not_an_error() {
        let dir = TempDir::new("tail-missing");
        let missing = dir.path().join("not-created-yet");
        let mut tail = TailReader::new(&missing, KIND);
        let out = tail.poll().unwrap();
        assert_eq!(out.status, TailStatus::CaughtUp);
        assert!(out.records.is_empty());
    }

    /// The satellite gap this PR fixes: the *owning* scan treats a
    /// headerless last segment as removable debris; a follower racing
    /// the leader's `rotate()` (create happened, header write has not)
    /// must retry — not delete, not error — and pick the segment up
    /// once its header and records land.
    #[test]
    fn headerless_rotation_race_retries_without_deleting() {
        let dir = TempDir::new("tail-headerless");
        let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        wal.append(&commit(1)).unwrap();
        wal.sync().unwrap();

        // The race window: the next segment exists but holds only a
        // partial header.
        let racing = dir.path().join(segment_name(2));
        fs::write(&racing, b"DHW").unwrap();

        let mut tail = TailReader::new(dir.path(), KIND);
        let out = tail.poll().unwrap();
        assert_eq!(out.status, TailStatus::CaughtUp);
        assert_eq!(out.records, vec![commit(1)]);
        assert!(
            racing.exists(),
            "a reader must not delete the leader's file"
        );

        // Still pending on a re-poll; still not deleted.
        assert!(tail.poll().unwrap().records.is_empty());
        assert!(racing.exists());

        // The leader finishes the rotation; the reader picks it up.
        let mut seg = SEG_MAGIC.to_vec();
        seg.push(KIND);
        seg.extend_from_slice(&commit(2).encode_frame());
        fs::write(&racing, seg).unwrap();
        let out = tail.poll().unwrap();
        assert_eq!(out.records, vec![commit(2)]);
    }

    #[test]
    fn torn_tail_is_pending_and_heals_in_place() {
        let dir = TempDir::new("tail-torn");
        let full = TempDir::new("tail-torn-ref");
        let (mut wal, _) = Wal::open(full.path(), KIND, SyncPolicy::Off).unwrap();
        for e in 1..=3 {
            wal.append(&commit(e)).unwrap();
        }
        wal.sync().unwrap();
        let bytes = fs::read(full.path().join(segment_name(0))).unwrap();

        // A copy stream delivered all but the last 3 bytes.
        let seg = dir.path().join(segment_name(0));
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let mut tail = TailReader::new(dir.path(), KIND);
        let out = tail.poll().unwrap();
        assert_eq!(out.status, TailStatus::CaughtUp);
        assert_eq!(out.records, vec![commit(1), commit(2)]);

        // The copy completes; only the healed record is new.
        fs::write(&seg, &bytes).unwrap();
        let out = tail.poll().unwrap();
        assert_eq!(out.records, vec![commit(3)]);
    }

    /// A copy truncated exactly at a frame boundary decodes cleanly but
    /// is not complete. If the rotated successor segment is already
    /// visible (and still empty), advancing past the truncated one
    /// would skip the missing epochs forever while reporting
    /// `CaughtUp` — the reader must park until the copy catches up.
    #[test]
    fn frame_boundary_truncation_does_not_skip_a_sealed_segment() {
        let dir = TempDir::new("tail-boundary");
        let full = TempDir::new("tail-boundary-ref");
        let (mut wal, _) = Wal::open(full.path(), KIND, SyncPolicy::Off).unwrap();
        for e in 1..=3 {
            wal.append(&commit(e)).unwrap();
        }
        wal.sync().unwrap();
        let bytes = fs::read(full.path().join(segment_name(0))).unwrap();

        // The copy stream delivered wal-0 cut at the frame boundary
        // after commit 2, and the leader's rotated, still-empty
        // successor wal-4 in full.
        let boundary =
            HEADER_LEN as usize + commit(1).encode_frame().len() + commit(2).encode_frame().len();
        fs::write(dir.path().join(segment_name(0)), &bytes[..boundary]).unwrap();
        let mut rotated = SEG_MAGIC.to_vec();
        rotated.push(KIND);
        fs::write(dir.path().join(segment_name(4)), &rotated).unwrap();

        let mut tail = TailReader::new(dir.path(), KIND);
        let out = tail.poll().unwrap();
        assert_eq!(out.status, TailStatus::CaughtUp);
        assert_eq!(out.records, vec![commit(1), commit(2)]);

        // Commit 3 is still in flight; polls stay parked in wal-0
        // instead of advancing to wal-4 and declaring the log consumed.
        assert!(tail.poll().unwrap().records.is_empty());

        // The copy catches up; the reader resumes in place and only
        // then crosses into the successor.
        fs::write(dir.path().join(segment_name(0)), &bytes).unwrap();
        let out = tail.poll().unwrap();
        assert_eq!(out.records, vec![commit(3)]);
    }

    #[test]
    fn sealed_segments_advance_and_pruning_reports_lost() {
        let dir = TempDir::new("tail-prune");
        let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        for e in 1..=4 {
            wal.append(&commit(e)).unwrap();
        }
        wal.sync().unwrap();

        // Park the reader's cursor in the first segment.
        let mut tail = TailReader::new(dir.path(), KIND);
        assert_eq!(tail.poll().unwrap().records.len(), 4);

        // The leader rotates twice and prunes both sealed segments.
        wal.rotate(5).unwrap();
        for e in 5..=8 {
            wal.append(&commit(e)).unwrap();
        }
        wal.rotate(9).unwrap();
        wal.append(&commit(9)).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.remove_covered(8).unwrap(), 2);

        let out = tail.poll().unwrap();
        assert_eq!(out.status, TailStatus::Lost);
        assert!(out.records.is_empty());
        // Lost persists until the caller seeks.
        assert_eq!(tail.poll().unwrap().status, TailStatus::Lost);

        // After a (simulated) checkpoint restore at epoch 8: resume.
        tail.seek(8);
        let out = tail.poll().unwrap();
        assert_eq!(out.status, TailStatus::CaughtUp);
        assert_eq!(out.records, vec![commit(9)]);
        // Segment names floor the hint even before their records are
        // read: wal-9 existing proves epoch 8 was published.
        assert!(tail.epoch_hint() >= 9);
    }

    #[test]
    fn seek_positions_at_the_newest_covering_segment() {
        let dir = TempDir::new("tail-seek");
        let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        for e in 1..=4 {
            wal.append(&commit(e)).unwrap();
        }
        wal.rotate(5).unwrap();
        for e in 5..=8 {
            wal.append(&commit(e)).unwrap();
        }
        wal.sync().unwrap();

        // Restore base epoch 4: epoch 5 lives in wal-5, so the reader
        // must start there, not at wal-0.
        let mut tail = TailReader::new(dir.path(), KIND);
        tail.seek(4);
        let out = tail.poll().unwrap();
        assert_eq!(out.records, (5..=8).map(commit).collect::<Vec<_>>());

        // Restore base epoch 2: only wal-0 can hold epoch 3. The
        // re-read overlaps epochs the restore already covers — the
        // caller's replay skips those.
        let mut tail = TailReader::new(dir.path(), KIND);
        tail.seek(2);
        let out = tail.poll().unwrap();
        assert_eq!(out.records, (1..=8).map(commit).collect::<Vec<_>>());
    }

    #[test]
    fn foreign_directory_is_a_typed_error() {
        let dir = TempDir::new("tail-kind");
        let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        wal.append(&commit(1)).unwrap();
        wal.sync().unwrap();

        let mut tail = TailReader::new(dir.path(), KIND + 1);
        match tail.poll() {
            Err(WalError::StoreKindMismatch {
                expected, found, ..
            }) => assert_eq!((expected, found), (KIND + 1, KIND)),
            other => panic!("expected StoreKindMismatch, got {other:?}"),
        }
    }

    #[test]
    fn undecodable_record_is_corruption_not_a_retry() {
        let dir = TempDir::new("tail-invalid");
        let (mut wal, _) = Wal::open(dir.path(), KIND, SyncPolicy::Off).unwrap();
        wal.append(&commit(1)).unwrap();
        wal.sync().unwrap();

        // A checksum-valid frame whose payload kind is garbage.
        let seg = dir.path().join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let payload = [0xEEu8; 4];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&record::crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        fs::write(&seg, &bytes).unwrap();

        let mut tail = TailReader::new(dir.path(), KIND);
        match tail.poll() {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
