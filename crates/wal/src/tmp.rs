//! Per-test scratch directories for disk-touching tests and benches.
//!
//! Every disk-touching test in the workspace goes through [`TempDir`]
//! so `cargo test -q` stays parallel-safe (unique names: label + pid +
//! process-wide counter) and leaves no artifacts (removed on drop). The
//! directories live under the OS temp root, never inside the repo, so
//! nothing needs `.gitignore` coverage even if a panicking test leaks
//! one.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, process};

/// A uniquely-named scratch directory, created on construction and
/// recursively removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/dh-wal-{label}-{pid}-{seq}`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — test scaffolding,
    /// not production surface.
    pub fn new(label: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = env::temp_dir().join(format!("dh-wal-{label}-{pid}-{seq}", pid = process::id()));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_created_and_removed_on_drop() {
        let a = TempDir::new("unit");
        let b = TempDir::new("unit");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
