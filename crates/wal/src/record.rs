//! The changelog record model and its binary codec.
//!
//! One [`WalRecord`] per catalog mutation, framed on disk as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = [kind: u8] [kind-specific body]
//! ```
//!
//! All integers are little-endian; strings are a `u32` byte length
//! followed by UTF-8 bytes; floats travel as their IEEE-754 bit
//! patterns (`f64::to_bits`), so a round trip is bit-exact — including
//! NaN payloads and signed zeros. There is no varint or delta coding:
//! the format optimizes for auditability over density (a full
//! paper-scale replay logs a few hundred kilobytes).
//!
//! The checksum is CRC-32 (IEEE, reflected) over the payload only; the
//! length prefix is implicitly validated by the checksum window. How a
//! failed frame is classified (torn tail vs corruption) is the segment
//! layer's decision — this module just reports what it saw.

use dh_core::UpdateOp;

/// Cap on a single record's payload, guarding the decoder against
/// allocating on a corrupt length prefix. Far above any real record
/// (the largest commits in the workspace are a few megabytes).
pub const MAX_RECORD_LEN: u32 = 256 << 20;

/// One durable catalog mutation, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A column registration (publishes no epoch; ordered between the
    /// commits it appeared between).
    Register {
        /// The registered column name.
        column: String,
        /// The registration config, flattened to primitives.
        config: ConfigRecord,
    },
    /// One published `WriteBatch`: the ops of every column it touched.
    Commit {
        /// The epoch the batch published as. Strictly contiguous within
        /// one log: each commit record's epoch is its predecessor's + 1.
        epoch: u64,
        /// Per-column op runs, sorted by column name (the `WriteBatch`
        /// iteration order).
        columns: Vec<(String, Vec<UpdateOp>)>,
    },
    /// A completed re-shard that moved a column's borders. Replayed by
    /// re-running the (deterministic) border rebuild at the same point
    /// in the epoch sequence. **Legacy**: decoded from pre-elastic logs
    /// only — a current leader logs every shape change, border
    /// rebalances included, as a [`WalRecord::Rebuild`], whose `seq`
    /// makes same-barrier changes distinguishable on replay.
    Reshard {
        /// The re-sharded column.
        column: String,
        /// The epoch barrier the rebuild drained to — always the epoch
        /// of the immediately preceding commit record.
        barrier: u64,
    },
    /// A completed *rebuild* that changed a column's borders or shape —
    /// shard count, algorithm, memory budget, or ingestion mode —
    /// behind the same epoch barrier a re-shard uses. The shape-carrying
    /// successor of the legacy [`WalRecord::Reshard`]: a rebuild's
    /// target is not derivable at replay time, so the record carries
    /// the plan deltas. `None` fields keep the column's value current
    /// at the barrier, exactly as the live call resolved them (a pure
    /// border rebalance carries all-`None` deltas).
    Rebuild {
        /// The rebuilt column.
        column: String,
        /// The epoch barrier the rebuild drained to — always the epoch
        /// of the immediately preceding commit record.
        barrier: u64,
        /// The column's shape-change ordinal: `1` for the column's
        /// first logged rebuild, strictly increasing thereafter across
        /// the column's whole lifetime (checkpoints persist it, see
        /// [`ConfigRecord::rebuild_seq`]). Rebuilds publish no epoch,
        /// so back-to-back rebuilds share one barrier — the ordinal is
        /// what lets a replica tell a gap-rewind *re-read* of an
        /// applied record (`seq` not above its tracked ordinal) from a
        /// *distinct* second rebuild at the same barrier.
        seq: u64,
        /// Target shard count (`None` keeps the live count).
        shards: Option<u64>,
        /// Target algorithm legend label (`None` keeps the live one).
        spec: Option<String>,
        /// Target memory budget in bytes (`None` keeps the live one).
        memory_bytes: Option<u64>,
        /// Target ingestion mode (`None` keeps the live one; `true`
        /// means channel workers, `false` locked).
        channel: Option<bool>,
    },
}

/// A `dh_catalog` `ColumnConfig` flattened to primitives this crate can
/// serialize without depending on the catalog (the dependency points the
/// other way). The algorithm travels as its paper legend label, which
/// round-trips through `AlgoSpec`'s `FromStr`/`Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigRecord {
    /// `AlgoSpec` legend label (e.g. `"DC"`, `"AC40X"`).
    pub spec: String,
    /// Memory budget in bytes.
    pub memory_bytes: u64,
    /// Sampling seed.
    pub seed: u64,
    /// Shard plan, if the column was registered with one.
    pub plan: Option<PlanRecord>,
    /// Re-shard policy, if the column armed one.
    pub reshard: Option<ReshardPolicyRecord>,
    /// Autoscale policy, if the column armed one.
    pub autoscale: Option<AutoscaleRecord>,
    /// The column's *live* shape after any rebuilds, when it differs
    /// from the registration shape. Only checkpoints set this (so a
    /// restore re-applies the shape without replaying pruned rebuild
    /// records); register records always carry `None`.
    pub rebuilt: Option<ShapeRecord>,
    /// The column's last logged shape-change ordinal
    /// ([`WalRecord::Rebuild`]'s `seq`); `0` = never rebuilt. Like
    /// `rebuilt`, only checkpoints carry a nonzero value: a restored
    /// leader resumes the ordinal past everything it ever logged (the
    /// records themselves may be pruned), so it can never re-issue a
    /// `seq` a replica has already applied — and a replica restoring
    /// through the checkpoint knows which ordinals it covers.
    pub rebuild_seq: u64,
}

/// A flattened `ShardPlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRecord {
    /// Inclusive domain lower bound.
    pub lo: i64,
    /// Inclusive domain upper bound.
    pub hi: i64,
    /// Shard count.
    pub shards: u64,
    /// Whether ingestion is channel (MPSC worker) mode.
    pub channel: bool,
}

/// A flattened `ReshardPolicy`. The skew threshold travels as raw bits,
/// so configs compare and round-trip bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardPolicyRecord {
    /// `skew_threshold` as IEEE-754 bits.
    pub skew_bits: u64,
    /// Minimum epochs between automatic attempts.
    pub min_interval_epochs: u64,
    /// Minimum routed ops before the skew ratio is judged.
    pub min_load: u64,
}

/// A flattened `AutoscalePolicy`. Like [`ReshardPolicyRecord`], the
/// float threshold travels as raw bits for bit-exact round trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscaleRecord {
    /// Lower bound on the shard count.
    pub min_shards: u64,
    /// Upper bound on the shard count.
    pub max_shards: u64,
    /// Routed ops per epoch above which the shard count grows.
    pub scale_up_rate: u64,
    /// Routed ops per epoch at or below which the shard count shrinks.
    pub scale_down_rate: u64,
    /// `skew_threshold` (border-rebalance gate) as IEEE-754 bits.
    pub skew_bits: u64,
    /// Minimum epochs between automatic decisions.
    pub min_interval_epochs: u64,
    /// Minimum routed ops before the skew ratio is judged.
    pub min_load: u64,
}

/// A column's live shape — the part of its config a rebuild can change.
/// Carried by checkpoints (inside [`ConfigRecord::rebuilt`]) so a
/// restore reproduces the shape even when the rebuild records that
/// produced it are pruned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeRecord {
    /// Live shard count.
    pub shards: u64,
    /// Live algorithm legend label.
    pub spec: String,
    /// Live memory budget in bytes.
    pub memory_bytes: u64,
    /// Live ingestion mode (`true` = channel workers).
    pub channel: bool,
}

const KIND_REGISTER: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_RESHARD: u8 = 3;
const KIND_REBUILD: u8 = 4;

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;

impl WalRecord {
    /// Serializes the record into its on-disk frame (length prefix,
    /// checksum, payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        match self {
            WalRecord::Register { column, config } => {
                payload.u8(KIND_REGISTER);
                payload.str_(column);
                config.encode(&mut payload);
            }
            WalRecord::Commit { epoch, columns } => {
                payload.u8(KIND_COMMIT);
                payload.u64(*epoch);
                payload.u32(columns.len() as u32);
                for (name, ops) in columns {
                    payload.str_(name);
                    payload.u32(ops.len() as u32);
                    for op in ops {
                        match op {
                            UpdateOp::Insert(v) => {
                                payload.u8(OP_INSERT);
                                payload.i64(*v);
                            }
                            UpdateOp::Delete(v) => {
                                payload.u8(OP_DELETE);
                                payload.i64(*v);
                            }
                        }
                    }
                }
            }
            WalRecord::Reshard { column, barrier } => {
                payload.u8(KIND_RESHARD);
                payload.str_(column);
                payload.u64(*barrier);
            }
            WalRecord::Rebuild {
                column,
                barrier,
                seq,
                shards,
                spec,
                memory_bytes,
                channel,
            } => {
                payload.u8(KIND_REBUILD);
                payload.str_(column);
                payload.u64(*barrier);
                payload.u64(*seq);
                let flags = u8::from(shards.is_some())
                    | (u8::from(spec.is_some()) << 1)
                    | (u8::from(memory_bytes.is_some()) << 2)
                    | (u8::from(channel.is_some()) << 3);
                payload.u8(flags);
                if let Some(shards) = shards {
                    payload.u64(*shards);
                }
                if let Some(spec) = spec {
                    payload.str_(spec);
                }
                if let Some(bytes) = memory_bytes {
                    payload.u64(*bytes);
                }
                if let Some(channel) = channel {
                    payload.u8(u8::from(*channel));
                }
            }
        }
        let payload = payload.buf;
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            KIND_REGISTER => WalRecord::Register {
                column: r.str_()?,
                config: ConfigRecord::decode(&mut r)?,
            },
            KIND_COMMIT => {
                let epoch = r.u64()?;
                let n = r.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = r.str_()?;
                    let n_ops = r.u32()? as usize;
                    let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
                    for _ in 0..n_ops {
                        let tag = r.u8()?;
                        let v = r.i64()?;
                        ops.push(match tag {
                            OP_INSERT => UpdateOp::Insert(v),
                            OP_DELETE => UpdateOp::Delete(v),
                            other => return Err(format!("unknown op tag {other}")),
                        });
                    }
                    columns.push((name, ops));
                }
                WalRecord::Commit { epoch, columns }
            }
            KIND_RESHARD => WalRecord::Reshard {
                column: r.str_()?,
                barrier: r.u64()?,
            },
            KIND_REBUILD => {
                let column = r.str_()?;
                let barrier = r.u64()?;
                let seq = r.u64()?;
                let flags = r.u8()?;
                if flags & !0b1111 != 0 {
                    return Err(format!("unknown rebuild flags {flags:#04x}"));
                }
                let shards = if flags & 1 != 0 { Some(r.u64()?) } else { None };
                let spec = if flags & 2 != 0 {
                    Some(r.str_()?)
                } else {
                    None
                };
                let memory_bytes = if flags & 4 != 0 { Some(r.u64()?) } else { None };
                let channel = if flags & 8 != 0 {
                    Some(r.u8()? != 0)
                } else {
                    None
                };
                WalRecord::Rebuild {
                    column,
                    barrier,
                    seq,
                    shards,
                    spec,
                    memory_bytes,
                    channel,
                }
            }
            other => return Err(format!("unknown record kind {other}")),
        };
        r.finish()?;
        Ok(record)
    }
}

impl ConfigRecord {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.str_(&self.spec);
        w.u64(self.memory_bytes);
        w.u64(self.seed);
        let flags = u8::from(self.plan.is_some())
            | (u8::from(self.reshard.is_some()) << 1)
            | (u8::from(self.autoscale.is_some()) << 2)
            | (u8::from(self.rebuilt.is_some()) << 3)
            | (u8::from(self.rebuild_seq != 0) << 4);
        w.u8(flags);
        if let Some(plan) = &self.plan {
            w.i64(plan.lo);
            w.i64(plan.hi);
            w.u64(plan.shards);
            w.u8(u8::from(plan.channel));
        }
        if let Some(policy) = &self.reshard {
            w.u64(policy.skew_bits);
            w.u64(policy.min_interval_epochs);
            w.u64(policy.min_load);
        }
        if let Some(auto) = &self.autoscale {
            w.u64(auto.min_shards);
            w.u64(auto.max_shards);
            w.u64(auto.scale_up_rate);
            w.u64(auto.scale_down_rate);
            w.u64(auto.skew_bits);
            w.u64(auto.min_interval_epochs);
            w.u64(auto.min_load);
        }
        if let Some(shape) = &self.rebuilt {
            w.u64(shape.shards);
            w.str_(&shape.spec);
            w.u64(shape.memory_bytes);
            w.u8(u8::from(shape.channel));
        }
        if self.rebuild_seq != 0 {
            w.u64(self.rebuild_seq);
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<ConfigRecord, String> {
        let spec = r.str_()?;
        let memory_bytes = r.u64()?;
        let seed = r.u64()?;
        let flags = r.u8()?;
        if flags & !0b1_1111 != 0 {
            return Err(format!("unknown config flags {flags:#04x}"));
        }
        let plan = if flags & 1 != 0 {
            Some(PlanRecord {
                lo: r.i64()?,
                hi: r.i64()?,
                shards: r.u64()?,
                channel: r.u8()? != 0,
            })
        } else {
            None
        };
        let reshard = if flags & 2 != 0 {
            Some(ReshardPolicyRecord {
                skew_bits: r.u64()?,
                min_interval_epochs: r.u64()?,
                min_load: r.u64()?,
            })
        } else {
            None
        };
        let autoscale = if flags & 4 != 0 {
            Some(AutoscaleRecord {
                min_shards: r.u64()?,
                max_shards: r.u64()?,
                scale_up_rate: r.u64()?,
                scale_down_rate: r.u64()?,
                skew_bits: r.u64()?,
                min_interval_epochs: r.u64()?,
                min_load: r.u64()?,
            })
        } else {
            None
        };
        let rebuilt = if flags & 8 != 0 {
            Some(ShapeRecord {
                shards: r.u64()?,
                spec: r.str_()?,
                memory_bytes: r.u64()?,
                channel: r.u8()? != 0,
            })
        } else {
            None
        };
        let rebuild_seq = if flags & 16 != 0 { r.u64()? } else { 0 };
        Ok(ConfigRecord {
            spec,
            memory_bytes,
            seed,
            plan,
            reshard,
            autoscale,
            rebuilt,
            rebuild_seq,
        })
    }
}

/// What one framing attempt against a byte buffer produced.
///
/// Public so transports outside the segment layer (the `dh_site` wire
/// protocol) can reuse the exact on-disk framing for messages in flight.
// `Record` dwarfs the other variants (a `ConfigRecord` with its
// optional policies is a few hundred bytes), but frames are decoded
// one at a time and consumed immediately — never collected — so the
// size gap costs nothing and boxing would tax every replay match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Frame {
    /// Clean end of buffer: `at == buf.len()`.
    Done,
    /// The buffer ends mid-frame, or the frame's checksum fails — the
    /// shape of a crash mid-append. The segment layer truncates here if
    /// this is the last segment, or reports corruption if not.
    Torn,
    /// A checksum-valid record.
    Record {
        /// The decoded record.
        record: WalRecord,
        /// Offset of the next frame.
        next: usize,
    },
    /// The checksum passed but the payload does not decode: genuine
    /// corruption (or a format version skew), never a torn write.
    Invalid {
        /// What failed to decode.
        why: String,
    },
}

/// Reads the frame starting at `at`.
pub fn read_frame(buf: &[u8], at: usize) -> Frame {
    if at == buf.len() {
        return Frame::Done;
    }
    if buf.len() - at < 8 {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD_LEN as usize || buf.len() - at - 8 < len {
        return Frame::Torn;
    }
    let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4 bytes"));
    let payload = &buf[at + 8..at + 8 + len];
    if crc32(payload) != crc {
        return Frame::Torn;
    }
    match WalRecord::decode_payload(payload) {
        Ok(record) => Frame::Record {
            record,
            next: at + 8 + len,
        },
        Err(why) => Frame::Invalid { why },
    }
}

/// Writes one `[len][crc32][payload]` frame — the exact on-disk record
/// framing — to a byte stream. The transport face of the codec: what
/// `encode_frame` produces for segments, this produces for sockets.
pub fn write_framed(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one `[len][crc32][payload]` frame from a byte stream, returning
/// the checksum-verified payload.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer
/// closed between messages). A mid-frame EOF surfaces as
/// `UnexpectedEof`; an oversized length prefix (> [`MAX_RECORD_LEN`]) or
/// a checksum mismatch surfaces as `InvalidData` — a stream, unlike a
/// segment tail, has no "torn but recoverable" state.
pub fn read_framed(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame header",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_RECORD_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_RECORD_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

/// Little-endian byte sink for record, checkpoint, and wire-message
/// bodies. Shared with the `dh_site` protocol so every serialized body
/// in the workspace speaks the same dialect.
#[derive(Default)]
pub struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip, NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a string as a `u32` byte length followed by UTF-8 bytes.
    pub fn str_(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Consumes the writer, yielding the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked little-endian reader; every getter fails loudly on underrun
/// so a decode error is always a `Result`, never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte buffer for checked sequential reads.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.at < n {
            return Err(format!(
                "payload underrun: wanted {n} bytes at {}, have {}",
                self.at,
                self.buf.len() - self.at
            ));
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }

    /// Asserts the payload was consumed exactly — trailing bytes mean a
    /// corrupt or version-skewed record.
    pub fn finish(&self) -> Result<(), String> {
        if self.at != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            ));
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, reflected — the zlib/PNG polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Register {
                column: "orders.amount".into(),
                config: ConfigRecord {
                    spec: "AC40X".into(),
                    memory_bytes: 1024,
                    seed: 7,
                    plan: Some(PlanRecord {
                        lo: -5,
                        hi: 4999,
                        shards: 8,
                        channel: true,
                    }),
                    reshard: Some(ReshardPolicyRecord {
                        skew_bits: 1.25f64.to_bits(),
                        min_interval_epochs: 8,
                        min_load: 2048,
                    }),
                    autoscale: Some(AutoscaleRecord {
                        min_shards: 1,
                        max_shards: 32,
                        scale_up_rate: 4096,
                        scale_down_rate: 64,
                        skew_bits: 2.0f64.to_bits(),
                        min_interval_epochs: 16,
                        min_load: 4096,
                    }),
                    rebuilt: Some(ShapeRecord {
                        shards: 16,
                        spec: "DADO".into(),
                        memory_bytes: 2048,
                        channel: false,
                    }),
                    rebuild_seq: 3,
                },
            },
            WalRecord::Register {
                column: "t".into(),
                config: ConfigRecord {
                    spec: "DC".into(),
                    memory_bytes: 512,
                    seed: 0,
                    plan: None,
                    reshard: None,
                    autoscale: None,
                    rebuilt: None,
                    rebuild_seq: 0,
                },
            },
            WalRecord::Commit {
                epoch: 42,
                columns: vec![
                    (
                        "orders.amount".into(),
                        vec![UpdateOp::Insert(i64::MIN), UpdateOp::Delete(i64::MAX)],
                    ),
                    ("t".into(), vec![]),
                ],
            },
            WalRecord::Reshard {
                column: "orders.amount".into(),
                barrier: 42,
            },
            WalRecord::Rebuild {
                column: "orders.amount".into(),
                barrier: 43,
                seq: 4,
                shards: Some(16),
                spec: Some("DADO".into()),
                memory_bytes: None,
                channel: Some(true),
            },
            // A delta-less rebuild: a pure border rebalance.
            WalRecord::Rebuild {
                column: "t".into(),
                barrier: 44,
                seq: 1,
                shards: None,
                spec: None,
                memory_bytes: None,
                channel: None,
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let records = sample_records();
        for r in &records {
            buf.extend_from_slice(&r.encode_frame());
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        loop {
            match read_frame(&buf, at) {
                Frame::Done => break,
                Frame::Record { record, next } => {
                    decoded.push(record);
                    at = next;
                }
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn nan_skew_threshold_round_trips_bit_exactly() {
        let bits = f64::NAN.to_bits() | 0xDEAD;
        let record = WalRecord::Register {
            column: "c".into(),
            config: ConfigRecord {
                spec: "DADO".into(),
                memory_bytes: 1,
                seed: 1,
                plan: None,
                reshard: Some(ReshardPolicyRecord {
                    skew_bits: bits,
                    min_interval_epochs: 1,
                    min_load: 1,
                }),
                autoscale: Some(AutoscaleRecord {
                    min_shards: 1,
                    max_shards: 4,
                    scale_up_rate: 10,
                    scale_down_rate: 1,
                    skew_bits: bits,
                    min_interval_epochs: 1,
                    min_load: 1,
                }),
                rebuilt: None,
                rebuild_seq: 0,
            },
        };
        let frame = record.encode_frame();
        match read_frame(&frame, 0) {
            Frame::Record { record: r, .. } => assert_eq!(r, record),
            other => panic!("unexpected frame: {other:?}"),
        }
    }

    #[test]
    fn old_format_frames_still_decode() {
        // A pre-rebuild-era register payload, hand-rolled byte-for-byte:
        // flags carry only plan|reshard bits, no autoscale/rebuilt
        // trailers. The decoder must accept it and fill the new fields
        // with None.
        let mut w = Writer::new();
        w.u8(KIND_REGISTER);
        w.str_("c");
        w.str_("DC"); // spec
        w.u64(512); // memory_bytes
        w.u64(3); // seed
        w.u8(0b11); // flags: plan + reshard only
        w.i64(0); // plan.lo
        w.i64(999); // plan.hi
        w.u64(4); // plan.shards
        w.u8(0); // plan.channel
        w.u64(2.0f64.to_bits()); // reshard.skew_bits
        w.u64(16); // reshard.min_interval_epochs
        w.u64(4096); // reshard.min_load
        let payload = w.into_bytes();
        let decoded = WalRecord::decode_payload(&payload).unwrap();
        assert_eq!(
            decoded,
            WalRecord::Register {
                column: "c".into(),
                config: ConfigRecord {
                    spec: "DC".into(),
                    memory_bytes: 512,
                    seed: 3,
                    plan: Some(PlanRecord {
                        lo: 0,
                        hi: 999,
                        shards: 4,
                        channel: false,
                    }),
                    reshard: Some(ReshardPolicyRecord {
                        skew_bits: 2.0f64.to_bits(),
                        min_interval_epochs: 16,
                        min_load: 4096,
                    }),
                    autoscale: None,
                    rebuilt: None,
                    rebuild_seq: 0,
                },
            }
        );

        // An old-format bare Reshard frame decodes unchanged.
        let mut w = Writer::new();
        w.u8(KIND_RESHARD);
        w.str_("c");
        w.u64(7);
        let decoded = WalRecord::decode_payload(&w.into_bytes()).unwrap();
        assert_eq!(
            decoded,
            WalRecord::Reshard {
                column: "c".into(),
                barrier: 7,
            }
        );
    }

    #[test]
    fn unknown_flag_bits_are_rejected_not_skipped() {
        // Config flags above the known window are a version skew, not
        // silently droppable state.
        let mut w = Writer::new();
        w.u8(KIND_REGISTER);
        w.str_("c");
        w.str_("DC");
        w.u64(1);
        w.u64(1);
        w.u8(0b10_0000);
        assert!(WalRecord::decode_payload(&w.into_bytes())
            .unwrap_err()
            .contains("unknown config flags"));

        let mut w = Writer::new();
        w.u8(KIND_REBUILD);
        w.str_("c");
        w.u64(1); // barrier
        w.u64(1); // seq
        w.u8(0b1_0000);
        assert!(WalRecord::decode_payload(&w.into_bytes())
            .unwrap_err()
            .contains("unknown rebuild flags"));
    }

    #[test]
    fn every_truncation_is_torn_or_a_clean_prefix() {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in sample_records() {
            buf.extend_from_slice(&r.encode_frame());
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let slice = &buf[..cut];
            let mut at = 0;
            let mut seen = 0;
            let ended = loop {
                match read_frame(slice, at) {
                    Frame::Done => break "done",
                    Frame::Torn => break "torn",
                    Frame::Record { next, .. } => {
                        seen += 1;
                        at = next;
                    }
                    Frame::Invalid { why } => panic!("truncation produced Invalid: {why}"),
                }
            };
            // Records decoded = frames fully inside the cut; Done only
            // at exact frame boundaries.
            let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(seen, whole, "cut at {cut}");
            assert_eq!(ended == "done", boundaries.contains(&cut), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let frame = sample_records()[0].encode_frame();
        // Flip one bit in every payload byte position; the frame must
        // read as Torn (checksum catches it), never as a valid record.
        for i in 8..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            match read_frame(&bad, 0) {
                Frame::Torn => {}
                other => panic!("flip at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic zlib test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn oversized_length_prefix_reads_as_torn() {
        let mut frame = sample_records()[1].encode_frame();
        frame[0..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        assert!(matches!(read_frame(&frame, 0), Frame::Torn));
    }

    #[test]
    fn stream_framing_round_trips_and_ends_cleanly() {
        let mut stream = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![b"hello".to_vec(), Vec::new(), vec![0xFF; 300]];
        for p in &payloads {
            write_framed(&mut stream, p).unwrap();
        }
        let mut cursor = &stream[..];
        for p in &payloads {
            assert_eq!(read_framed(&mut cursor).unwrap().as_deref(), Some(&p[..]));
        }
        // Clean EOF at a frame boundary is None, repeatedly.
        assert_eq!(read_framed(&mut cursor).unwrap(), None);
        assert_eq!(read_framed(&mut cursor).unwrap(), None);
    }

    #[test]
    fn stream_framing_rejects_damage() {
        let mut stream = Vec::new();
        write_framed(&mut stream, b"payload").unwrap();
        // Mid-frame EOF (header, then body).
        for cut in [4, stream.len() - 2] {
            let err = read_framed(&mut &stream[..cut]).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        }
        // A flipped payload bit fails the checksum.
        let mut bad = stream.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let err = read_framed(&mut &bad[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // An oversized length prefix is rejected before allocating.
        let mut huge = stream;
        huge[0..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        let err = read_framed(&mut &huge[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
