//! The durability layer under the catalog serving stack: an append-only
//! **epoch changelog** (write-ahead log), **checkpoint** files, and the
//! primitives `dh_catalog`'s `DurableStore` recovers from.
//!
//! The epoch-stamped commit pipeline of `dh_catalog` already *is* a
//! logical log — every published `WriteBatch` is one totally-ordered,
//! atomically-visible state transition. This crate persists exactly that
//! sequence:
//!
//! * [`record`] — [`WalRecord`]: one register / commit / re-shard event,
//!   serialized in a hand-rolled, checksummed, length-prefixed binary
//!   format (the workspace vendors no serde; the format is ~100 lines of
//!   explicit little-endian codec instead, documented in
//!   `docs/DURABILITY.md`).
//! * [`segment`] — [`Wal`]: segmented append-only files with a
//!   configurable fsync [`SyncPolicy`], torn-tail truncation on open,
//!   rotation at checkpoint boundaries, and removal of segments fully
//!   covered by a checkpoint; plus the [`Checkpoint`] file codec
//!   (written via temp-file + atomic rename).
//! * [`tail`] — [`TailReader`]: the read-only counterpart of
//!   [`Wal::open`] for **followers** that tail a changelog directory
//!   someone else is writing. It re-polls torn tails and half-rotated
//!   segments instead of repairing them, never deletes or truncates,
//!   and reports pruning-under-the-reader as a typed condition so a
//!   replica can fall back to a checkpoint (`docs/REPLICATION.md`).
//! * [`tmp`] — [`TempDir`], the per-test unique scratch directory every
//!   disk-touching test and bench in the workspace goes through
//!   (parallel-safe, removed on drop).
//!
//! This crate knows nothing about histograms beyond
//! [`dh_core::BucketSpan`] and [`dh_core::UpdateOp`]; the mapping
//! between live catalog state and log records lives in
//! `dh_catalog::durable`, which sits on top.
//!
//! # Corruption taxonomy
//!
//! Recovery distinguishes two failure shapes, and the distinction is the
//! crate's central contract (proven byte-by-byte by the torn-tail
//! proptest in `tests/wal_torn_tail.rs`):
//!
//! * a **torn tail** — the *last* segment ends mid-record, or its final
//!   record fails its checksum: the expected shape of a crash during an
//!   append. [`Wal::open`] silently truncates the file back to its last
//!   valid record and recovery proceeds with the surviving prefix;
//! * **corruption** — anything else (bad magic, a damaged record in a
//!   sealed segment, a checksum-valid record whose payload doesn't
//!   decode): surfaced as a typed [`WalError`], never a panic.

#![warn(missing_docs)]

pub mod record;
pub mod segment;
pub mod tail;
pub mod tmp;

pub use record::{
    crc32, read_framed, write_framed, AutoscaleRecord, ConfigRecord, Frame, PlanRecord, Reader,
    ReshardPolicyRecord, ShapeRecord, WalRecord, Writer,
};
pub use segment::{Checkpoint, CheckpointColumn, Wal};
pub use tail::{TailPoll, TailReader, TailStatus};
pub use tmp::TempDir;

use std::fmt;
use std::path::PathBuf;

/// When the changelog calls `fsync` on appended records.
///
/// The policy trades durability for append latency; recovery is correct
/// under all three (the log is written in commit order and torn tails
/// truncate), the policy only bounds *how much* acknowledged work a
/// power loss can shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every appended record: an acknowledged commit is on
    /// stable storage. The slowest option — every commit pays a device
    /// flush.
    PerCommit,
    /// `fsync` once every `n` appended records (and on rotation /
    /// explicit sync): group durability. A crash loses at most the last
    /// `n` acknowledged records.
    Batched(u64),
    /// Never `fsync` from the changelog; the OS writes back on its own
    /// schedule. A process crash loses nothing (the data is in the page
    /// cache); a power loss may shed any unsynced suffix.
    Off,
}

impl Default for SyncPolicy {
    /// Group durability, 64 records per flush.
    fn default() -> Self {
        SyncPolicy::Batched(64)
    }
}

/// A typed durability failure: every disk problem the WAL or checkpoint
/// machinery can surface.
///
/// Torn tails of the *last* segment are not errors (they truncate, see
/// the [crate docs](self)); everything here is a real fault the caller
/// must see.
#[derive(Debug)]
pub enum WalError {
    /// An OS-level I/O failure (open, read, write, fsync, rename, ...).
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// Which operation failed (static description, e.g. `"fsync"`).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A segment or checkpoint file does not start with the expected
    /// magic/version header — not a torn write (headers are written
    /// first and fit one sector), so treated as corruption.
    BadHeader {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with the header.
        why: String,
    },
    /// A damaged record outside the torn-tail window: a checksum failure
    /// in a sealed (non-final) segment, or a checksum-valid payload that
    /// does not decode. Data after this point cannot be trusted.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the damaged record.
        offset: u64,
        /// What was wrong.
        why: String,
    },
    /// The log on disk was written by a different store kind than the
    /// one being opened (e.g. a sharded store opening a single-cell
    /// store's directory).
    StoreKindMismatch {
        /// The offending file.
        path: PathBuf,
        /// The kind tag the caller expected.
        expected: u8,
        /// The kind tag found on disk.
        found: u8,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, op, source } => {
                write!(f, "wal i/o error: {op} on {}: {source}", path.display())
            }
            WalError::BadHeader { path, why } => {
                write!(f, "bad wal header in {}: {why}", path.display())
            }
            WalError::Corrupt { path, offset, why } => {
                write!(
                    f,
                    "corrupt wal record in {} at byte {offset}: {why}",
                    path.display()
                )
            }
            WalError::StoreKindMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "store kind mismatch in {}: log was written by kind {found}, opened as kind {expected}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl WalError {
    pub(crate) fn io(path: impl Into<PathBuf>, op: &'static str, source: std::io::Error) -> Self {
        WalError::Io {
            path: path.into(),
            op,
            source,
        }
    }
}
