//! One Criterion bench per paper figure: each runs the figure's exact
//! pipeline at reduced scale, so `cargo bench` exercises every experiment
//! end to end and tracks its cost over time.
//!
//! Full-scale figure data comes from the `repro` binary
//! (`cargo run --release -p dh_bench --bin repro -- all`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dh_bench::{all_figure_ids, run_figure, RunOptions};

fn figure_pipelines(c: &mut Criterion) {
    let opts = RunOptions {
        seeds: 1,
        scale: 0.02,
        domain_max: Some(500),
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in all_figure_ids() {
        group.bench_with_input(BenchmarkId::from_parameter(id), id, |b, id| {
            b.iter(|| std::hint::black_box(run_figure(id, opts).expect("known figure")));
        });
    }
    group.finish();
}

criterion_group!(benches, figure_pipelines);
criterion_main!(benches);
