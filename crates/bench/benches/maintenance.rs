//! Per-update maintenance cost of the dynamic histograms.
//!
//! Backs the paper's cost analyses: DC is `O(log n)` per point (Section
//! 3.1), DVO/DADO are `O(n)` per point (Section 4.4), and AC with
//! `gamma = -1` pays for reservoir bookkeeping plus recomputation.
//!
//! Every competitor is built through the `AlgoSpec` registry and driven
//! as a `Box<dyn DynHistogram>` — the bench measures the same object-safe
//! path a serving catalog pays, dynamic dispatch included.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dh_catalog::AlgoSpec;
use dh_core::{DynHistogram, MemoryBudget, UpdateOp};
use dh_gen::workload::{UpdateStream, WorkloadKind};
use dh_gen::SyntheticConfig;

fn stream_ops(points: u64, kind: WorkloadKind, seed: u64) -> Vec<UpdateOp> {
    let cfg = SyntheticConfig::default().with_total_points(points);
    let data = cfg.generate(seed);
    UpdateStream::build(&data.values, kind, seed).ops()
}

fn run(
    spec: AlgoSpec,
    memory: MemoryBudget,
    ops: &[UpdateOp],
) -> Box<dyn DynHistogram + Send + Sync> {
    let mut h = spec.build(memory, 7);
    h.apply_slice(ops);
    h
}

fn insert_throughput(c: &mut Criterion) {
    let ops = stream_ops(20_000, WorkloadKind::RandomInsertions, 7);
    let memory = MemoryBudget::from_kb(1.0);

    let mut group = c.benchmark_group("insert_throughput_1kb");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops.len() as u64));
    for spec in [
        AlgoSpec::Dc,
        AlgoSpec::Dvo,
        AlgoSpec::Dado,
        AlgoSpec::Ac { disk_factor: 20 },
    ] {
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            b.iter(|| std::hint::black_box(run(spec, memory, &ops)))
        });
    }
    group.finish();
}

fn mixed_workload(c: &mut Criterion) {
    let ops = stream_ops(
        10_000,
        WorkloadKind::InsertionsWithRandomDeletions {
            delete_probability: 0.25,
        },
        9,
    );
    let memory = MemoryBudget::from_kb(1.0);

    let mut group = c.benchmark_group("mixed_updates_25pct_deletes");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops.len() as u64));
    for spec in [AlgoSpec::Dado, AlgoSpec::Dc] {
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            b.iter(|| std::hint::black_box(run(spec, memory, &ops)))
        });
    }
    group.finish();
}

criterion_group!(benches, insert_throughput, mixed_workload);
criterion_main!(benches);
