//! Per-update maintenance cost of the dynamic histograms.
//!
//! Backs the paper's cost analyses: DC is `O(log n)` per point (Section
//! 3.1), DVO/DADO are `O(n)` per point (Section 4.4), and AC with
//! `gamma = -1` pays for reservoir bookkeeping plus recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dh_core::dynamic::{DadoHistogram, DcHistogram, DvoHistogram};
use dh_core::{Histogram, HistogramClass, MemoryBudget};
use dh_gen::workload::{Update, UpdateStream, WorkloadKind};
use dh_gen::SyntheticConfig;
use dh_sample::AcHistogram;

fn stream(points: u64) -> UpdateStream {
    let cfg = SyntheticConfig::default().with_total_points(points);
    let data = cfg.generate(7);
    UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, 7)
}

fn run<H: Histogram>(mut h: H, s: &UpdateStream) -> H {
    for u in s.iter() {
        match u {
            Update::Insert(v) => h.insert(v),
            Update::Delete(v) => h.delete(v),
        }
    }
    h
}

fn insert_throughput(c: &mut Criterion) {
    let s = stream(20_000);
    let memory = MemoryBudget::from_kb(1.0);
    let n_bc = memory.buckets(HistogramClass::BorderAndCount);
    let n_b2 = memory.buckets(HistogramClass::BorderAndTwoCounters);

    let mut group = c.benchmark_group("insert_throughput_1kb");
    group.sample_size(10);
    group.throughput(Throughput::Elements(s.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("DC"), |b| {
        b.iter(|| std::hint::black_box(run(DcHistogram::new(n_bc), &s)))
    });
    group.bench_function(BenchmarkId::from_parameter("DVO"), |b| {
        b.iter(|| std::hint::black_box(run(DvoHistogram::new(n_b2), &s)))
    });
    group.bench_function(BenchmarkId::from_parameter("DADO"), |b| {
        b.iter(|| std::hint::black_box(run(DadoHistogram::new(n_b2), &s)))
    });
    group.bench_function(BenchmarkId::from_parameter("AC20X"), |b| {
        b.iter(|| {
            std::hint::black_box(run(
                AcHistogram::new(n_bc, memory.sample_elements(20), 7),
                &s,
            ))
        })
    });
    group.finish();
}

fn mixed_workload(c: &mut Criterion) {
    let cfg = SyntheticConfig::default().with_total_points(10_000);
    let data = cfg.generate(9);
    let s = UpdateStream::build(
        &data.values,
        WorkloadKind::InsertionsWithRandomDeletions {
            delete_probability: 0.25,
        },
        9,
    );
    let memory = MemoryBudget::from_kb(1.0);
    let n_b2 = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let n_bc = memory.buckets(HistogramClass::BorderAndCount);

    let mut group = c.benchmark_group("mixed_updates_25pct_deletes");
    group.sample_size(10);
    group.throughput(Throughput::Elements(s.len() as u64));
    group.bench_function("DADO", |b| {
        b.iter(|| std::hint::black_box(run(DadoHistogram::new(n_b2), &s)))
    });
    group.bench_function("DC", |b| {
        b.iter(|| std::hint::black_box(run(DcHistogram::new(n_bc), &s)))
    });
    group.finish();
}

criterion_group!(benches, insert_throughput, mixed_workload);
criterion_main!(benches);
