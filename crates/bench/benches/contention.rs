//! Multi-writer ingestion contention: single-`RwLock` `Catalog` vs the
//! per-shard-locked `ShardedCatalog` vs its MPSC-worker variant.
//!
//! All three designs ingest the identical pre-routed batch list with the
//! same number of concurrent writer threads and the same total histogram
//! memory (the sharded designs divide it across shards), so the measured
//! difference is the cost of the ingestion design alone. Throughput
//! numbers from this comparison (via `repro serve`, which shares the
//! engine) are quoted in `ARCHITECTURE.md`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use dh_bench::{ingest, ServeDesign, Serving, PROBES_PER_ROUND, RESHARD_POLICY};
use dh_catalog::AlgoSpec;
use dh_core::{MemoryBudget, UpdateOp};
use dh_gen::workload::{UpdateStream, WorkloadKind};
use dh_gen::SyntheticConfig;

const SHARDS: usize = 8;
const DOMAIN: (i64, i64) = (0, 5000);
const BATCH: usize = 256;

fn batches(points: u64, seed: u64) -> Vec<Vec<UpdateOp>> {
    let cfg = SyntheticConfig::default().with_total_points(points);
    let data = cfg.generate(seed);
    let ops = UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed).ops();
    ops.chunks(BATCH).map(<[UpdateOp]>::to_vec).collect()
}

fn skewed_batches(points: u64, seed: u64) -> Vec<Vec<UpdateOp>> {
    let cfg = SyntheticConfig::default()
        .with_total_points(points)
        .with_size_skew(2.5)
        .with_spread_skew(2.5);
    let data = cfg.generate(seed);
    let ops = UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed).ops();
    ops.chunks(BATCH).map(<[UpdateOp]>::to_vec).collect()
}

fn multi_writer_ingest(c: &mut Criterion) {
    let batches = batches(40_000, 7);
    let updates: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let memory = MemoryBudget::from_kb(1.0);

    for writers in [1usize, 4] {
        let mut group = c.benchmark_group(format!("ingest_contention_{writers}writers"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(updates));
        for design in ServeDesign::all() {
            // Construction (k histogram builds, and worker-thread spawns
            // in channel mode) happens in the setup closure so only the
            // ingestion itself is timed.
            group.bench_function(BenchmarkId::from_parameter(design.label()), |b| {
                b.iter_batched(
                    || Serving::build(design, AlgoSpec::Dc, memory, SHARDS, DOMAIN, 7),
                    |serving| {
                        ingest(&serving, &batches, writers);
                        serving
                    },
                    BatchSize::PerIteration,
                )
            });
        }
        group.finish();
    }
}

/// Static equal-width borders vs policy-armed dynamic re-sharding on a
/// Zipf-skewed stream: the re-sharded arm pays the border rebuilds
/// (barrier + histogram reconstruction) inside the timed region, in
/// exchange for the balanced routing the `repro serve --reshard`
/// replay reports.
fn reshard_ingest(c: &mut Criterion) {
    let batches = skewed_batches(30_000, 7);
    let updates: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let memory = MemoryBudget::from_kb(1.0);

    let mut group = c.benchmark_group("ingest_reshard_2writers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(updates));
    for (label, policy) in [("static-plan", None), ("resharded", Some(RESHARD_POLICY))] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    Serving::build_with(
                        ServeDesign::ShardedLock,
                        AlgoSpec::Dc,
                        memory,
                        SHARDS,
                        DOMAIN,
                        7,
                        policy,
                    )
                },
                |serving| {
                    ingest(&serving, &batches, 2);
                    serving
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

/// Probe rounds each reader thread performs per timed iteration of the
/// read-mix arms (3 estimates per round).
const READ_ROUNDS: u64 = 20_000;

/// Runs `readers` threads, each doing [`READ_ROUNDS`] hot-path probe
/// rounds against the pre-ingested serving instance.
fn probe_storm(serving: &Serving, readers: usize) {
    std::thread::scope(|scope| {
        for t in 0..readers {
            scope.spawn(move || {
                let mut sink = 0.0;
                for i in 0..READ_ROUNDS {
                    sink += serving.probe_round(t as u64 * READ_ROUNDS + i, DOMAIN);
                }
                std::hint::black_box(sink);
            });
        }
    });
}

/// Wait-free hot-path serving, quiescent store: readers estimate off the
/// front generation with no writer in sight — the pure cost of one
/// atomic load, a pointer chase and a front-cache probe.
fn read_mix_serving(c: &mut Criterion) {
    let batches = batches(40_000, 7);
    let memory = MemoryBudget::from_kb(1.0);

    for readers in [1usize, 4] {
        let mut group = c.benchmark_group(format!("read_mix_{readers}readers"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(
            readers as u64 * READ_ROUNDS * PROBES_PER_ROUND,
        ));
        for design in ServeDesign::all() {
            let serving = Serving::build(design, AlgoSpec::Dc, memory, SHARDS, DOMAIN, 7);
            ingest(&serving, &batches, 2);
            group.bench_function(BenchmarkId::from_parameter(design.label()), |b| {
                b.iter(|| probe_storm(&serving, readers));
            });
        }
        group.finish();
    }
}

/// The same probe storm with one writer burst-committing throughout the
/// timed region: the read path's throughput under generation swaps —
/// the paper's estimates-served-while-maintained deployment. (The
/// swap-rate pressure is what matters; the writer's own ingest runs on
/// its own thread.)
fn read_mix_under_commits(c: &mut Criterion) {
    let warm = batches(40_000, 7);
    let live = batches(10_000, 11);
    let memory = MemoryBudget::from_kb(1.0);

    for readers in [1usize, 4] {
        let mut group = c.benchmark_group(format!("read_mix_under_commits_{readers}readers"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(
            readers as u64 * READ_ROUNDS * PROBES_PER_ROUND,
        ));
        for design in ServeDesign::all() {
            let serving = Serving::build(design, AlgoSpec::Dc, memory, SHARDS, DOMAIN, 7);
            ingest(&serving, &warm, 2);
            group.bench_function(BenchmarkId::from_parameter(design.label()), |b| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        let serving = &serving;
                        let live = &live;
                        scope.spawn(move || {
                            for batch in live {
                                serving.apply(batch);
                            }
                            serving.flush();
                        });
                        probe_storm(serving, readers);
                    });
                });
            });
            // The contract the numbers rest on: no probe ever fell back
            // to the gated slow render.
            assert_eq!(serving.read_stats().slow_renders, 0, "{}", design.label());
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    multi_writer_ingest,
    reshard_ingest,
    read_mix_serving,
    read_mix_under_commits
);
criterion_main!(benches);
