//! Ablation benches for the design choices the paper discusses:
//!
//! * **Sub-bucket count** (Section 4): 2–3 sub-buckets per bucket are
//!   comparable, finer subdivisions worsen quality at equal memory.
//! * **DC's `alpha_min`** (Section 3): the algorithm is insensitive to the
//!   chi-square significance floor as long as it is far below 1.
//! * **AC's maintenance policy** (`gamma = -1` recompute vs split/merge).
//! * **SSBM's merge cost** (squared vs absolute deviations).
//!
//! These measure *runtime*; the corresponding quality numbers are printed
//! once per bench run via `eprintln!` so the ablation result is visible in
//! the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dh_core::dynamic::{AbsoluteDeviation, DcHistogram, MultiSubHistogram, SquaredDeviation};
use dh_core::{ks_error, DataDistribution, DynHistogram, MemoryBudget};
use dh_gen::SyntheticConfig;
use dh_sample::{AcHistogram, AcMaintenance};
use dh_static::SsbmHistogram;

fn dataset() -> (Vec<i64>, DataDistribution) {
    let cfg = SyntheticConfig::default().with_total_points(20_000);
    let data = cfg.generate(5);
    let values = data.shuffled(5);
    let truth = DataDistribution::from_values(&values);
    (values, truth)
}

fn subbucket_ablation(c: &mut Criterion) {
    let (values, truth) = dataset();
    let memory = MemoryBudget::from_kb(1.0);

    let mut group = c.benchmark_group("subbucket_count");
    group.sample_size(10);
    for k in [2usize, 3, 4, 6, 8] {
        let buckets = memory.buckets_with_counters(k);
        // Report the quality side of the ablation once.
        let mut h = MultiSubHistogram::<AbsoluteDeviation>::new(buckets, k);
        for &v in &values {
            h.insert(v);
        }
        eprintln!(
            "subbucket ablation: k={k} -> {buckets} buckets, KS = {:.5}",
            ks_error(&h, &truth)
        );
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut h = MultiSubHistogram::<AbsoluteDeviation>::new(buckets, k);
                for &v in &values {
                    h.insert(v);
                }
                std::hint::black_box(h)
            });
        });
    }
    group.finish();
}

fn dc_alpha_ablation(c: &mut Criterion) {
    let (values, truth) = dataset();
    let memory = MemoryBudget::from_kb(1.0);
    let n = memory.buckets(dh_core::HistogramClass::BorderAndCount);

    let mut group = c.benchmark_group("dc_alpha_min");
    group.sample_size(10);
    for alpha in [0.0, 1e-9, 1e-6, 1e-3, 0.5] {
        let mut h = DcHistogram::with_alpha(n, alpha);
        for &v in &values {
            h.insert(v);
        }
        eprintln!(
            "dc alpha ablation: alpha={alpha:>7.0e} -> {} repartitions, KS = {:.5}",
            h.repartition_count(),
            ks_error(&h, &truth)
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{alpha:.0e}")),
            &alpha,
            |b, &alpha| {
                b.iter(|| {
                    let mut h = DcHistogram::with_alpha(n, alpha);
                    for &v in &values {
                        h.insert(v);
                    }
                    std::hint::black_box(h)
                });
            },
        );
    }
    group.finish();
}

fn ac_policy_ablation(c: &mut Criterion) {
    let (values, truth) = dataset();
    let memory = MemoryBudget::from_kb(1.0);
    let n = memory.buckets(dh_core::HistogramClass::BorderAndCount);
    let sample = memory.sample_elements(20);

    let policies: Vec<(&str, AcMaintenance)> = vec![
        ("recompute", AcMaintenance::RecomputeAlways),
        ("gamma_0.5", AcMaintenance::SplitMerge { gamma: 0.5 }),
        ("gamma_2.0", AcMaintenance::SplitMerge { gamma: 2.0 }),
    ];
    let mut group = c.benchmark_group("ac_maintenance");
    group.sample_size(10);
    for (name, policy) in policies {
        let mut h = AcHistogram::with_maintenance(n, sample, 5, policy);
        for &v in &values {
            h.insert(v);
        }
        eprintln!(
            "ac policy ablation: {name} -> {} recomputes, KS = {:.5}",
            h.recompute_count(),
            ks_error(&h, &truth)
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let mut h = AcHistogram::with_maintenance(n, sample, 5, policy);
                for &v in &values {
                    h.insert(v);
                }
                std::hint::black_box(h)
            });
        });
    }
    group.finish();
}

fn ssbm_policy_ablation(c: &mut Criterion) {
    let (_, truth) = dataset();
    let n = MemoryBudget::from_kb(0.25).buckets(dh_core::HistogramClass::BorderAndCount);

    eprintln!(
        "ssbm policy ablation: squared KS = {:.5}, absolute KS = {:.5}",
        ks_error(
            &SsbmHistogram::build_with_policy::<SquaredDeviation>(&truth, n),
            &truth
        ),
        ks_error(
            &SsbmHistogram::build_with_policy::<AbsoluteDeviation>(&truth, n),
            &truth
        ),
    );
    let mut group = c.benchmark_group("ssbm_policy");
    group.sample_size(10);
    group.bench_function("squared", |b| {
        b.iter(|| {
            std::hint::black_box(SsbmHistogram::build_with_policy::<SquaredDeviation>(
                &truth, n,
            ))
        })
    });
    group.bench_function("absolute", |b| {
        b.iter(|| {
            std::hint::black_box(SsbmHistogram::build_with_policy::<AbsoluteDeviation>(
                &truth, n,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    subbucket_ablation,
    dc_alpha_ablation,
    ac_policy_ablation,
    ssbm_policy_ablation
);
criterion_main!(benches);
