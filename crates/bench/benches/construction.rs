//! Static-histogram construction cost (the Fig. 13 companion bench).
//!
//! The paper's claim: SVO is by far the most expensive to build
//! (exponential there, exact DP here), SSBM is far cheaper at comparable
//! quality, SC cheaper still. Run with `cargo bench -p dh_bench`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dh_bench::StaticAlgo;
use dh_core::{DataDistribution, MemoryBudget};
use dh_gen::SyntheticConfig;

fn construction(c: &mut Criterion) {
    let cfg = SyntheticConfig::default()
        .with_clusters(200)
        .with_cluster_sd(1.0)
        .with_total_points(20_000);
    let data = cfg.generate(1);
    let truth = DataDistribution::from_values(&data.values);
    let memory = MemoryBudget::from_kb(0.25);

    let mut group = c.benchmark_group("static_construction");
    group.sample_size(10);
    for algo in [
        StaticAlgo::Sc,
        StaticAlgo::Svo,
        StaticAlgo::Sado,
        StaticAlgo::Ssbm,
        StaticAlgo::EquiDepth,
        StaticAlgo::EquiWidth,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, algo| {
                b.iter_batched(
                    || truth.clone(),
                    |t| std::hint::black_box(algo.build_seconds(memory, &t)),
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
