//! Catalog-level workload replay: multi-writer ingestion through every
//! serving design, driven end to end into the figure harness.
//!
//! This is the `repro serve` mode and the engine behind the `contention`
//! bench: a `dh_gen` update stream is chopped into batches, the batches
//! are dealt round-robin to `W` concurrent writer threads, and the same
//! replay is pushed through each [`ServeDesign`] — the single-lock
//! [`Catalog`], the per-shard-locked [`ShardedCatalog`], and its
//! MPSC-worker variant. All three are driven as `&dyn`
//! [`ColumnStore`] through literally the same code path ([`Serving`]
//! holds a `Box<dyn ColumnStore>`; only construction branches), so the
//! measured differences are the ingestion designs, never the harness.
//! The harness reports multi-writer ingestion throughput *and* the final
//! estimation quality (KS against the exact live distribution), so the
//! contention story and the paper's accuracy story stay on one page.
//! The `--durable` arm ([`run_durable`]) re-runs the same replay behind
//! a [`DurableStore`] and times the crash-recovery reopen, putting the
//! durability tax and the replay speed on that same page. The
//! `--replicas` arm ([`run_replicas`]) keeps the durable leader
//! ingesting while `R` `dh_replica` followers tail its changelog
//! directory, serve the read mix, and report their measured staleness —
//! with bit-identity spot checks against the leader's retained
//! generations keeping the replicas honest as they are measured.

use crate::harness::{mean, FigureResult, RunOptions, Series};
use dh_catalog::{
    AlgoSpec, AutoscalePolicy, Catalog, CatalogError, ColumnConfig, ColumnStore, DurableOptions,
    DurableStore, ReadStats, ReshardPolicy, ShardPlan, ShardedCatalog, Snapshot, StoreKind,
};
use dh_core::{ks_error, DataDistribution, MemoryBudget, ReadHistogram, UpdateOp};
use dh_gen::workload::{UpdateStream, WorkloadKind};
use dh_gen::SyntheticConfig;
use dh_wal::{SyncPolicy, TempDir};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The column name every serve replay ingests into.
const COLUMN: &str = "serve";

/// An ingestion design under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeDesign {
    /// One `dh_catalog::Catalog` column: every writer serializes on the
    /// column's single `RwLock`.
    SingleLock,
    /// A `ShardedCatalog` column with locked ingestion: writers apply
    /// routed sub-batches under independent per-shard locks.
    ShardedLock,
    /// A `ShardedCatalog` column with channel ingestion: writers enqueue
    /// to per-shard MPSC workers and never lock.
    ShardedChannel,
}

impl ServeDesign {
    /// All designs, in the order they appear in figures and tables.
    pub fn all() -> [ServeDesign; 3] {
        [
            ServeDesign::SingleLock,
            ServeDesign::ShardedLock,
            ServeDesign::ShardedChannel,
        ]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            ServeDesign::SingleLock => "single-RwLock",
            ServeDesign::ShardedLock => "sharded-locks",
            ServeDesign::ShardedChannel => "sharded-channels",
        }
    }

    /// The [`StoreKind`] a durable changelog of this design is bound to
    /// (the channel variant is a `ShardPlan` mode, not a store kind).
    pub fn store_kind(self) -> StoreKind {
        match self {
            ServeDesign::SingleLock => StoreKind::Single,
            ServeDesign::ShardedLock | ServeDesign::ShardedChannel => StoreKind::Sharded,
        }
    }
}

/// A live serving instance of one design, held as a boxed
/// [`ColumnStore`] — every design is driven through literally the same
/// trait-object code path; only [`Serving::build`] knows which concrete
/// store backs it (also used by the `contention` bench).
pub struct Serving {
    store: Box<dyn ColumnStore>,
}

impl Serving {
    /// Builds a one-column serving instance of `design` over the
    /// inclusive value `domain`.
    ///
    /// # Panics
    /// Panics on registration failure (fresh instance, cannot collide)
    /// or a degenerate domain/shard count.
    pub fn build(
        design: ServeDesign,
        spec: AlgoSpec,
        memory: MemoryBudget,
        shards: usize,
        domain: (i64, i64),
        seed: u64,
    ) -> Self {
        Self::build_with(design, spec, memory, shards, domain, seed, None)
    }

    /// [`Serving::build`] with an optional [`ReshardPolicy`] arming
    /// dynamic re-sharding on the sharded designs (the unsharded
    /// catalog ignores it, like the plan).
    ///
    /// # Panics
    /// Panics on registration failure (fresh instance, cannot collide)
    /// or a degenerate domain/shard count.
    pub fn build_with(
        design: ServeDesign,
        spec: AlgoSpec,
        memory: MemoryBudget,
        shards: usize,
        domain: (i64, i64),
        seed: u64,
        reshard: Option<ReshardPolicy>,
    ) -> Self {
        let mut plan = ShardPlan::new(domain.0, domain.1, shards).expect("valid shard plan");
        if design == ServeDesign::ShardedChannel {
            plan = plan.channel();
        }
        // The one design-specific branch: which store to box. (The
        // unsharded catalog ignores the plan.)
        let store: Box<dyn ColumnStore> = match design {
            ServeDesign::SingleLock => Box::new(Catalog::new()),
            ServeDesign::ShardedLock | ServeDesign::ShardedChannel => {
                Box::new(ShardedCatalog::new())
            }
        };
        let mut config = ColumnConfig::new(spec, memory)
            .with_seed(seed)
            .with_plan(plan);
        if let Some(policy) = reshard {
            config = config.with_reshard(policy);
        }
        store.register(COLUMN, config).expect("fresh store");
        Serving { store }
    }

    /// [`Serving::build`] with an [`AutoscalePolicy`] arming elastic
    /// shape rebuilds on the sharded designs: the store owns its shard
    /// count from here on, scaling `k` with the routed throughput (the
    /// unsharded catalog ignores the policy, like the plan).
    ///
    /// # Panics
    /// Panics on registration failure (fresh instance, cannot collide)
    /// or a degenerate domain/shard count.
    pub fn build_autoscale(
        design: ServeDesign,
        spec: AlgoSpec,
        memory: MemoryBudget,
        shards: usize,
        domain: (i64, i64),
        seed: u64,
        autoscale: AutoscalePolicy,
    ) -> Self {
        let mut plan = ShardPlan::new(domain.0, domain.1, shards).expect("valid shard plan");
        if design == ServeDesign::ShardedChannel {
            plan = plan.channel();
        }
        let store: Box<dyn ColumnStore> = match design {
            ServeDesign::SingleLock => Box::new(Catalog::new()),
            ServeDesign::ShardedLock | ServeDesign::ShardedChannel => {
                Box::new(ShardedCatalog::new())
            }
        };
        let config = ColumnConfig::new(spec, memory)
            .with_seed(seed)
            .with_plan(plan)
            .with_autoscale(autoscale);
        store.register(COLUMN, config).expect("fresh store");
        Serving { store }
    }

    /// [`Serving::build`] behind a [`DurableStore`]: the same design,
    /// but every publication is appended to the epoch changelog in
    /// `wal_dir` before the replay moves on — the `repro serve
    /// --durable` arm. The directory must be fresh (an existing
    /// changelog would replay into the store before the bench starts).
    ///
    /// # Panics
    /// Panics if the changelog cannot be opened or on registration
    /// failure (fresh instance, cannot collide).
    // One flat argument list, matching the sibling constructors.
    #[allow(clippy::too_many_arguments)]
    pub fn build_durable(
        design: ServeDesign,
        spec: AlgoSpec,
        memory: MemoryBudget,
        shards: usize,
        domain: (i64, i64),
        seed: u64,
        wal_dir: &Path,
        opts: DurableOptions,
    ) -> Self {
        let mut plan = ShardPlan::new(domain.0, domain.1, shards).expect("valid shard plan");
        if design == ServeDesign::ShardedChannel {
            plan = plan.channel();
        }
        let store = DurableStore::open(wal_dir, design.store_kind(), opts).expect("open changelog");
        let config = ColumnConfig::new(spec, memory)
            .with_seed(seed)
            .with_plan(plan);
        store.register(COLUMN, config).expect("fresh store");
        Serving {
            store: Box::new(store),
        }
    }

    /// The store under replay, as the trait object the whole harness is
    /// written against.
    pub fn store(&self) -> &dyn ColumnStore {
        self.store.as_ref()
    }

    /// Unwraps the boxed store — how the `--sites` arm hands a design's
    /// store to a `dh_site::LocalSite` member.
    pub fn into_store(self) -> Box<dyn ColumnStore> {
        self.store
    }

    /// Applies one batch (thread-safe).
    ///
    /// # Panics
    /// Panics if the serve column is missing (never happens after
    /// [`Serving::build`]).
    pub fn apply(&self, batch: &[UpdateOp]) {
        self.store.apply(COLUMN, batch).expect("column registered");
    }

    /// Barrier: returns once every accepted batch is applied.
    pub fn flush(&self) {
        self.store.flush(COLUMN).expect("column registered");
    }

    /// A read snapshot of the ingested column.
    ///
    /// # Panics
    /// Panics if the serve column is missing (never happens after
    /// [`Serving::build`]).
    pub fn snapshot(&self) -> Snapshot {
        self.store.snapshot(COLUMN).expect("column registered")
    }

    /// Per-shard routed-op counters of the serve column under its
    /// current shard map (empty for the unsharded design) — what the
    /// re-shard replay reports as shard balance.
    ///
    /// # Panics
    /// Panics if the serve column is missing (never happens after
    /// [`Serving::build`]).
    pub fn shard_load(&self) -> Vec<u64> {
        self.store.shard_load(COLUMN).expect("column registered")
    }

    /// The store's read-path counters (see `docs/READ_PATH.md`) — the
    /// read-mix replay derives its cache hit rate and verifies the hot
    /// path stayed wait-free (`slow_renders == 0`) from these.
    pub fn read_stats(&self) -> ReadStats {
        self.store.read_stats()
    }

    /// One hot-path probe round against the serve column: a rotating
    /// range, point and total estimate derived from `i` (3 probes). The
    /// predicate set cycles with period 64, so a steady reader re-visits
    /// each shape and the front cache's hit path is exercised alongside
    /// its miss-and-fill path. Also the probe body of the `contention`
    /// bench's read-mix arms.
    ///
    /// # Panics
    /// Panics if the serve column is missing (never happens after
    /// [`Serving::build`]).
    pub fn probe_round(&self, i: u64, domain: (i64, i64)) -> f64 {
        probe_store(self.store.as_ref(), i, domain)
    }
}

/// The probe body behind [`Serving::probe_round`], usable against any
/// store serving the replay column — the replica arm drives follower
/// reads through exactly the same probes the leader-side arms measure.
fn probe_store(store: &dyn ColumnStore, i: u64, domain: (i64, i64)) -> f64 {
    let width = (domain.1 - domain.0).max(1);
    let k = (i % 64) as i64;
    let lo = domain.0 + (k * 97) % width;
    let hi = (lo + width / 8).min(domain.1);
    let mut acc = store.estimate_range(COLUMN, lo, hi).expect("registered");
    acc += store
        .estimate_eq(COLUMN, domain.0 + (k * 131) % width)
        .expect("registered");
    acc += store.total_count(COLUMN).expect("registered");
    acc
}

/// Probes per [`Serving::probe_round`] call.
pub const PROBES_PER_ROUND: u64 = 3;

/// Max/mean ratio of per-shard loads: `1.0` is perfectly balanced,
/// `k` is everything-on-one-shard. Empty or unloaded columns report
/// `1.0` (nothing to balance).
pub fn load_balance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if loads.is_empty() || total == 0 {
        return 1.0;
    }
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max / (total as f64 / loads.len() as f64)
}

/// Replays pre-routed `batches` through a serving instance with
/// `writers` concurrent writer threads (batch `i` goes to writer
/// `i % writers`, so per-writer order is preserved), then flushes.
/// Returns the wall-clock seconds of ingest + flush.
pub fn ingest(serving: &Serving, batches: &[Vec<UpdateOp>], writers: usize) -> f64 {
    let writers = writers.max(1);
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let serving = &serving;
            scope.spawn(move || {
                for batch in batches.iter().skip(w).step_by(writers) {
                    serving.apply(batch);
                }
            });
        }
    });
    serving.flush();
    t0.elapsed().as_secs_f64()
}

/// Configuration of a serve replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Histogram algorithm every design serves.
    pub spec: AlgoSpec,
    /// Total histogram memory per design (the sharded designs divide it
    /// across shards, so all three spend the same bytes).
    pub memory: MemoryBudget,
    /// Shard count of the sharded designs.
    pub shards: usize,
    /// Updates per ingestion batch.
    pub batch_size: usize,
    /// Zipf skew applied to the generated dataset's cluster sizes *and*
    /// center spreads (`None` keeps the paper's reference `S = Z = 1`).
    /// [`run_reshard`] defaults to a heavier skew so the equal-width
    /// plan's load imbalance is visible.
    pub skew: Option<f64>,
}

impl Default for ServeConfig {
    /// 8 shards, 1 KB total, DC, 256-update batches, paper-default skew.
    fn default() -> Self {
        Self {
            spec: AlgoSpec::Dc,
            memory: MemoryBudget::from_kb(1.0),
            shards: 8,
            batch_size: 256,
            skew: None,
        }
    }
}

/// The two figures a serve replay produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Ingestion throughput (million updates/s) vs writer count, one
    /// series per design.
    pub throughput: FigureResult,
    /// Final estimation error (KS vs the exact live distribution) vs
    /// writer count, one series per design.
    pub accuracy: FigureResult,
}

impl ServeReport {
    /// Both figures as one markdown document.
    pub fn to_markdown(&self) -> String {
        format!(
            "{}{}",
            self.throughput.to_markdown(),
            self.accuracy.to_markdown()
        )
    }

    /// Both figures as one JSON document
    /// (`{"throughput": {...}, "accuracy": {...}}`) — what
    /// `repro serve --json` emits and CI uploads as `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"throughput\":{},\"accuracy\":{}}}\n",
            self.throughput.to_json(),
            self.accuracy.to_json()
        )
    }
}

/// Builds the generator configuration of a serve replay: the paper's
/// reference distribution at the requested scale and domain, with the
/// optional skew override applied to cluster sizes and spreads.
fn replay_gen_config(cfg: ServeConfig, opts: RunOptions, domain_max: i64) -> SyntheticConfig {
    let mut gen_cfg = SyntheticConfig::default()
        .with_total_points(opts.scaled(100_000))
        .with_domain(0, domain_max);
    if let Some(skew) = cfg.skew {
        gen_cfg = gen_cfg.with_size_skew(skew).with_spread_skew(skew);
    }
    gen_cfg
}

/// Runs the serve replay: for every writer count in `writers`, ingest an
/// identical `dh_gen` random-insertion stream through all three designs
/// and record throughput and final KS, averaged over `opts` seeds.
pub fn run_serve(cfg: ServeConfig, writers: &[usize], opts: RunOptions) -> ServeReport {
    let domain_max = opts.domain_max.unwrap_or(5000);
    let gen_cfg = replay_gen_config(cfg, opts, domain_max);
    let designs = ServeDesign::all();
    let mut tp_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut ks_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();

    // per[wi][di] accumulates seeds; the stream/truth/batch setup is
    // writer-count independent, so it is built once per seed.
    let mut per_tp: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; writers.len()];
    let mut per_ks: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; writers.len()];
    for seed in opts.seed_values() {
        let data = gen_cfg.generate(seed);
        let stream =
            UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
        let ops = stream.ops();
        let truth = DataDistribution::from_values(&stream.final_multiset());
        let batches: Vec<Vec<UpdateOp>> = ops
            .chunks(cfg.batch_size)
            .map(<[UpdateOp]>::to_vec)
            .collect();
        for (wi, &w) in writers.iter().enumerate() {
            for (di, &design) in designs.iter().enumerate() {
                let serving = Serving::build(
                    design,
                    cfg.spec,
                    cfg.memory,
                    cfg.shards,
                    (0, domain_max),
                    seed,
                );
                let secs = ingest(&serving, &batches, w);
                per_tp[wi][di].push(ops.len() as f64 / secs / 1e6);
                per_ks[wi][di].push(ks_error(&serving.snapshot(), &truth));
            }
        }
    }
    for (wi, &w) in writers.iter().enumerate() {
        for di in 0..designs.len() {
            tp_series[di].push(w as f64, mean(per_tp[wi][di].drain(..)));
            ks_series[di].push(w as f64, mean(per_ks[wi][di].drain(..)));
        }
    }

    let subtitle = format!(
        "{} · {} shards · {:.2} KB · {}-update batches",
        cfg.spec.label(),
        cfg.shards,
        cfg.memory.kb(),
        cfg.batch_size
    );
    ServeReport {
        throughput: FigureResult {
            id: "serve-throughput".into(),
            title: format!("Multi-writer ingestion throughput ({subtitle})"),
            x_label: "Writers".into(),
            y_label: "Throughput [M updates/s]".into(),
            series: tp_series,
        },
        accuracy: FigureResult {
            id: "serve-accuracy".into(),
            title: format!("Estimation error after replay ({subtitle})"),
            x_label: "Writers".into(),
            y_label: "KS statistic".into(),
            series: ks_series,
        },
    }
}

/// The figures a read-mix replay produces: reader-heavy serving against
/// a live committing writer, the deployment the paper's usability claim
/// describes (estimates keep flowing while the histogram is maintained).
#[derive(Debug, Clone, PartialEq)]
pub struct ReadMixReport {
    /// Hot-path probe throughput (million estimates/s) vs reader count,
    /// one series per design, with one writer committing throughout.
    pub throughput: FigureResult,
    /// Front-cache hit rate (hits / (hits + misses)) over the mix phase
    /// vs reader count, one series per design.
    pub hit_rate: FigureResult,
}

impl ReadMixReport {
    /// Both figures as one markdown document.
    pub fn to_markdown(&self) -> String {
        format!(
            "{}{}",
            self.throughput.to_markdown(),
            self.hit_rate.to_markdown()
        )
    }

    /// Both figures as one JSON document
    /// (`{"throughput": {...}, "hit_rate": {...}}`) — what
    /// `repro serve --read-mix --json` emits and CI folds into the
    /// `BENCH_serve` artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"throughput\":{},\"hit_rate\":{}}}\n",
            self.throughput.to_json(),
            self.hit_rate.to_json()
        )
    }
}

/// Runs the read-mix replay: for every reader count in `readers`, `R`
/// reader threads hammer the wait-free hot path ([`Serving::probe_round`])
/// while one writer commits the second half of the stream (the first
/// half is pre-ingested so probes see a populated histogram). Records
/// probe throughput and front-cache hit rate per design, averaged over
/// `opts` seeds.
///
/// The replay asserts the read path's consistency contract as it
/// measures: the slow-render counter must not move during the mix phase
/// — readers on the current epoch never fall back to the gated render,
/// no matter how hard the writer commits.
///
/// # Panics
/// Panics if a probe observes a slow render (contract violation).
pub fn run_read_mix(cfg: ServeConfig, readers: &[usize], opts: RunOptions) -> ReadMixReport {
    let domain_max = opts.domain_max.unwrap_or(5000);
    let gen_cfg = replay_gen_config(cfg, opts, domain_max);
    let designs = ServeDesign::all();
    let mut tp_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut hit_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();

    let mut per_tp: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; readers.len()];
    let mut per_hit: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; readers.len()];
    for seed in opts.seed_values() {
        let data = gen_cfg.generate(seed);
        let stream =
            UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
        let ops = stream.ops();
        let batches: Vec<Vec<UpdateOp>> = ops
            .chunks(cfg.batch_size)
            .map(<[UpdateOp]>::to_vec)
            .collect();
        let (warm, live) = batches.split_at(batches.len() / 2);
        for (ri, &r) in readers.iter().enumerate() {
            let r = r.max(1);
            for (di, &design) in designs.iter().enumerate() {
                let serving = Serving::build(
                    design,
                    cfg.spec,
                    cfg.memory,
                    cfg.shards,
                    (0, domain_max),
                    seed,
                );
                for batch in warm {
                    serving.apply(batch);
                }
                serving.flush();
                let before = serving.read_stats();
                let done = AtomicBool::new(false);
                let probes = AtomicU64::new(0);
                let t0 = std::time::Instant::now();
                std::thread::scope(|scope| {
                    for t in 0..r {
                        let serving = &serving;
                        let done = &done;
                        let probes = &probes;
                        scope.spawn(move || {
                            let mut i = t as u64;
                            let mut local = 0u64;
                            let mut sink = 0.0f64;
                            while !done.load(Ordering::Acquire) || local == 0 {
                                sink += serving.probe_round(i, (0, domain_max));
                                i += 1;
                                local += PROBES_PER_ROUND;
                            }
                            std::hint::black_box(sink);
                            probes.fetch_add(local, Ordering::Relaxed);
                        });
                    }
                    // The writer runs to completion inside its own scope,
                    // then the readers' flag flips: the mix phase spans
                    // the entire commit burst.
                    std::thread::scope(|writer| {
                        let serving = &serving;
                        writer.spawn(move || {
                            for batch in live {
                                serving.apply(batch);
                            }
                            serving.flush();
                        });
                    });
                    done.store(true, Ordering::Release);
                });
                let secs = t0.elapsed().as_secs_f64();
                let after = serving.read_stats();
                assert_eq!(
                    after.slow_renders,
                    before.slow_renders,
                    "{}: hot path slow-rendered during the read mix",
                    design.label()
                );
                per_tp[ri][di].push(probes.load(Ordering::Relaxed) as f64 / secs / 1e6);
                let (hits, misses) = (
                    after.cache_hits - before.cache_hits,
                    after.cache_misses - before.cache_misses,
                );
                per_hit[ri][di].push(hits as f64 / ((hits + misses).max(1)) as f64);
            }
        }
    }
    for (ri, &r) in readers.iter().enumerate() {
        for di in 0..designs.len() {
            tp_series[di].push(r as f64, mean(per_tp[ri][di].drain(..)));
            hit_series[di].push(r as f64, mean(per_hit[ri][di].drain(..)));
        }
    }

    let subtitle = format!(
        "{} · {} shards · {:.2} KB · 1 committing writer",
        cfg.spec.label(),
        cfg.shards,
        cfg.memory.kb()
    );
    ReadMixReport {
        throughput: FigureResult {
            id: "read-mix-throughput".into(),
            title: format!("Hot-path estimate throughput under commits ({subtitle})"),
            x_label: "Readers".into(),
            y_label: "Throughput [M estimates/s]".into(),
            series: tp_series,
        },
        hit_rate: FigureResult {
            id: "read-mix-hit-rate".into(),
            title: format!("Front-cache hit rate under commits ({subtitle})"),
            x_label: "Readers".into(),
            y_label: "Cache hit rate".into(),
            series: hit_series,
        },
    }
}

/// The policy the re-shard replay and the `contention` bench arm run
/// with: eager enough to fire within a `--quick`-scale replay (a few
/// dozen epochs), so the smoke artifact actually captures a re-shard.
pub const RESHARD_POLICY: ReshardPolicy = ReshardPolicy {
    skew_threshold: 1.25,
    min_interval_epochs: 8,
    min_load: 2048,
};

/// The figures a re-shard replay produces: the static equal-width plan
/// versus a policy-armed column, on the same Zipf-skewed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReshardReport {
    /// Ingestion throughput (million updates/s) vs writer count.
    pub throughput: FigureResult,
    /// Shard-load balance (max/mean routed ops; 1 = perfectly balanced)
    /// vs writer count. The static arm's counters span the whole
    /// replay; the re-sharded arm's span the final borders — its
    /// steady-state balance.
    pub balance: FigureResult,
    /// Final estimation error (KS vs the exact live distribution) vs
    /// writer count.
    pub accuracy: FigureResult,
}

impl ReshardReport {
    /// All three figures as one markdown document.
    pub fn to_markdown(&self) -> String {
        format!(
            "{}{}{}",
            self.throughput.to_markdown(),
            self.balance.to_markdown(),
            self.accuracy.to_markdown()
        )
    }

    /// All three figures as one JSON document
    /// (`{"throughput": {...}, "balance": {...}, "accuracy": {...}}`) —
    /// what `repro serve --reshard --json` emits and CI folds into the
    /// `BENCH_serve` artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"throughput\":{},\"balance\":{},\"accuracy\":{}}}\n",
            self.throughput.to_json(),
            self.balance.to_json(),
            self.accuracy.to_json()
        )
    }
}

/// Runs the re-shard replay: a Zipf-skewed `dh_gen` stream (skew from
/// `cfg.skew`, default 2.5) is ingested into two sharded-locks columns —
/// one frozen on its registration-time equal-width plan, one armed with
/// [`RESHARD_POLICY`] — and the replay records throughput, final
/// shard-load balance, and final KS per writer count, averaged over
/// `opts` seeds.
pub fn run_reshard(cfg: ServeConfig, writers: &[usize], opts: RunOptions) -> ReshardReport {
    let domain_max = opts.domain_max.unwrap_or(5000);
    let skew = cfg.skew.unwrap_or(2.5);
    let gen_cfg = replay_gen_config(
        ServeConfig {
            skew: Some(skew),
            ..cfg
        },
        opts,
        domain_max,
    );
    let arms: [(&str, Option<ReshardPolicy>); 2] =
        [("static-plan", None), ("resharded", Some(RESHARD_POLICY))];
    let mut tp_series: Vec<Series> = arms.iter().map(|&(label, _)| Series::new(label)).collect();
    let mut bal_series: Vec<Series> = arms.iter().map(|&(label, _)| Series::new(label)).collect();
    let mut ks_series: Vec<Series> = arms.iter().map(|&(label, _)| Series::new(label)).collect();

    let mut per_tp: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); arms.len()]; writers.len()];
    let mut per_bal: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); arms.len()]; writers.len()];
    let mut per_ks: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); arms.len()]; writers.len()];
    for seed in opts.seed_values() {
        let data = gen_cfg.generate(seed);
        let stream =
            UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
        let ops = stream.ops();
        let truth = DataDistribution::from_values(&stream.final_multiset());
        let batches: Vec<Vec<UpdateOp>> = ops
            .chunks(cfg.batch_size)
            .map(<[UpdateOp]>::to_vec)
            .collect();
        for (wi, &w) in writers.iter().enumerate() {
            for (ai, &(_, policy)) in arms.iter().enumerate() {
                let serving = Serving::build_with(
                    ServeDesign::ShardedLock,
                    cfg.spec,
                    cfg.memory,
                    cfg.shards,
                    (0, domain_max),
                    seed,
                    policy,
                );
                let secs = ingest(&serving, &batches, w);
                per_tp[wi][ai].push(ops.len() as f64 / secs / 1e6);
                per_bal[wi][ai].push(load_balance(&serving.shard_load()));
                per_ks[wi][ai].push(ks_error(&serving.snapshot(), &truth));
            }
        }
    }
    for (wi, &w) in writers.iter().enumerate() {
        for ai in 0..arms.len() {
            tp_series[ai].push(w as f64, mean(per_tp[wi][ai].drain(..)));
            bal_series[ai].push(w as f64, mean(per_bal[wi][ai].drain(..)));
            ks_series[ai].push(w as f64, mean(per_ks[wi][ai].drain(..)));
        }
    }

    let subtitle = format!(
        "{} · {} shards · Zipf skew {:.2} · {:.2} KB · {}-update batches",
        cfg.spec.label(),
        cfg.shards,
        skew,
        cfg.memory.kb(),
        cfg.batch_size
    );
    ReshardReport {
        throughput: FigureResult {
            id: "reshard-throughput".into(),
            title: format!("Ingestion throughput, static vs dynamic borders ({subtitle})"),
            x_label: "Writers".into(),
            y_label: "Throughput [M updates/s]".into(),
            series: tp_series,
        },
        balance: FigureResult {
            id: "reshard-balance".into(),
            title: format!("Shard-load balance, max/mean routed ops ({subtitle})"),
            x_label: "Writers".into(),
            y_label: "Max/mean shard load".into(),
            series: bal_series,
        },
        accuracy: FigureResult {
            id: "reshard-accuracy".into(),
            title: format!("Estimation error after replay ({subtitle})"),
            x_label: "Writers".into(),
            y_label: "KS statistic".into(),
            series: ks_series,
        },
    }
}

/// The policy the autoscale replay arms: thresholds matched to the
/// replay's fixed warm/burst/idle phase batch sizes, so even a
/// `--quick` run walks the full scale-up / scale-down cycle within a
/// few dozen epochs.
pub const AUTOSCALE_POLICY: AutoscalePolicy = AutoscalePolicy {
    min_shards: 2,
    max_shards: 16,
    scale_up_rate: 2048,
    scale_down_rate: 64,
    skew_threshold: 2.0,
    min_interval_epochs: 4,
    min_load: 2048,
};

/// The autoscale replay's phases: `(label, commits, updates per
/// commit)`. The warm phase sits between the scale thresholds (no
/// resizing), the Zipf burst commits above [`AutoscalePolicy::scale_up_rate`]
/// (the policy doubles `k` to its cap), and the idle trickle falls under
/// [`AutoscalePolicy::scale_down_rate`] (the policy halves `k` back to
/// its floor).
const AUTOSCALE_PHASES: [(&str, usize, usize); 3] =
    [("warm", 16, 256), ("burst", 24, 4096), ("idle", 32, 16)];

/// The figures an autoscale replay produces: the shard-count trajectory
/// an [`AutoscalePolicy`]-armed column walks through a load cycle, and
/// what each phase ingested.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleReport {
    /// Live shard count vs published epoch, one series per phase (the
    /// phases are contiguous on the epoch axis).
    pub shards: FigureResult,
    /// Ingestion throughput (million updates/s) per phase (x = phase
    /// index in warm, burst, idle order).
    pub throughput: FigureResult,
}

impl AutoscaleReport {
    /// Both figures as one markdown document.
    pub fn to_markdown(&self) -> String {
        format!(
            "{}{}",
            self.shards.to_markdown(),
            self.throughput.to_markdown()
        )
    }

    /// Both figures as one JSON document
    /// (`{"shards": {...}, "throughput": {...}}`) — what
    /// `repro serve --autoscale --json` emits and CI folds into the
    /// `BENCH_serve` artifact as its seventh key.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shards\":{},\"throughput\":{}}}\n",
            self.shards.to_json(),
            self.throughput.to_json()
        )
    }
}

/// Runs the autoscale replay: one sharded-locks column armed with
/// [`AUTOSCALE_POLICY`] (starting at the policy's floor) ingests a
/// three-phase load cycle — a moderate uniform warm-up, a Zipf-skewed
/// burst, an idle trickle — and the replay samples the live shard count
/// ([`ColumnStore::column_shape`]) after every commit. The recorded
/// trajectory is the elastic story end to end: `k` doubles under the
/// burst up to the policy cap and halves back to the floor once the
/// load drains, each step a logged epoch-barrier rebuild. Phase lengths
/// are fixed (the cycle *is* the workload), so `opts` contributes seeds
/// and the domain, not scale.
pub fn run_autoscale(cfg: ServeConfig, opts: RunOptions) -> AutoscaleReport {
    let domain_max = opts.domain_max.unwrap_or(5000);
    let skew = cfg.skew.unwrap_or(2.5);
    let mut shard_series: Vec<Series> = AUTOSCALE_PHASES
        .iter()
        .map(|&(label, ..)| Series::new(label))
        .collect();
    let mut tp_series = vec![Series::new("autoscaled")];

    let mut per_shards: Vec<Vec<Vec<f64>>> = AUTOSCALE_PHASES
        .iter()
        .map(|&(_, commits, _)| vec![Vec::new(); commits])
        .collect();
    let mut per_tp: Vec<Vec<f64>> = vec![Vec::new(); AUTOSCALE_PHASES.len()];
    for seed in opts.seed_values() {
        let calm_ops = AUTOSCALE_PHASES[0].1 * AUTOSCALE_PHASES[0].2
            + AUTOSCALE_PHASES[2].1 * AUTOSCALE_PHASES[2].2;
        let burst_ops = AUTOSCALE_PHASES[1].1 * AUTOSCALE_PHASES[1].2;
        let calm = SyntheticConfig::default()
            .with_total_points(calm_ops as u64)
            .with_domain(0, domain_max)
            .generate(seed);
        let hot = SyntheticConfig::default()
            .with_total_points(burst_ops as u64)
            .with_domain(0, domain_max)
            .with_size_skew(skew)
            .with_spread_skew(skew)
            .generate(seed ^ 0xB00C);
        let serving = Serving::build_autoscale(
            ServeDesign::ShardedLock,
            cfg.spec,
            cfg.memory,
            AUTOSCALE_POLICY.min_shards,
            (0, domain_max),
            seed,
            AUTOSCALE_POLICY,
        );
        let mut calm_cursor = 0usize;
        let mut hot_cursor = 0usize;
        for (pi, &(_, commits, per_commit)) in AUTOSCALE_PHASES.iter().enumerate() {
            let t0 = std::time::Instant::now();
            for commit_samples in per_shards[pi].iter_mut().take(commits) {
                let (values, cursor) = if pi == 1 {
                    (&hot.values, &mut hot_cursor)
                } else {
                    (&calm.values, &mut calm_cursor)
                };
                let batch: Vec<UpdateOp> = values[*cursor..*cursor + per_commit]
                    .iter()
                    .map(|&v| UpdateOp::Insert(v))
                    .collect();
                *cursor += per_commit;
                serving.apply(&batch);
                let shape = serving
                    .store()
                    .column_shape(COLUMN)
                    .expect("column registered")
                    .expect("sharded design");
                commit_samples.push(shape.shards as f64);
            }
            serving.flush();
            let secs = t0.elapsed().as_secs_f64();
            per_tp[pi].push((commits * per_commit) as f64 / secs / 1e6);
        }
    }
    let mut epoch = 1usize;
    for (pi, &(_, commits, _)) in AUTOSCALE_PHASES.iter().enumerate() {
        for commit_samples in per_shards[pi].iter_mut().take(commits) {
            shard_series[pi].push(epoch as f64, mean(commit_samples.drain(..)));
            epoch += 1;
        }
        tp_series[0].push(pi as f64, mean(per_tp[pi].drain(..)));
    }

    let subtitle = format!(
        "{} · k in [{}, {}] · {:.2} KB · Zipf skew {:.2} burst",
        cfg.spec.label(),
        AUTOSCALE_POLICY.min_shards,
        AUTOSCALE_POLICY.max_shards,
        cfg.memory.kb(),
        skew
    );
    AutoscaleReport {
        shards: FigureResult {
            id: "autoscale-shards".into(),
            title: format!("Shard count under an autoscaled load cycle ({subtitle})"),
            x_label: "Epoch".into(),
            y_label: "Shards".into(),
            series: shard_series,
        },
        throughput: FigureResult {
            id: "autoscale-throughput".into(),
            title: format!("Ingestion throughput per phase ({subtitle})"),
            x_label: "Phase".into(),
            y_label: "Throughput [M updates/s]".into(),
            series: tp_series,
        },
    }
}

/// The changelog options the durable replay runs with: batched fsyncs
/// (the throughput-oriented durability point), **no** checkpoint cadence
/// — so recovery replays the *entire* changelog and the recovery figure
/// measures pure replay throughput — and a minimal time-travel ring.
pub const DURABLE_OPTIONS: DurableOptions = DurableOptions {
    sync: SyncPolicy::Batched(64),
    checkpoint_every: None,
    retain_generations: 2,
};

/// The figures a durable replay produces: what WAL-backed durability
/// costs on the ingest path, and how fast a crashed store replays back.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableReport {
    /// Durable ingestion throughput (million updates/s) vs writer count,
    /// one series per design — every publication hits the changelog
    /// before the next batch lands.
    pub throughput: FigureResult,
    /// Recovery-replay throughput (million updates/s) vs writer count:
    /// the store is dropped after ingest and `DurableStore::open` timed
    /// while it replays the full changelog.
    pub recovery: FigureResult,
}

impl DurableReport {
    /// Both figures as one markdown document.
    pub fn to_markdown(&self) -> String {
        format!(
            "{}{}",
            self.throughput.to_markdown(),
            self.recovery.to_markdown()
        )
    }

    /// Both figures as one JSON document
    /// (`{"throughput": {...}, "recovery": {...}}`) — what
    /// `repro serve --durable --json` emits and CI folds into the
    /// `BENCH_serve` artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"throughput\":{},\"recovery\":{}}}\n",
            self.throughput.to_json(),
            self.recovery.to_json()
        )
    }
}

/// Runs the durable replay: for every writer count in `writers`, ingest
/// an identical `dh_gen` random-insertion stream through all three
/// designs behind a [`DurableStore`] ([`DURABLE_OPTIONS`]), then drop
/// the store and time a crash-recovery reopen of the changelog.
/// Records durable ingestion throughput and recovery-replay throughput,
/// averaged over `opts` seeds.
///
/// `wal_root` picks where the changelogs live: `None` uses a fresh
/// [`TempDir`] per cell (removed when the cell finishes); `Some(root)`
/// writes each cell's changelog to `root/{design}-seed{S}-w{W}` and
/// keeps it for inspection (any stale directory is removed first).
///
/// The replay asserts the recovery contract as it measures: the
/// reopened store must land on the live store's exact epoch and serve a
/// bit-identical total count — a recovery that "almost" replays fails
/// the bench instead of skewing the figure.
///
/// # Panics
/// Panics if a changelog cannot be opened or a recovery diverges from
/// the live store (contract violation).
pub fn run_durable(
    cfg: ServeConfig,
    writers: &[usize],
    opts: RunOptions,
    wal_root: Option<&Path>,
) -> DurableReport {
    let domain_max = opts.domain_max.unwrap_or(5000);
    let gen_cfg = replay_gen_config(cfg, opts, domain_max);
    let designs = ServeDesign::all();
    let mut tp_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut rec_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();

    let mut per_tp: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; writers.len()];
    let mut per_rec: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; writers.len()];
    for seed in opts.seed_values() {
        let data = gen_cfg.generate(seed);
        let stream =
            UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
        let ops = stream.ops();
        let batches: Vec<Vec<UpdateOp>> = ops
            .chunks(cfg.batch_size)
            .map(<[UpdateOp]>::to_vec)
            .collect();
        for (wi, &w) in writers.iter().enumerate() {
            for (di, &design) in designs.iter().enumerate() {
                let (_tmp, dir): (Option<TempDir>, PathBuf) = match wal_root {
                    Some(root) => {
                        let d = root.join(format!("{}-seed{seed}-w{w}", design.label()));
                        let _ = std::fs::remove_dir_all(&d);
                        (None, d)
                    }
                    None => {
                        let t = TempDir::new("serve-durable");
                        let p = t.path().to_path_buf();
                        (Some(t), p)
                    }
                };
                let serving = Serving::build_durable(
                    design,
                    cfg.spec,
                    cfg.memory,
                    cfg.shards,
                    (0, domain_max),
                    seed,
                    &dir,
                    DURABLE_OPTIONS,
                );
                let secs = ingest(&serving, &batches, w);
                per_tp[wi][di].push(ops.len() as f64 / secs / 1e6);
                let live_epoch = serving.store().epoch();
                let live_bits = serving.snapshot().total_count().to_bits();
                drop(serving);
                let t0 = std::time::Instant::now();
                let recovered = DurableStore::open(&dir, design.store_kind(), DURABLE_OPTIONS)
                    .expect("recover changelog");
                let rsecs = t0.elapsed().as_secs_f64();
                assert_eq!(
                    recovered.epoch(),
                    live_epoch,
                    "{}: recovery lost epochs",
                    design.label()
                );
                assert_eq!(
                    recovered
                        .snapshot(COLUMN)
                        .expect("recovered column")
                        .total_count()
                        .to_bits(),
                    live_bits,
                    "{}: recovery diverged from the live store",
                    design.label()
                );
                per_rec[wi][di].push(ops.len() as f64 / rsecs.max(1e-9) / 1e6);
            }
        }
    }
    for (wi, &w) in writers.iter().enumerate() {
        for di in 0..designs.len() {
            tp_series[di].push(w as f64, mean(per_tp[wi][di].drain(..)));
            rec_series[di].push(w as f64, mean(per_rec[wi][di].drain(..)));
        }
    }

    let subtitle = format!(
        "{} · {} shards · {:.2} KB · {}-update batches · batched fsync",
        cfg.spec.label(),
        cfg.shards,
        cfg.memory.kb(),
        cfg.batch_size
    );
    DurableReport {
        throughput: FigureResult {
            id: "durable-throughput".into(),
            title: format!("Durable ingestion throughput ({subtitle})"),
            x_label: "Writers".into(),
            y_label: "Throughput [M updates/s]".into(),
            series: tp_series,
        },
        recovery: FigureResult {
            id: "durable-recovery".into(),
            title: format!("Crash-recovery replay throughput ({subtitle})"),
            x_label: "Writers".into(),
            y_label: "Replay [M updates/s]".into(),
            series: rec_series,
        },
    }
}

/// The changelog options the replica replay runs with: batched fsyncs
/// on the leader (the follower tails the page cache, so staleness is
/// bounded by the unsynced window, not by it alone), **no** checkpoint
/// cadence — the follower's whole history is then pure log replay,
/// which is the regime where replicated state is *bit*-identical to the
/// leader's, so the spot checks can demand exact equality — and a ring
/// deep enough that spot checks usually find their epoch still
/// retained.
pub const REPLICA_OPTIONS: DurableOptions = DurableOptions {
    sync: SyncPolicy::Batched(64),
    checkpoint_every: None,
    retain_generations: 8,
};

/// The figures a replica replay produces: what follower-side serving
/// delivers while the leader commits, and how stale it admits to being.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// Follower probe throughput (million estimates/s, summed across
    /// followers) vs replica count, one series per design.
    pub throughput: FigureResult,
    /// Mean reported staleness (`Follower::lag_epochs`, sampled once
    /// per probe round) vs replica count, one series per design.
    pub lag_mean: FigureResult,
    /// Max reported staleness over the replay vs replica count, one
    /// series per design.
    pub lag_max: FigureResult,
    /// Fraction of staleness samples above the `--lag-target` bound,
    /// when one was requested.
    pub lag_misses: Option<FigureResult>,
}

impl ReplicaReport {
    /// All figures as one markdown document.
    pub fn to_markdown(&self) -> String {
        let mut md = format!(
            "{}{}{}",
            self.throughput.to_markdown(),
            self.lag_mean.to_markdown(),
            self.lag_max.to_markdown()
        );
        if let Some(misses) = &self.lag_misses {
            md.push_str(&misses.to_markdown());
        }
        md
    }

    /// All figures as one JSON document
    /// (`{"throughput": {...}, "lag_mean": {...}, "lag_max": {...}}`,
    /// plus `"lag_misses"` when a lag target was set) — what
    /// `repro serve --replicas --json` emits and CI folds into the
    /// `BENCH_serve` artifact as its fifth key.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"throughput\":{},\"lag_mean\":{},\"lag_max\":{}",
            self.throughput.to_json(),
            self.lag_mean.to_json(),
            self.lag_max.to_json()
        );
        if let Some(misses) = &self.lag_misses {
            json.push_str(&format!(",\"lag_misses\":{}", misses.to_json()));
        }
        json.push_str("}\n");
        json
    }
}

/// A snapshot's rendered spans as raw bits — the exact-equality
/// currency of the replica spot checks (floats compared as payloads,
/// never tolerances).
fn span_bits(snap: &Snapshot) -> Vec<(u64, u64, u64)> {
    snap.spans()
        .iter()
        .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
        .collect()
}

/// Runs the replica replay: for every follower count in `replicas`, a
/// durable leader ([`REPLICA_OPTIONS`]) ingests the stream with one
/// committing writer while `R` [`dh_replica::Follower`]s tail its
/// changelog directory, serve [`Serving::probe_round`]'s read mix, and
/// sample their reported staleness after every poll. Records follower
/// probe throughput (summed), mean and max reported lag, and — when
/// `lag_target` is set — the fraction of samples exceeding it, per
/// design, averaged over `opts` seeds.
///
/// The replay asserts the replication contract as it measures, twice
/// over: every ~64 probe rounds a follower takes its own `SnapshotSet`,
/// asks the leader for the *same epoch* via `snapshot_set_at`, and
/// demands bit-identical spans (skipping only if retention already
/// evicted that epoch); and once the leader finishes, every follower
/// must catch up to the leader's exact final epoch and serve
/// bit-identical spans. A replica that is "almost right" fails the
/// bench instead of skewing the figure.
///
/// # Panics
/// Panics if a follower poll errors, a spot check or the final
/// convergence check diverges from the leader (contract violations), or
/// the changelog cannot be opened.
pub fn run_replicas(
    cfg: ServeConfig,
    replicas: &[usize],
    opts: RunOptions,
    lag_target: Option<u64>,
) -> ReplicaReport {
    use dh_replica::Follower;

    let domain_max = opts.domain_max.unwrap_or(5000);
    let gen_cfg = replay_gen_config(cfg, opts, domain_max);
    let designs = ServeDesign::all();
    let mut tp_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut mean_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut max_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut miss_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();

    let mut per_tp: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; replicas.len()];
    let mut per_mean: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; replicas.len()];
    let mut per_max: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; replicas.len()];
    let mut per_miss: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; replicas.len()];
    for seed in opts.seed_values() {
        let data = gen_cfg.generate(seed);
        let stream =
            UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
        let ops = stream.ops();
        let batches: Vec<Vec<UpdateOp>> = ops
            .chunks(cfg.batch_size)
            .map(<[UpdateOp]>::to_vec)
            .collect();
        for (ri, &r) in replicas.iter().enumerate() {
            let r = r.max(1);
            for (di, &design) in designs.iter().enumerate() {
                let tmp = TempDir::new("serve-replicas");
                let dir = tmp.path().to_path_buf();
                let serving = Serving::build_durable(
                    design,
                    cfg.spec,
                    cfg.memory,
                    cfg.shards,
                    (0, domain_max),
                    seed,
                    &dir,
                    REPLICA_OPTIONS,
                );
                let done = AtomicBool::new(false);
                let probes = AtomicU64::new(0);
                let lag_sum = AtomicU64::new(0);
                let lag_samples = AtomicU64::new(0);
                let lag_peak = AtomicU64::new(0);
                let lag_miss = AtomicU64::new(0);
                let t0 = std::time::Instant::now();
                std::thread::scope(|scope| {
                    for t in 0..r {
                        let (serving, dir) = (&serving, &dir);
                        let (done, probes) = (&done, &probes);
                        let (lag_sum, lag_samples) = (&lag_sum, &lag_samples);
                        let (lag_peak, lag_miss) = (&lag_peak, &lag_miss);
                        scope.spawn(move || {
                            let follower =
                                Follower::open(dir, design.store_kind()).expect("open follower");
                            let mut i = t as u64;
                            let mut local = 0u64;
                            let mut sink = 0.0f64;
                            let mut rounds = 0u64;
                            while !done.load(Ordering::Acquire) || local == 0 {
                                follower.poll().expect("follower poll");
                                if follower.contains(COLUMN) {
                                    sink += probe_store(&follower, i, (0, domain_max));
                                    i += 1;
                                    local += PROBES_PER_ROUND;
                                }
                                let lag = follower.lag_epochs();
                                lag_sum.fetch_add(lag, Ordering::Relaxed);
                                lag_samples.fetch_add(1, Ordering::Relaxed);
                                lag_peak.fetch_max(lag, Ordering::Relaxed);
                                if lag_target.is_some_and(|target| lag > target) {
                                    lag_miss.fetch_add(1, Ordering::Relaxed);
                                }
                                rounds += 1;
                                // Spot check: the follower's current
                                // whole-epoch state must be bit-identical
                                // to the leader's retained generation of
                                // that same epoch.
                                if rounds % 64 == 0 && follower.contains(COLUMN) {
                                    let ours =
                                        follower.snapshot_set(&[COLUMN]).expect("follower set");
                                    match serving.store().snapshot_set_at(&[COLUMN], ours.epoch()) {
                                        Ok(theirs) => assert_eq!(
                                            span_bits(ours.get(COLUMN).expect("follower column")),
                                            span_bits(theirs.get(COLUMN).expect("leader column")),
                                            "{}: follower diverged at epoch {}",
                                            design.label(),
                                            ours.epoch()
                                        ),
                                        // Retention moved on between our
                                        // poll and the lookup; nothing to
                                        // compare against.
                                        Err(CatalogError::EpochEvicted(_)) => {}
                                        Err(e) => panic!("leader spot check: {e}"),
                                    }
                                }
                            }
                            std::hint::black_box(sink);
                            probes.fetch_add(local, Ordering::Relaxed);
                            // Convergence: once the leader stops, every
                            // follower must reach its exact final epoch
                            // and serve bit-identical spans.
                            while follower.epoch() < serving.store().epoch() {
                                follower.poll().expect("follower catch-up");
                                std::thread::yield_now();
                            }
                            assert_eq!(follower.epoch(), serving.store().epoch());
                            assert_eq!(
                                span_bits(&follower.snapshot(COLUMN).expect("follower column")),
                                span_bits(&serving.snapshot()),
                                "{}: follower did not converge bit-identically",
                                design.label()
                            );
                        });
                    }
                    // One committing writer, like the read mix: the
                    // measured phase spans the whole commit burst.
                    std::thread::scope(|writer| {
                        let serving = &serving;
                        let batches = &batches;
                        writer.spawn(move || {
                            for batch in batches {
                                serving.apply(batch);
                            }
                            serving.flush();
                        });
                    });
                    done.store(true, Ordering::Release);
                });
                let secs = t0.elapsed().as_secs_f64();
                per_tp[ri][di].push(probes.load(Ordering::Relaxed) as f64 / secs / 1e6);
                let samples = lag_samples.load(Ordering::Relaxed).max(1);
                per_mean[ri][di].push(lag_sum.load(Ordering::Relaxed) as f64 / samples as f64);
                per_max[ri][di].push(lag_peak.load(Ordering::Relaxed) as f64);
                per_miss[ri][di].push(lag_miss.load(Ordering::Relaxed) as f64 / samples as f64);
            }
        }
    }
    for (ri, &r) in replicas.iter().enumerate() {
        for di in 0..designs.len() {
            tp_series[di].push(r as f64, mean(per_tp[ri][di].drain(..)));
            mean_series[di].push(r as f64, mean(per_mean[ri][di].drain(..)));
            max_series[di].push(r as f64, mean(per_max[ri][di].drain(..)));
            miss_series[di].push(r as f64, mean(per_miss[ri][di].drain(..)));
        }
    }

    let subtitle = format!(
        "{} · {} shards · {:.2} KB · 1 committing leader writer",
        cfg.spec.label(),
        cfg.shards,
        cfg.memory.kb()
    );
    ReplicaReport {
        throughput: FigureResult {
            id: "replica-throughput".into(),
            title: format!("Follower estimate throughput while tailing ({subtitle})"),
            x_label: "Replicas".into(),
            y_label: "Throughput [M estimates/s]".into(),
            series: tp_series,
        },
        lag_mean: FigureResult {
            id: "replica-lag-mean".into(),
            title: format!("Mean reported staleness ({subtitle})"),
            x_label: "Replicas".into(),
            y_label: "Lag [epochs]".into(),
            series: mean_series,
        },
        lag_max: FigureResult {
            id: "replica-lag-max".into(),
            title: format!("Max reported staleness ({subtitle})"),
            x_label: "Replicas".into(),
            y_label: "Lag [epochs]".into(),
            series: max_series,
        },
        lag_misses: lag_target.map(|target| FigureResult {
            id: "replica-lag-misses".into(),
            title: format!("Staleness samples above {target} epochs ({subtitle})"),
            x_label: "Replicas".into(),
            y_label: "Miss fraction".into(),
            series: miss_series,
        }),
    }
}

/// The figures a multi-site replay produces: what a `GlobalCatalog`
/// composition over N member sites serves, healthy and degraded.
#[derive(Debug, Clone, PartialEq)]
pub struct SitesReport {
    /// Global probe throughput (million estimates/s — every estimate is
    /// a full cross-site composition) vs site count, one series per
    /// design backing the local member.
    pub throughput: FigureResult,
    /// Composed estimation error (KS vs the exact pooled distribution)
    /// vs site count, one series per design.
    pub accuracy: FigureResult,
    /// Site-probe failure fraction over the whole replay
    /// (`ReadStats::site_failures / ReadStats::site_probes`) vs site
    /// count, one series per design. Zero unless sites were killed.
    pub health: FigureResult,
    /// Composed KS against the *full* pooled distribution after `K`
    /// remote members are killed — the price of degradation, present
    /// only when the replay killed anyone.
    pub degraded: Option<FigureResult>,
}

impl SitesReport {
    /// All figures as one markdown document.
    pub fn to_markdown(&self) -> String {
        let mut md = format!(
            "{}{}{}",
            self.throughput.to_markdown(),
            self.accuracy.to_markdown(),
            self.health.to_markdown()
        );
        if let Some(degraded) = &self.degraded {
            md.push_str(&degraded.to_markdown());
        }
        md
    }

    /// All figures as one JSON document
    /// (`{"throughput": {...}, "accuracy": {...}, "health": {...}}`,
    /// plus `"degraded"` when members were killed) — what
    /// `repro serve --sites --json` emits and CI folds into the
    /// `BENCH_serve` artifact as its sixth key.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"throughput\":{},\"accuracy\":{},\"health\":{}",
            self.throughput.to_json(),
            self.accuracy.to_json(),
            self.health.to_json()
        );
        if let Some(degraded) = &self.degraded {
            json.push_str(&format!(",\"degraded\":{}", degraded.to_json()));
        }
        json.push_str("}\n");
        json
    }
}

/// Probe rounds per measured phase of the sites replay (each round is
/// [`PROBES_PER_ROUND`] estimates, each a full cross-site composition
/// with socket hops to every remote member).
const SITE_PROBE_ROUNDS: u64 = 32;

/// Runs the multi-site replay: for every member count `N` in `sites`,
/// the generated stream is dealt round-robin across `N` members — the
/// first backed by the design's in-process store ([`Serving`] handing
/// its store to a `LocalSite`), the rest socket-remote `DurableStore`s
/// behind `SiteServer`s, registered and fed *over the wire*. A
/// read-only `GlobalCatalog` composes them under `strategy` (the
/// histogram-then-union strategy is SSBM-reduced to the configured
/// memory's bucket budget, mirroring the paper's Section 8 setup), and
/// the replay records composition throughput and composed KS against
/// the exact pooled distribution, averaged over `opts` seeds.
///
/// With `kill > 0`, the replay then stops that many remote servers
/// (never the local member) and measures the degraded phase: composed
/// KS against the *full* truth (the degradation price) and the
/// site-probe failure fraction, while asserting the degradation
/// contract — reads keep succeeding, the killed members are reported
/// `Unreachable`, and `ReadStats::degraded_reads` advances.
///
/// # Panics
/// Panics if a healthy read fails, a degraded read fails or
/// under-reports its failures, or a store/server cannot be built
/// (contract violations, not measurement noise).
pub fn run_sites(
    cfg: ServeConfig,
    sites: &[usize],
    kill: usize,
    strategy: dh_distributed::GlobalStrategy,
    opts: RunOptions,
) -> SitesReport {
    use dh_core::HistogramClass;
    use dh_distributed::GlobalStrategy;
    use dh_site::{GlobalCatalog, LocalSite, RemoteSite, Site, SiteServer, SiteStatus};

    let domain_max = opts.domain_max.unwrap_or(5000);
    let gen_cfg = replay_gen_config(cfg, opts, domain_max);
    let designs = ServeDesign::all();
    let mut tp_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut ks_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut health_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();
    let mut deg_series: Vec<Series> = designs.iter().map(|d| Series::new(d.label())).collect();

    let mut per_tp: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; sites.len()];
    let mut per_ks: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; sites.len()];
    let mut per_health: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; sites.len()];
    let mut per_deg: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); designs.len()]; sites.len()];
    for seed in opts.seed_values() {
        let data = gen_cfg.generate(seed);
        let truth = DataDistribution::from_values(&data.values);
        for (ni, &n) in sites.iter().enumerate() {
            let n = n.max(1);
            let kill = kill.min(n - 1);
            for (di, &design) in designs.iter().enumerate() {
                // Member 0: the design's in-process store. Members
                // 1..n: durable stores behind socket servers, set up
                // entirely over the wire.
                let local = Serving::build(
                    design,
                    cfg.spec,
                    cfg.memory,
                    cfg.shards,
                    (0, domain_max),
                    seed,
                )
                .into_store();
                let mut members: Vec<std::sync::Arc<dyn Site>> =
                    vec![std::sync::Arc::new(LocalSite::new("site0", local))];
                let mut tmps: Vec<TempDir> = Vec::new();
                let mut servers: Vec<SiteServer> = Vec::new();
                for s in 1..n {
                    let tmp = TempDir::new("serve-sites");
                    let store = std::sync::Arc::new(
                        DurableStore::open(
                            tmp.path(),
                            StoreKind::Single,
                            DurableOptions {
                                sync: SyncPolicy::Off,
                                ..DurableOptions::default()
                            },
                        )
                        .expect("open site store"),
                    );
                    let server = SiteServer::spawn(store).expect("spawn site server");
                    let site = RemoteSite::new(format!("site{s}"), server.addr());
                    site.register(
                        COLUMN,
                        ColumnConfig::new(cfg.spec, cfg.memory).with_seed(seed),
                    )
                    .expect("register over the wire");
                    members.push(std::sync::Arc::new(site));
                    tmps.push(tmp);
                    servers.push(server);
                }
                // Deal the stream round-robin and commit per member in
                // `cfg.batch_size` batches (remote members commit over
                // the wire as the exact WAL records their replay logs).
                for (s, member) in members.iter().enumerate() {
                    let slice: Vec<i64> = data.values.iter().skip(s).step_by(n).copied().collect();
                    for chunk in slice.chunks(cfg.batch_size.max(1)) {
                        let mut batch = dh_catalog::WriteBatch::new();
                        for &v in chunk {
                            batch.insert(COLUMN, v);
                        }
                        member.commit(batch).expect("site commit");
                    }
                }

                let mut global = GlobalCatalog::new(members).with_strategy(strategy);
                if strategy == GlobalStrategy::HistogramThenUnion {
                    global = global
                        .with_budget(cfg.memory.buckets(HistogramClass::BorderAndCount).max(1));
                }

                // Healthy phase: timed composition probes + final KS.
                let t0 = std::time::Instant::now();
                let mut sink = 0.0f64;
                for i in 0..SITE_PROBE_ROUNDS {
                    sink += probe_store(&global, i, (0, domain_max));
                }
                let secs = t0.elapsed().as_secs_f64();
                std::hint::black_box(sink);
                per_tp[ni][di].push((SITE_PROBE_ROUNDS * PROBES_PER_ROUND) as f64 / secs / 1e6);
                let healthy = global.snapshot(COLUMN).expect("healthy global read");
                per_ks[ni][di].push(ks_error(&healthy, &truth));

                // Degraded phase: kill the last `kill` remote members;
                // reads must keep succeeding and must say what broke.
                if kill > 0 {
                    for server in servers.iter_mut().rev().take(kill) {
                        server.stop();
                    }
                    let degraded = global.snapshot(COLUMN).expect("degraded global read");
                    per_deg[ni][di].push(ks_error(&degraded, &truth));
                    let unreachable = global
                        .site_statuses()
                        .iter()
                        .filter(|(_, s)| *s == SiteStatus::Unreachable)
                        .count();
                    assert!(
                        unreachable >= kill,
                        "{}: killed {kill} but only {unreachable} reported Unreachable",
                        design.label()
                    );
                    let stats = global.read_stats();
                    assert!(
                        stats.degraded_reads >= 1 && stats.site_failures >= kill as u64,
                        "{}: degradation unreported: {stats:?}",
                        design.label()
                    );
                }
                let stats = global.read_stats();
                per_health[ni][di]
                    .push(stats.site_failures as f64 / stats.site_probes.max(1) as f64);
            }
        }
    }
    for (ni, &n) in sites.iter().enumerate() {
        for di in 0..designs.len() {
            tp_series[di].push(n as f64, mean(per_tp[ni][di].drain(..)));
            ks_series[di].push(n as f64, mean(per_ks[ni][di].drain(..)));
            health_series[di].push(n as f64, mean(per_health[ni][di].drain(..)));
            if kill > 0 {
                deg_series[di].push(n as f64, mean(per_deg[ni][di].drain(..)));
            }
        }
    }

    let subtitle = format!(
        "{} · {} · {:.2} KB · 1 local + N-1 socket-remote members",
        cfg.spec.label(),
        strategy,
        cfg.memory.kb()
    );
    SitesReport {
        throughput: FigureResult {
            id: "sites-throughput".into(),
            title: format!("Global composition throughput ({subtitle})"),
            x_label: "Sites".into(),
            y_label: "Throughput [M estimates/s]".into(),
            series: tp_series,
        },
        accuracy: FigureResult {
            id: "sites-accuracy".into(),
            title: format!("Composed estimation error ({subtitle})"),
            x_label: "Sites".into(),
            y_label: "KS statistic".into(),
            series: ks_series,
        },
        health: FigureResult {
            id: "sites-health".into(),
            title: format!("Site-probe failure fraction ({subtitle})"),
            x_label: "Sites".into(),
            y_label: "Failed probes / probes".into(),
            series: health_series,
        },
        degraded: (kill > 0).then(|| FigureResult {
            id: "sites-degraded-accuracy".into(),
            title: format!("Composed error after killing {kill} member(s) ({subtitle})"),
            x_label: "Sites".into(),
            y_label: "KS statistic".into(),
            series: deg_series,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ReadHistogram;

    #[test]
    fn every_design_ingests_and_reads_back() {
        let batches: Vec<Vec<UpdateOp>> = (0..20)
            .map(|b| {
                (0..100)
                    .map(|i| UpdateOp::Insert((b * 100 + i) % 1000))
                    .collect()
            })
            .collect();
        for design in ServeDesign::all() {
            let serving = Serving::build(
                design,
                AlgoSpec::Dc,
                MemoryBudget::from_kb(1.0),
                4,
                (0, 999),
                7,
            );
            let secs = ingest(&serving, &batches, 3);
            assert!(secs > 0.0);
            let snap = serving.snapshot();
            assert!(
                (snap.total_count() - 2000.0).abs() < 1e-9,
                "{}: total {}",
                design.label(),
                snap.total_count()
            );
        }
    }

    #[test]
    fn load_balance_ratio() {
        assert_eq!(load_balance(&[]), 1.0);
        assert_eq!(load_balance(&[0, 0]), 1.0);
        assert_eq!(load_balance(&[10, 10, 10, 10]), 1.0);
        assert_eq!(load_balance(&[40, 0, 0, 0]), 4.0);
        assert!((load_balance(&[30, 10]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reshard_report_compares_static_and_dynamic_borders() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let report = run_reshard(ServeConfig::default(), &[1, 2], opts);
        for fig in [&report.throughput, &report.balance, &report.accuracy] {
            assert_eq!(fig.series.len(), 2);
            assert!(fig.series_named("static-plan").is_some());
            assert!(fig.series_named("resharded").is_some());
            for s in &fig.series {
                assert_eq!(s.points.len(), 2);
                assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
            }
        }
        // Balance ratios live in [1, shards].
        for s in &report.balance.series {
            assert!(s
                .points
                .iter()
                .all(|&(_, y)| (1.0..=8.0 + 1e-9).contains(&y)));
        }
        let json = report.to_json();
        assert!(json.contains("\"throughput\":{\"id\":\"reshard-throughput\""));
        assert!(json.contains("\"balance\":{\"id\":\"reshard-balance\""));
        assert!(json.contains("\"accuracy\":{\"id\":\"reshard-accuracy\""));
        let md = report.to_markdown();
        assert!(md.contains("reshard-balance"));
    }

    #[test]
    fn autoscale_report_scales_up_under_burst_and_back_down_idle() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let report = run_autoscale(ServeConfig::default(), opts);
        assert_eq!(report.shards.series.len(), 3);
        let warm = report.shards.series_named("warm").expect("warm series");
        let burst = report.shards.series_named("burst").expect("burst series");
        let idle = report.shards.series_named("idle").expect("idle series");
        let floor = AUTOSCALE_POLICY.min_shards as f64;
        let cap = AUTOSCALE_POLICY.max_shards as f64;
        // The warm phase sits between the thresholds: no resizing.
        assert!(warm.points.iter().all(|&(_, k)| k == floor), "{warm:?}");
        // The burst doubles k to the cap...
        let peak = burst.points.iter().map(|&(_, k)| k).fold(0.0, f64::max);
        assert_eq!(peak, cap, "{burst:?}");
        // ...and the idle trickle halves it back to the floor.
        assert_eq!(
            idle.points.last().expect("idle points").1,
            floor,
            "{idle:?}"
        );
        // Epochs are contiguous across phases.
        let epochs: Vec<f64> = [&warm.points, &burst.points, &idle.points]
            .iter()
            .flat_map(|pts| pts.iter().map(|&(x, _)| x))
            .collect();
        assert!(epochs.windows(2).all(|w| w[1] == w[0] + 1.0));
        let json = report.to_json();
        assert!(json.contains("\"shards\":{\"id\":\"autoscale-shards\""));
        assert!(json.contains("\"throughput\":{\"id\":\"autoscale-throughput\""));
        let md = report.to_markdown();
        assert!(md.contains("autoscale-shards") && md.contains("autoscale-throughput"));
    }

    #[test]
    fn read_mix_report_measures_wait_free_serving() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let report = run_read_mix(ServeConfig::default(), &[1, 2], opts);
        for fig in [&report.throughput, &report.hit_rate] {
            assert_eq!(fig.series.len(), 3);
            for s in &fig.series {
                assert_eq!(s.points.len(), 2);
                assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
            }
        }
        // Hit rates are fractions; a steady reader cycling 64 probe
        // shapes against a populated column must land some hits.
        for s in &report.hit_rate.series {
            assert!(s.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
            assert!(s.points.iter().any(|&(_, y)| y > 0.0));
        }
        let json = report.to_json();
        assert!(json.contains("\"throughput\":{\"id\":\"read-mix-throughput\""));
        assert!(json.contains("\"hit_rate\":{\"id\":\"read-mix-hit-rate\""));
        let md = report.to_markdown();
        assert!(md.contains("read-mix-throughput") && md.contains("read-mix-hit-rate"));
    }

    #[test]
    fn durable_report_measures_ingest_and_recovery() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let report = run_durable(ServeConfig::default(), &[1, 2], opts, None);
        for fig in [&report.throughput, &report.recovery] {
            assert_eq!(fig.series.len(), 3);
            for design in ServeDesign::all() {
                assert!(fig.series_named(design.label()).is_some());
            }
            for s in &fig.series {
                assert_eq!(s.points.len(), 2);
                assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y > 0.0));
            }
        }
        let json = report.to_json();
        assert!(json.contains("\"throughput\":{\"id\":\"durable-throughput\""));
        assert!(json.contains("\"recovery\":{\"id\":\"durable-recovery\""));
        let md = report.to_markdown();
        assert!(md.contains("durable-throughput") && md.contains("durable-recovery"));
    }

    #[test]
    fn replica_report_measures_follower_serving_and_lag() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let report = run_replicas(ServeConfig::default(), &[1, 2], opts, Some(64));
        let misses = report.lag_misses.as_ref().expect("lag target requested");
        for fig in [
            &report.throughput,
            &report.lag_mean,
            &report.lag_max,
            misses,
        ] {
            assert_eq!(fig.series.len(), 3);
            for design in ServeDesign::all() {
                assert!(fig.series_named(design.label()).is_some());
            }
            for s in &fig.series {
                assert_eq!(s.points.len(), 2);
                assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
            }
        }
        // Lag means never exceed lag maxima, and miss fractions are
        // fractions.
        for di in 0..3 {
            for p in 0..2 {
                assert!(
                    report.lag_mean.series[di].points[p].1
                        <= report.lag_max.series[di].points[p].1 + 1e-12
                );
            }
        }
        for s in &misses.series {
            assert!(s.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
        }
        let json = report.to_json();
        assert!(json.contains("\"throughput\":{\"id\":\"replica-throughput\""));
        assert!(json.contains("\"lag_mean\":{\"id\":\"replica-lag-mean\""));
        assert!(json.contains("\"lag_max\":{\"id\":\"replica-lag-max\""));
        assert!(json.contains("\"lag_misses\":{\"id\":\"replica-lag-misses\""));
        let md = report.to_markdown();
        assert!(md.contains("replica-throughput") && md.contains("replica-lag-max"));
        // Without a target there is no misses figure, and the JSON stays
        // a three-key document.
        let bare = run_replicas(ServeConfig::default(), &[1], opts, None);
        assert!(bare.lag_misses.is_none());
        assert!(!bare.to_json().contains("lag_misses"));
    }

    #[test]
    fn durable_replay_keeps_user_supplied_wal_dirs() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let root = TempDir::new("durable-walroot");
        run_durable(ServeConfig::default(), &[1], opts, Some(root.path()));
        // One changelog directory per (design, seed, writer-count) cell,
        // each still holding its segment file for inspection.
        let seed = opts.seed_values().next().unwrap();
        for design in ServeDesign::all() {
            let dir = root
                .path()
                .join(format!("{}-seed{seed}-w1", design.label()));
            assert!(dir.is_dir(), "{} changelog missing", dir.display());
            let has_segment = std::fs::read_dir(&dir)
                .unwrap()
                .any(|e| e.unwrap().file_name().to_string_lossy().ends_with(".seg"));
            assert!(has_segment, "{} has no segment file", dir.display());
        }
    }

    #[test]
    fn serve_report_covers_all_designs_and_writer_counts() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let report = run_serve(ServeConfig::default(), &[1, 2], opts);
        for fig in [&report.throughput, &report.accuracy] {
            assert_eq!(fig.series.len(), 3);
            for s in &fig.series {
                assert_eq!(s.points.len(), 2);
                assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
            }
        }
        for design in ServeDesign::all() {
            assert!(report.throughput.series_named(design.label()).is_some());
        }
        let md = report.to_markdown();
        assert!(md.contains("serve-throughput") && md.contains("serve-accuracy"));
        let json = report.to_json();
        assert!(json.contains("\"throughput\":{\"id\":\"serve-throughput\""));
        assert!(json.contains("\"accuracy\":{\"id\":\"serve-accuracy\""));
        assert!(json.contains("\"label\":\"sharded-channels\""));
    }

    #[test]
    fn sites_report_covers_designs_and_degradation() {
        let opts = RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        };
        let report = run_sites(
            ServeConfig::default(),
            &[2],
            1,
            dh_distributed::GlobalStrategy::HistogramThenUnion,
            opts,
        );
        for fig in [&report.throughput, &report.accuracy, &report.health] {
            assert_eq!(fig.series.len(), 3);
            for s in &fig.series {
                assert_eq!(s.points.len(), 1);
                assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
            }
        }
        // One member killed → the degraded figure exists and health saw
        // at least one failed probe.
        let degraded = report.degraded.as_ref().expect("kill=1 degraded figure");
        assert_eq!(degraded.id, "sites-degraded-accuracy");
        for s in &report.health.series {
            assert!(
                s.points[0].1 > 0.0,
                "{}: no failed probes recorded",
                s.label
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"throughput\":{\"id\":\"sites-throughput\""));
        assert!(json.contains("\"degraded\":{\"id\":\"sites-degraded-accuracy\""));
        // Without kills the fourth figure (and key) disappears.
        let healthy = run_sites(
            ServeConfig::default(),
            &[2],
            0,
            dh_distributed::GlobalStrategy::UnionThenHistogram,
            opts,
        );
        assert!(healthy.degraded.is_none());
        assert!(!healthy.to_json().contains("degraded"));
        for s in &healthy.health.series {
            assert_eq!(
                s.points[0].1, 0.0,
                "{}: healthy replay saw failures",
                s.label
            );
        }
    }
}
