//! `repro` — regenerate the paper's evaluation figures.
//!
//! ```text
//! repro all                      # every figure, paper-scale (slow)
//! repro fig5 fig8                # selected figures
//! repro --quick                  # 10% scale, 2 seeds (smoke test);
//!                                # omitting the figure list means "all"
//! repro all --seeds 5 --scale 0.5
//! repro all --out results        # write CSVs + summary.md to a directory
//! repro --list                   # list figure ids
//! repro custom --algos DC,SVO,AC40X [--workload random|sorted]
//!                                # KS-vs-memory for any algorithm mix,
//!                                # selected by name through the AlgoSpec
//!                                # registry
//! repro serve [--shards N] [--writers 1,2,4,8] [--algos DC]
//!                                # multi-writer catalog replay: ingestion
//!                                # throughput + final KS for the
//!                                # single-RwLock, sharded-locks and
//!                                # sharded-channels serving designs,
//!                                # all through one &dyn ColumnStore path
//! repro serve --json             # same, as machine-readable JSON on
//!                                # stdout (CI uploads it as the
//!                                # BENCH_serve.json artifact)
//! repro serve --reshard [--skew S]
//!                                # Zipf-skewed replay comparing the
//!                                # static equal-width shard plan against
//!                                # dynamic re-sharding: throughput,
//!                                # max/mean shard-load balance, KS
//! repro serve --read-mix [--readers 1,2,4,8]
//!                                # reader-heavy replay: R readers hammer
//!                                # the wait-free hot path while one
//!                                # writer commits — estimate throughput
//!                                # + front-cache hit rate per design
//! repro serve --durable [--wal-dir DIR]
//!                                # WAL-backed replay: the same designs
//!                                # behind DurableStore — durable ingest
//!                                # throughput + crash-recovery replay
//!                                # throughput (store dropped, changelog
//!                                # reopened and timed); --wal-dir keeps
//!                                # the changelogs for inspection
//! repro serve --replicas 1,2,4 [--lag-target E]
//!                                # replication replay: R dh_replica
//!                                # followers tail a committing durable
//!                                # leader's changelog and serve the read
//!                                # mix — follower estimate throughput +
//!                                # mean/max reported staleness (and the
//!                                # fraction of samples above E epochs),
//!                                # with bit-identity spot checks against
//!                                # the leader's retained generations
//! repro serve --autoscale        # elastic replay: one AutoscalePolicy-
//!                                # armed sharded column walks a warm →
//!                                # Zipf-burst → idle load cycle; the
//!                                # report tracks the live shard count
//!                                # doubling to the policy cap under the
//!                                # burst and halving back once idle,
//!                                # each step an epoch-barrier rebuild
//! repro serve --sites 1,2,4 [--kill K] [--strategy HU|UH]
//!                                # multi-site replay: for every count N a
//!                                # read-only GlobalCatalog composes one
//!                                # in-process member per design with N-1
//!                                # socket-remote SiteServers, fed over
//!                                # the wire — composition throughput,
//!                                # composed KS vs the pooled truth and
//!                                # the site-probe failure fraction;
//!                                # --kill stops K remote members and adds
//!                                # the degraded-accuracy figure
//! ```

use dh_bench::{
    all_figure_ids, run_autoscale, run_custom, run_durable, run_figure, run_read_mix, run_replicas,
    run_reshard, run_serve, run_sites, RunOptions, ServeConfig,
};
use dh_catalog::AlgoSpec;
use dh_distributed::GlobalStrategy;
use dh_gen::workload::WorkloadKind;
use std::io::Write;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--seeds N] [--scale F] [--out DIR] [--list] [figN...|all]\n\
         \x20      repro custom --algos LIST [--workload random|sorted] [options]\n\
         \x20      repro serve [--shards N] [--writers LIST] [--algos SPEC] [--json]\n\
         \x20                  [--reshard] [--skew S] [--read-mix] [--readers LIST]\n\
         \x20                  [--durable] [--wal-dir DIR] [--replicas LIST]\n\
         \x20                  [--lag-target E] [--sites LIST] [--kill K]\n\
         \x20                  [--strategy HU|UH] [--autoscale] [options]\n\
         (no figure list means all figures; beware that without --quick this\n\
         is the paper-scale run. --algos takes paper legend names, e.g.\n\
         DC,DVO,DADO,AC20X,EquiWidth,EquiDepth,SC,SVO,SADO,SSBM)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    let mut quick = false;
    let mut seeds: Option<u64> = None;
    let mut scale: Option<f64> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut figures: Vec<String> = Vec::new();
    let mut custom = false;
    let mut serve = false;
    let mut json = false;
    let mut reshard = false;
    let mut read_mix = false;
    let mut durable = false;
    let mut autoscale = false;
    let mut wal_dir: Option<PathBuf> = None;
    let mut replicas: Option<Vec<usize>> = None;
    let mut lag_target: Option<u64> = None;
    let mut sites: Option<Vec<usize>> = None;
    let mut kill: Option<usize> = None;
    let mut strategy: Option<GlobalStrategy> = None;
    let mut skew: Option<f64> = None;
    let mut shards: Option<usize> = None;
    let mut writers: Option<Vec<usize>> = None;
    let mut readers: Option<Vec<usize>> = None;
    let mut algos: Vec<AlgoSpec> = Vec::new();
    let mut workload: Option<WorkloadKind> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "custom" => custom = true,
            "serve" => serve = true,
            "--json" => json = true,
            "--reshard" => reshard = true,
            "--read-mix" => read_mix = true,
            "--durable" => durable = true,
            "--autoscale" => autoscale = true,
            "--wal-dir" => {
                wal_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--replicas" => {
                let list = it.next().unwrap_or_else(|| usage());
                replicas = Some(
                    list.split(',')
                        .map(|r| r.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--lag-target" => {
                let v = it.next().unwrap_or_else(|| usage());
                lag_target = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--sites" => {
                let list = it.next().unwrap_or_else(|| usage());
                sites = Some(
                    list.split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--kill" => {
                let v = it.next().unwrap_or_else(|| usage());
                kill = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--strategy" => {
                let v = it.next().unwrap_or_else(|| usage());
                match v.parse::<GlobalStrategy>() {
                    Ok(s) => strategy = Some(s),
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--readers" => {
                let list = it.next().unwrap_or_else(|| usage());
                readers = Some(
                    list.split(',')
                        .map(|r| r.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--skew" => {
                let v = it.next().unwrap_or_else(|| usage());
                skew = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--shards" => {
                let v = it.next().unwrap_or_else(|| usage());
                shards = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--writers" => {
                let list = it.next().unwrap_or_else(|| usage());
                writers = Some(
                    list.split(',')
                        .map(|w| w.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--algos" => {
                let list = it.next().unwrap_or_else(|| usage());
                for name in list.split(',') {
                    match name.parse::<AlgoSpec>() {
                        Ok(spec) => algos.push(spec),
                        Err(e) => {
                            eprintln!("{e}");
                            usage();
                        }
                    }
                }
            }
            "--workload" => {
                workload = Some(match it.next().unwrap_or_else(|| usage()).as_str() {
                    "random" => WorkloadKind::RandomInsertions,
                    "sorted" => WorkloadKind::SortedInsertions,
                    _ => usage(),
                });
            }
            "--seeds" => {
                let v = it.next().unwrap_or_else(|| usage());
                seeds = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--out" => {
                out_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--list" => {
                for id in all_figure_ids() {
                    println!("{id}");
                }
                return;
            }
            "all" => figures.extend(all_figure_ids().iter().map(|s| s.to_string())),
            f if f.starts_with("fig") => figures.push(f.to_string()),
            _ => usage(),
        }
    }
    // `--quick` is a base profile; explicit --seeds/--scale win regardless
    // of the order the flags appeared in.
    let mut opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    if let Some(s) = seeds {
        opts.seeds = s;
    }
    if let Some(s) = scale {
        opts.scale = s;
    }

    // `serve` replays a generated workload through the three catalog
    // ingestion designs with concurrent writers.
    if serve {
        if custom || !figures.is_empty() {
            eprintln!("serve mode and custom/figure runs are mutually exclusive");
            usage();
        }
        if algos.len() > 1 {
            eprintln!("serve mode takes a single --algos spec");
            usage();
        }
        if workload.is_some() {
            eprintln!("--workload only applies to custom mode (serve replays random insertions)");
            usage();
        }
        let mut cfg = ServeConfig::default();
        if let Some(s) = shards {
            cfg.shards = s.max(1);
        }
        if let Some(&spec) = algos.first() {
            cfg.spec = spec;
        }
        cfg.skew = skew;
        let writers = writers.unwrap_or_else(|| vec![1, 2, 4, 8]);
        let t0 = std::time::Instant::now();
        if let Some(sites) = &sites {
            if reshard || read_mix || durable || autoscale || replicas.is_some() {
                eprintln!(
                    "--sites is mutually exclusive with \
                     --reshard/--read-mix/--durable/--autoscale/--replicas"
                );
                usage();
            }
            if readers.is_some() || wal_dir.is_some() || lag_target.is_some() {
                eprintln!("--readers/--wal-dir/--lag-target do not apply to serve --sites");
                usage();
            }
            // Multi-site replay: a GlobalCatalog composes one in-process
            // member per design with N-1 socket-remote sites, optionally
            // killing some to measure degraded reads.
            eprint!("running serve --sites ... ");
            std::io::stderr().flush().ok();
            let report = run_sites(
                cfg,
                sites,
                kill.unwrap_or(0),
                strategy.unwrap_or(GlobalStrategy::HistogramThenUnion),
                opts,
            );
            eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{}", report.to_markdown());
            }
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output directory");
                let mut figs = vec![&report.throughput, &report.accuracy, &report.health];
                if let Some(degraded) = &report.degraded {
                    figs.push(degraded);
                }
                for fig in figs {
                    let path = dir.join(format!("{}.csv", fig.id));
                    std::fs::write(&path, fig.to_csv())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                    eprintln!("wrote {}", path.display());
                }
                let path = dir.join("sites.json");
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
            return;
        }
        if kill.is_some() || strategy.is_some() {
            eprintln!("--kill/--strategy only apply to serve --sites");
            usage();
        }
        if let Some(replicas) = &replicas {
            if reshard || read_mix || durable || autoscale {
                eprintln!(
                    "--replicas is mutually exclusive with \
                     --reshard/--read-mix/--durable/--autoscale"
                );
                usage();
            }
            if readers.is_some() || wal_dir.is_some() {
                eprintln!("--readers/--wal-dir do not apply to serve --replicas");
                usage();
            }
            // Replication replay: followers tail the committing leader's
            // changelog, serve the read mix, and report their staleness.
            eprint!("running serve --replicas ... ");
            std::io::stderr().flush().ok();
            let report = run_replicas(cfg, replicas, opts, lag_target);
            eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{}", report.to_markdown());
            }
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output directory");
                let mut figs = vec![&report.throughput, &report.lag_mean, &report.lag_max];
                if let Some(misses) = &report.lag_misses {
                    figs.push(misses);
                }
                for fig in figs {
                    let path = dir.join(format!("{}.csv", fig.id));
                    std::fs::write(&path, fig.to_csv())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                    eprintln!("wrote {}", path.display());
                }
                let path = dir.join("replicas.json");
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
            return;
        }
        if lag_target.is_some() {
            eprintln!("--lag-target only applies to serve --replicas");
            usage();
        }
        if durable {
            if reshard || read_mix || autoscale {
                eprintln!("--durable is mutually exclusive with --reshard/--read-mix/--autoscale");
                usage();
            }
            if readers.is_some() {
                eprintln!("--readers only applies to serve --read-mix");
                usage();
            }
            // WAL-backed replay: durable ingest throughput plus a timed
            // crash-recovery reopen of the changelog per design.
            eprint!("running serve --durable ... ");
            std::io::stderr().flush().ok();
            let report = run_durable(cfg, &writers, opts, wal_dir.as_deref());
            eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{}", report.to_markdown());
            }
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output directory");
                for fig in [&report.throughput, &report.recovery] {
                    let path = dir.join(format!("{}.csv", fig.id));
                    std::fs::write(&path, fig.to_csv())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                    eprintln!("wrote {}", path.display());
                }
                let path = dir.join("durable.json");
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
            return;
        }
        if wal_dir.is_some() {
            eprintln!("--wal-dir only applies to serve --durable");
            usage();
        }
        if read_mix {
            if reshard || autoscale {
                eprintln!("--read-mix is mutually exclusive with --reshard/--autoscale");
                usage();
            }
            // Reader-heavy mix: R readers on the wait-free hot path, one
            // writer committing — estimate throughput + cache hit rate.
            let readers = readers.unwrap_or_else(|| vec![1, 2, 4, 8]);
            eprint!("running serve --read-mix ... ");
            std::io::stderr().flush().ok();
            let report = run_read_mix(cfg, &readers, opts);
            eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{}", report.to_markdown());
            }
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output directory");
                for fig in [&report.throughput, &report.hit_rate] {
                    let path = dir.join(format!("{}.csv", fig.id));
                    std::fs::write(&path, fig.to_csv())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                    eprintln!("wrote {}", path.display());
                }
                let path = dir.join("read_mix.json");
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
            return;
        }
        if readers.is_some() {
            eprintln!("--readers only applies to serve --read-mix");
            usage();
        }
        if autoscale {
            if reshard {
                eprintln!("--autoscale and --reshard are mutually exclusive");
                usage();
            }
            // Elastic replay: an AutoscalePolicy-armed column walks a
            // warm → burst → idle load cycle; the report records the
            // live shard count after every commit.
            eprint!("running serve --autoscale ... ");
            std::io::stderr().flush().ok();
            let report = run_autoscale(cfg, opts);
            eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{}", report.to_markdown());
            }
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output directory");
                for fig in [&report.shards, &report.throughput] {
                    let path = dir.join(format!("{}.csv", fig.id));
                    std::fs::write(&path, fig.to_csv())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                    eprintln!("wrote {}", path.display());
                }
                let path = dir.join("autoscale.json");
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
            return;
        }
        if reshard {
            // Static equal-width borders vs dynamic re-sharding on a
            // Zipf-skewed replay: throughput + shard balance + KS.
            eprint!("running serve --reshard ... ");
            std::io::stderr().flush().ok();
            let report = run_reshard(cfg, &writers, opts);
            eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{}", report.to_markdown());
            }
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output directory");
                for fig in [&report.throughput, &report.balance, &report.accuracy] {
                    let path = dir.join(format!("{}.csv", fig.id));
                    std::fs::write(&path, fig.to_csv())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                    eprintln!("wrote {}", path.display());
                }
                let path = dir.join("reshard.json");
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
            return;
        }
        eprint!("running serve ... ");
        std::io::stderr().flush().ok();
        let report = run_serve(cfg, &writers, opts);
        eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
        if json {
            // Machine-readable: one JSON document on stdout (redirect to
            // a file for the BENCH_serve.json CI artifact).
            print!("{}", report.to_json());
        } else {
            println!("{}", report.to_markdown());
        }
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output directory");
            for fig in [&report.throughput, &report.accuracy] {
                let path = dir.join(format!("{}.csv", fig.id));
                std::fs::write(&path, fig.to_csv())
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
            let path = dir.join("serve.json");
            std::fs::write(&path, report.to_json())
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
        }
        return;
    }
    if shards.is_some()
        || writers.is_some()
        || reshard
        || skew.is_some()
        || read_mix
        || readers.is_some()
        || durable
        || autoscale
        || wal_dir.is_some()
        || replicas.is_some()
        || lag_target.is_some()
        || sites.is_some()
        || kill.is_some()
        || strategy.is_some()
    {
        eprintln!(
            "--shards/--writers/--reshard/--skew/--read-mix/--readers/--durable/--autoscale/\
             --wal-dir/--replicas/--lag-target/--sites/--kill/--strategy only apply to serve mode"
        );
        usage();
    }
    if json {
        eprintln!("--json only applies to serve mode");
        usage();
    }

    // `custom` bypasses the figure registry: any algorithm mix, selected
    // by name, run end-to-end through AlgoSpec trait objects. Reject
    // conflicting arguments instead of silently dropping them.
    if custom || !algos.is_empty() {
        if algos.is_empty() {
            eprintln!("custom mode needs --algos");
            usage();
        }
        if !figures.is_empty() {
            eprintln!("custom mode and a figure list are mutually exclusive");
            usage();
        }
        let workload = workload.unwrap_or(WorkloadKind::RandomInsertions);
        let t0 = std::time::Instant::now();
        eprint!("running custom ... ");
        std::io::stderr().flush().ok();
        let result = run_custom(&algos, workload, opts);
        eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
        println!("{}", result.to_markdown());
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create output directory");
            let path = dir.join("custom.csv");
            std::fs::write(&path, result.to_csv())
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
        }
        return;
    }

    if workload.is_some() {
        eprintln!("--workload only applies to custom mode (figures fix their own workloads)");
        usage();
    }

    // Flags without an explicit figure list mean "all figures".
    if figures.is_empty() {
        figures.extend(all_figure_ids().iter().map(|s| s.to_string()));
    }
    // Drop repeats while keeping first-mention (paper) order.
    let mut seen = std::collections::HashSet::new();
    figures.retain(|f| seen.insert(f.clone()));

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let mut summary = String::from("# Reproduced figures\n\n");
    summary.push_str(&format!(
        "Options: seeds = {}, scale = {}\n\n",
        opts.seeds, opts.scale
    ));
    for id in &figures {
        let t0 = std::time::Instant::now();
        eprint!("running {id} ... ");
        std::io::stderr().flush().ok();
        match run_figure(id, opts) {
            Ok(result) => {
                eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
                let md = result.to_markdown();
                println!("{md}");
                summary.push_str(&md);
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.csv"));
                    std::fs::write(&path, result.to_csv())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = &out_dir {
        let path = dir.join("summary.md");
        std::fs::write(&path, summary).expect("write summary");
        eprintln!("wrote {}", path.display());
    }
}
