//! Experiment harness reproducing every evaluation figure of *Dynamic
//! Histograms: Capturing Evolving Data Sets* (Figs. 5–23).
//!
//! * [`harness`] — result types ([`FigureResult`], [`Series`]) and run
//!   options (seed count, quick scaling).
//! * [`algos`] — uniform runners for the dynamic (DC, DVO, DADO, AC) and
//!   static (SC, SVO, SADO, SSBM, Equi-Depth, Equi-Width) algorithms:
//!   thin wrappers over the `dh_catalog::AlgoSpec` registry, driving every
//!   competitor as a `Box<dyn DynHistogram>`.
//! * [`figures`] — one function per figure, plus a registry used by the
//!   `repro` binary and the Criterion benches, and the free-form
//!   [`run_custom`] experiment.
//!
//! * [`serve`] — catalog-level workload replay: multi-writer ingestion
//!   through the single-lock `Catalog`, the per-shard-locked
//!   `ShardedCatalog` and its MPSC-worker variant, reporting throughput
//!   and final estimation error (the `repro serve` mode and the
//!   `contention` bench), plus the `--reshard` replay comparing static
//!   versus dynamically re-balanced shard borders on a Zipf-skewed
//!   stream, the `--read-mix` replay measuring wait-free hot-path
//!   estimate serving (and front-cache hit rate) under a live committing
//!   writer, and the `--durable` replay measuring WAL-backed ingestion
//!   and crash-recovery replay throughput through `DurableStore`, and
//!   the `--replicas` replay racing `dh_replica` followers against a
//!   committing durable leader — follower estimate throughput, reported
//!   staleness, and bit-identity spot checks against the leader's
//!   retained generations.
//!
//! The `repro` binary regenerates any or all figures as CSV files and a
//! markdown summary, and runs custom algorithm mixes selected by name
//! through the registry:
//!
//! ```text
//! cargo run --release -p dh_bench --bin repro -- all --out results
//! cargo run --release -p dh_bench --bin repro -- fig5 fig8 --seeds 10
//! cargo run --release -p dh_bench --bin repro -- custom --algos DC,SVO,AC40X
//! cargo run --release -p dh_bench --bin repro -- serve --shards 8 --writers 1,2,4,8
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algos;
pub mod figures;
pub mod harness;
pub mod serve;

pub use algos::{DynamicAlgo, StaticAlgo};
pub use figures::{all_figure_ids, run_custom, run_figure};
pub use harness::{FigureResult, RunOptions, Series};
pub use serve::{
    ingest, load_balance, run_autoscale, run_durable, run_read_mix, run_replicas, run_reshard,
    run_serve, run_sites, AutoscaleReport, DurableReport, ReadMixReport, ReplicaReport,
    ReshardReport, ServeConfig, ServeDesign, ServeReport, Serving, SitesReport, AUTOSCALE_POLICY,
    DURABLE_OPTIONS, PROBES_PER_ROUND, REPLICA_OPTIONS, RESHARD_POLICY,
};
