//! Result containers and run options for the figure harness.

/// One curve of a figure: a label and `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("DADO", "AC20X", "histogram + union", ...).
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Mean of the y values (used by shape assertions in tests).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
    }
}

/// A reproduced figure: metadata plus its series.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Figure id ("fig5" ... "fig23").
    pub id: String,
    /// What the paper's figure shows.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Renders the figure as CSV: header `x,label1,label2,...`, one row per
    /// x value (assumes all series share x values, which every figure here
    /// does).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(' ', "_"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(' ', "_"));
        }
        out.push('\n');
        if let Some(first) = self.series.first() {
            for (i, &(x, _)) in first.points.iter().enumerate() {
                out.push_str(&format!("{x}"));
                for s in &self.series {
                    let y = s.points.get(i).map(|&(_, y)| y).unwrap_or(f64::NAN);
                    out.push_str(&format!(",{y:.6}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the figure as a compact markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        if let Some(first) = self.series.first() {
            for (i, &(x, _)) in first.points.iter().enumerate() {
                out.push_str(&format!("| {x:.3} |"));
                for s in &self.series {
                    let y = s.points.get(i).map(|&(_, y)| y).unwrap_or(f64::NAN);
                    out.push_str(&format!(" {y:.5} |"));
                }
                out.push('\n');
            }
        }
        out.push('\n');
        out
    }

    /// The series with the given label, if present.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as one JSON object (`id`, `title`, axis labels,
    /// and `series` as `{label, points: [[x, y], ...]}`) — the
    /// machine-readable face CI artifacts consume.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"id\":\"{}\",\"title\":\"{}\",\"x_label\":\"{}\",\"y_label\":\"{}\",\"series\":[",
            json_escape(&self.id),
            json_escape(&self.title),
            json_escape(&self.x_label),
            json_escape(&self.y_label)
        ));
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"points\":[",
                json_escape(&s.label)
            ));
            for (j, &(x, y)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", json_number(x), json_number(y)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for inclusion in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; those
/// become `null`).
pub(crate) fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Options controlling figure runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Random seeds averaged per configuration (the paper uses 10).
    pub seeds: u64,
    /// Scale factor in `(0, 1]` applied to dataset sizes; `1.0` is the
    /// paper's full scale (100,000 points).
    pub scale: f64,
    /// Override of the value-domain upper bound (paper: 5000). Smaller
    /// domains make the `O(D²)` optimal-partition figures fast for smoke
    /// tests and benches; `None` keeps the paper's domain.
    pub domain_max: Option<i64>,
}

impl Default for RunOptions {
    /// Paper-faithful defaults: 10 seeds, full 100k-point datasets over
    /// the full [0, 5000] domain.
    fn default() -> Self {
        Self {
            seeds: 10,
            scale: 1.0,
            domain_max: None,
        }
    }
}

impl RunOptions {
    /// A fast smoke-test configuration for CI and Criterion benches.
    pub fn quick() -> Self {
        Self {
            seeds: 2,
            scale: 0.1,
            domain_max: Some(1000),
        }
    }

    /// Applies the scale factor to a point count.
    pub fn scaled(&self, points: u64) -> u64 {
        ((points as f64 * self.scale).round() as u64).max(1000)
    }

    /// Seed values to average over.
    pub fn seed_values(&self) -> impl Iterator<Item = u64> {
        // Fixed base so figures are reproducible run-to-run.
        (0..self.seeds).map(|i| 0xD15EA5E + i)
    }
}

/// Mean of an iterator of f64s (0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureResult {
        FigureResult {
            id: "figX".into(),
            title: "test".into(),
            x_label: "x".into(),
            y_label: "KS".into(),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![(0.0, 0.1), (1.0, 0.2)],
                },
                Series {
                    label: "B".into(),
                    points: vec![(0.0, 0.3), (1.0, 0.4)],
                },
            ],
        }
    }

    #[test]
    fn csv_rendering() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,A,B");
        assert!(lines[1].starts_with("0,0.100000,0.300000"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn markdown_rendering() {
        let md = sample_figure().to_markdown();
        assert!(md.contains("### figX"));
        assert!(md.contains("| x | A | B |"));
    }

    #[test]
    fn json_rendering() {
        let json = sample_figure().to_json();
        assert!(json.starts_with("{\"id\":\"figX\""));
        assert!(json.contains("\"series\":[{\"label\":\"A\",\"points\":[[0,0.1],[1,0.2]]}"));
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn series_lookup_and_mean() {
        let f = sample_figure();
        assert!(f.series_named("A").is_some());
        assert!(f.series_named("Z").is_none());
        assert!((f.series_named("B").unwrap().mean_y() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn run_options_scaling() {
        let q = RunOptions::quick();
        assert_eq!(q.scaled(100_000), 10_000);
        // Never below the floor.
        assert_eq!(q.scaled(5_000), 1000);
        let full = RunOptions::default();
        assert_eq!(full.scaled(100_000), 100_000);
        assert_eq!(full.seed_values().count(), 10);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty::<f64>()), 0.0);
    }
}
