//! One runner per evaluation figure of the paper (Figs. 5–23).
//!
//! Every runner follows the paper's protocol: datasets from the Section
//! 6.1 generator (or the mail-order stand-in), identical update streams
//! replayed into every competing histogram, KS statistic against the exact
//! live distribution, averaged over the configured number of seeds
//! (the paper uses 10).

use crate::algos::{DynamicAlgo, StaticAlgo};
use crate::harness::{mean, FigureResult, RunOptions, Series};
use dh_catalog::AlgoSpec;
use dh_core::ks_error;
use dh_core::{DataDistribution, DynHistogram, MemoryBudget};
use dh_distributed::{build_global, DistributedConfig, GlobalStrategy};
use dh_gen::mailorder::MailOrderConfig;
use dh_gen::workload::{UpdateStream, WorkloadKind};
use dh_gen::SyntheticConfig;

/// All reproducible figure ids, in paper order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec![
        "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
    ]
}

/// Runs a figure by id.
///
/// # Errors
/// Returns an error string for unknown ids.
pub fn run_figure(id: &str, opts: RunOptions) -> Result<FigureResult, String> {
    match id {
        "fig5" => Ok(fig5(opts)),
        "fig6" => Ok(fig6(opts)),
        "fig7" => Ok(fig7(opts)),
        "fig8" => Ok(fig8(opts)),
        "fig9" => Ok(fig9(opts)),
        "fig10" => Ok(fig10(opts)),
        "fig11" => Ok(fig11(opts)),
        "fig12" => Ok(fig12(opts)),
        "fig13" => Ok(fig13(opts)),
        "fig14" => Ok(fig14(opts)),
        "fig15" => Ok(fig15(opts)),
        "fig16" => Ok(fig16(opts)),
        "fig17" => Ok(fig17(opts)),
        "fig18" => Ok(fig18(opts)),
        "fig19" => Ok(fig19(opts)),
        "fig20" => Ok(fig20(opts)),
        "fig21" => Ok(fig21(opts)),
        "fig22" => Ok(fig22(opts)),
        "fig23" => Ok(fig23(opts)),
        other => Err(format!(
            "unknown figure id '{other}'; known: {:?}",
            all_figure_ids()
        )),
    }
}

/// The paper's reference synthetic configuration (Section 7), scaled.
fn reference_config(opts: RunOptions) -> SyntheticConfig {
    let mut cfg = SyntheticConfig::default().with_total_points(opts.scaled(100_000));
    if let Some(d) = opts.domain_max {
        cfg.domain_max = d;
    }
    cfg
}

/// Sweeps one distribution parameter for a set of dynamic algorithms
/// (the engine behind Figs. 5–7, 14 and 15).
#[allow(clippy::too_many_arguments)]
fn dynamic_parameter_sweep(
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    configure: impl Fn(SyntheticConfig, f64) -> SyntheticConfig,
    workload: WorkloadKind,
    memory: MemoryBudget,
    algos: &[DynamicAlgo],
    opts: RunOptions,
) -> FigureResult {
    let mut series: Vec<Series> = algos.iter().map(|a| Series::new(a.label())).collect();
    for &x in xs {
        let cfg = configure(reference_config(opts), x);
        let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
        for seed in opts.seed_values() {
            let data = cfg.generate(seed);
            let stream = UpdateStream::build(&data.values, workload, seed ^ 0x5EED);
            for (ai, algo) in algos.iter().enumerate() {
                per_algo[ai].push(algo.final_ks(memory, seed, &stream));
            }
        }
        for (ai, ks) in per_algo.into_iter().enumerate() {
            series[ai].push(x, mean(ks));
        }
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        x_label: x_label.into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// Fig. 5: KS vs skew `S` of the cluster-center spreads
/// (Z=1, SD=2, C=2000, M=1KB, random insertions).
pub fn fig5(opts: RunOptions) -> FigureResult {
    dynamic_parameter_sweep(
        "fig5",
        "KS statistic as a function of S (fixed Z=1 SD=2 M=1KB)",
        "S",
        &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |c, s| c.with_spread_skew(s),
        WorkloadKind::RandomInsertions,
        MemoryBudget::from_kb(1.0),
        &DynamicAlgo::standard_set(),
        opts,
    )
}

/// Fig. 6: KS vs cluster-size skew `Z` (S=1, SD=2, C=2000, M=1KB).
pub fn fig6(opts: RunOptions) -> FigureResult {
    dynamic_parameter_sweep(
        "fig6",
        "KS statistic as a function of Z (fixed S=1 SD=2 M=1KB)",
        "Z",
        &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |c, z| c.with_size_skew(z),
        WorkloadKind::RandomInsertions,
        MemoryBudget::from_kb(1.0),
        &DynamicAlgo::standard_set(),
        opts,
    )
}

/// Fig. 7: KS vs within-cluster standard deviation `SD`
/// (S=1, Z=1, C=2000, M=1KB).
pub fn fig7(opts: RunOptions) -> FigureResult {
    dynamic_parameter_sweep(
        "fig7",
        "KS statistic as a function of SD (fixed S=1 Z=1 M=1KB)",
        "SD",
        &[0.0, 2.0, 5.0, 10.0, 15.0, 20.0],
        |c, sd| c.with_cluster_sd(sd),
        WorkloadKind::RandomInsertions,
        MemoryBudget::from_kb(1.0),
        &DynamicAlgo::standard_set(),
        opts,
    )
}

/// Fig. 8: KS vs available memory (S=1, Z=1, SD=2, C=2000).
pub fn fig8(opts: RunOptions) -> FigureResult {
    let memories = [0.25, 0.5, 1.0, 2.0, 3.0, 4.0];
    let algos = DynamicAlgo::standard_set();
    let mut series: Vec<Series> = algos.iter().map(|a| Series::new(a.label())).collect();
    let cfg = reference_config(opts);
    for &mkb in &memories {
        let memory = MemoryBudget::from_kb(mkb);
        let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
        for seed in opts.seed_values() {
            let data = cfg.generate(seed);
            let stream =
                UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
            for (ai, algo) in algos.iter().enumerate() {
                per_algo[ai].push(algo.final_ks(memory, seed, &stream));
            }
        }
        for (ai, ks) in per_algo.into_iter().enumerate() {
            series[ai].push(mkb, mean(ks));
        }
    }
    FigureResult {
        id: "fig8".into(),
        title: "Error vs available memory (fixed S=1 SD=2 Z=1)".into(),
        x_label: "Memory [KB]".into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// The static-comparison configuration of Figs. 9–12: C=50, SD=1.
fn static_config(opts: RunOptions) -> SyntheticConfig {
    reference_config(opts)
        .with_clusters(50)
        .with_cluster_sd(1.0)
}

/// Static-vs-DADO sweep engine for Figs. 9–12.
fn static_parameter_sweep(
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    configure: impl Fn(SyntheticConfig, f64) -> SyntheticConfig,
    memory: MemoryBudget,
    opts: RunOptions,
) -> FigureResult {
    let statics = StaticAlgo::standard_set();
    let mut series: Vec<Series> = statics.iter().map(|a| Series::new(a.label())).collect();
    series.push(Series::new("DADO"));
    for &x in xs {
        let cfg = configure(static_config(opts), x);
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); statics.len() + 1];
        for seed in opts.seed_values() {
            let data = cfg.generate(seed);
            let truth = DataDistribution::from_values(&data.values);
            for (ai, algo) in statics.iter().enumerate() {
                per[ai].push(algo.final_ks(memory, &truth));
            }
            let stream =
                UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
            per[statics.len()].push(DynamicAlgo::Dado.final_ks(memory, seed, &stream));
        }
        for (ai, ks) in per.into_iter().enumerate() {
            series[ai].push(x, mean(ks));
        }
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        x_label: x_label.into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// Fig. 9: statics vs DADO as a function of `S` (Z=1, SD=1, C=50,
/// M=0.14KB).
pub fn fig9(opts: RunOptions) -> FigureResult {
    static_parameter_sweep(
        "fig9",
        "Static comparison: KS vs S (fixed Z=1 SD=1 C=50 M=0.14KB)",
        "S",
        &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |c, s| c.with_spread_skew(s),
        MemoryBudget::from_kb(0.14),
        opts,
    )
}

/// Fig. 10: statics vs DADO as a function of `Z`.
pub fn fig10(opts: RunOptions) -> FigureResult {
    static_parameter_sweep(
        "fig10",
        "Static comparison: KS vs Z (fixed S=1 SD=1 C=50 M=0.14KB)",
        "Z",
        &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |c, z| c.with_size_skew(z),
        MemoryBudget::from_kb(0.14),
        opts,
    )
}

/// Fig. 11: statics vs DADO as a function of `SD` in `[0, 5]`.
pub fn fig11(opts: RunOptions) -> FigureResult {
    static_parameter_sweep(
        "fig11",
        "Static comparison: KS vs SD (fixed S=1 Z=1 C=50 M=0.14KB)",
        "SD",
        &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        |c, sd| c.with_cluster_sd(sd),
        MemoryBudget::from_kb(0.14),
        opts,
    )
}

/// Fig. 12: statics vs DADO as a function of memory in `[0.11, 0.17]` KB.
pub fn fig12(opts: RunOptions) -> FigureResult {
    let statics = StaticAlgo::standard_set();
    let mut series: Vec<Series> = statics.iter().map(|a| Series::new(a.label())).collect();
    series.push(Series::new("DADO"));
    let cfg = static_config(opts);
    for &mkb in &[0.11, 0.12, 0.13, 0.14, 0.15, 0.16, 0.17] {
        let memory = MemoryBudget::from_kb(mkb);
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); statics.len() + 1];
        for seed in opts.seed_values() {
            let data = cfg.generate(seed);
            let truth = DataDistribution::from_values(&data.values);
            for (ai, algo) in statics.iter().enumerate() {
                per[ai].push(algo.final_ks(memory, &truth));
            }
            let stream =
                UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
            per[statics.len()].push(DynamicAlgo::Dado.final_ks(memory, seed, &stream));
        }
        for (ai, ks) in per.into_iter().enumerate() {
            series[ai].push(mkb, mean(ks));
        }
    }
    FigureResult {
        id: "fig12".into(),
        title: "Static comparison: error vs memory (fixed S=1 Z=1 SD=1 C=50)".into(),
        x_label: "Memory [KB]".into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// Fig. 13: construction wall-clock time vs memory (C=200, S=Z=SD=1).
///
/// DADO's "construction" is the incremental maintenance of the full
/// insertion stream, as in the paper. Absolute seconds differ from 1999
/// hardware; the ordering SVO >> SSBM > SC ~ DADO is the reproduced shape.
pub fn fig13(opts: RunOptions) -> FigureResult {
    let cfg = reference_config(opts)
        .with_clusters(200)
        .with_cluster_sd(1.0);
    let statics = [StaticAlgo::Svo, StaticAlgo::Ssbm, StaticAlgo::Sc];
    let mut series: Vec<Series> = statics.iter().map(|a| Series::new(a.label())).collect();
    series.push(Series::new("DADO"));
    for &mkb in &[0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5] {
        let memory = MemoryBudget::from_kb(mkb);
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); statics.len() + 1];
        // Timing wants fewer repetitions; cap at 3 seeds.
        for seed in opts.seed_values().take(3) {
            let data = cfg.generate(seed);
            let truth = DataDistribution::from_values(&data.values);
            for (ai, algo) in statics.iter().enumerate() {
                per[ai].push(algo.build_seconds(memory, &truth));
            }
            // DADO: time to stream all points through the registry-built
            // histogram (incremental maintenance *is* its construction).
            let stream =
                UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
            let ops = stream.ops();
            let t0 = std::time::Instant::now();
            let mut h = DynamicAlgo::Dado.spec().build(memory, seed);
            h.apply_slice(&ops);
            std::hint::black_box(&h);
            per[statics.len()].push(t0.elapsed().as_secs_f64());
        }
        for (ai, secs) in per.into_iter().enumerate() {
            series[ai].push(mkb, mean(secs));
        }
    }
    FigureResult {
        id: "fig13".into(),
        title: "Typical execution times (fixed S=1 Z=1 SD=1 C=200)".into(),
        x_label: "Memory [KB]".into(),
        y_label: "Execution time [sec]".into(),
        series,
    }
}

/// Fig. 14: AC's sensitivity to its disk-space factor
/// (C=1000, Z=1, SD=2, M=1KB), versus SC and DADO.
pub fn fig14(opts: RunOptions) -> FigureResult {
    let xs = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
    let dynamics = [
        DynamicAlgo::Ac { disk_factor: 20 },
        DynamicAlgo::Ac { disk_factor: 40 },
        DynamicAlgo::Ac { disk_factor: 60 },
        DynamicAlgo::Dado,
    ];
    let memory = MemoryBudget::from_kb(1.0);
    let mut series: Vec<Series> = dynamics.iter().map(|a| Series::new(a.label())).collect();
    series.push(Series::new("SC"));
    for &x in &xs {
        let cfg = reference_config(opts)
            .with_clusters(1000)
            .with_spread_skew(x);
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); dynamics.len() + 1];
        for seed in opts.seed_values() {
            let data = cfg.generate(seed);
            let stream =
                UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
            for (ai, algo) in dynamics.iter().enumerate() {
                per[ai].push(algo.final_ks(memory, seed, &stream));
            }
            let truth = DataDistribution::from_values(&data.values);
            per[dynamics.len()].push(StaticAlgo::Sc.final_ks(memory, &truth));
        }
        for (ai, ks) in per.into_iter().enumerate() {
            series[ai].push(x, mean(ks));
        }
    }
    FigureResult {
        id: "fig14".into(),
        title: "Sensitivity to available disk space (fixed Z=1 SD=2 C=1000 M=1KB)".into(),
        x_label: "S".into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// Fig. 15: sorted insertions (C=2000, S=1, SD=2, M=1KB) as a function of
/// `Z`.
pub fn fig15(opts: RunOptions) -> FigureResult {
    dynamic_parameter_sweep(
        "fig15",
        "Sorted insertions: KS vs Z (fixed S=1 SD=2 C=2000 M=1KB)",
        "Z",
        &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |c, z| c.with_size_skew(z),
        WorkloadKind::SortedInsertions,
        MemoryBudget::from_kb(1.0),
        &[
            DynamicAlgo::Dado,
            DynamicAlgo::Ac { disk_factor: 20 },
            DynamicAlgo::Dc,
            DynamicAlgo::Dvo,
        ],
        opts,
    )
}

/// Fig. 16: error as data is loaded in sorted order (reference
/// distribution, M=1KB): KS at each 5% of the stream.
pub fn fig16(opts: RunOptions) -> FigureResult {
    let cfg = reference_config(opts);
    let memory = MemoryBudget::from_kb(1.0);
    let dynamics = [DynamicAlgo::Dado, DynamicAlgo::Ac { disk_factor: 20 }];
    let fractions: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
    let mut series: Vec<Series> = dynamics.iter().map(|a| Series::new(a.label())).collect();
    series.push(Series::new("SC"));

    let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); fractions.len()]; dynamics.len() + 1];
    for seed in opts.seed_values() {
        let data = cfg.generate(seed);
        let stream =
            UpdateStream::build(&data.values, WorkloadKind::SortedInsertions, seed ^ 0x5EED);
        let checkpoints: Vec<usize> = fractions
            .iter()
            .map(|f| ((stream.len() as f64 * f).round() as usize).clamp(1, stream.len()))
            .collect();
        for (ai, algo) in dynamics.iter().enumerate() {
            let ks = algo.ks_at_checkpoints(memory, seed, &stream, &checkpoints);
            for (fi, k) in ks.into_iter().enumerate() {
                per[ai][fi].push(k);
            }
        }
        // SC rebuilt from scratch on each prefix (a static histogram is
        // always "fresh" in this experiment).
        for (fi, &cp) in checkpoints.iter().enumerate() {
            let live = stream.live_multiset_after(cp);
            let truth = DataDistribution::from_values(&live);
            per[dynamics.len()][fi].push(StaticAlgo::Sc.final_ks(memory, &truth));
        }
    }
    for (ai, by_fraction) in per.into_iter().enumerate() {
        for (fi, ks) in by_fraction.into_iter().enumerate() {
            series[ai].push(fractions[fi], mean(ks));
        }
    }
    FigureResult {
        id: "fig16".into(),
        title: "Error vs volume of inserts (sorted order, S=1 Z=1 SD=2 M=1KB)".into(),
        x_label: "Fraction of data inserted".into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// Shared engine for the deletion figures (17 and 18): insert everything
/// (random or sorted order), then randomly delete 80%, measuring KS at
/// each deletion decile.
fn deletion_figure(
    id: &str,
    title: &str,
    insert_order: WorkloadKind,
    opts: RunOptions,
) -> FigureResult {
    let cfg = reference_config(opts).with_clusters(1000);
    let memory = MemoryBudget::from_kb(1.0);
    let dynamics = [DynamicAlgo::Dado, DynamicAlgo::Ac { disk_factor: 20 }];
    let fractions: Vec<f64> = (0..=8).map(|i| i as f64 / 10.0).collect();
    let mut series: Vec<Series> = dynamics.iter().map(|a| Series::new(a.label())).collect();

    let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); fractions.len()]; dynamics.len()];
    for seed in opts.seed_values() {
        let data = cfg.generate(seed);
        // Build the combined stream: inserts in the requested order, then
        // random deletions of 80% of the data.
        let inserts = UpdateStream::build(&data.values, insert_order, seed ^ 0x5EED);
        let deletes = UpdateStream::build(
            &data.values,
            WorkloadKind::InsertionsThenRandomDeletions {
                delete_fraction: 0.8,
            },
            seed ^ 0xDE1E7E,
        );
        // Splice: ordered inserts followed by that stream's deletions.
        let n = data.values.len();
        let mut combined: Vec<dh_gen::workload::Update> = inserts.iter().collect();
        combined.extend(deletes.iter().skip(n));
        let stream = replay(&combined);
        let checkpoints: Vec<usize> = fractions
            .iter()
            .map(|f| n + (f * n as f64).round() as usize)
            .collect();
        for (ai, algo) in dynamics.iter().enumerate() {
            let ks = algo.ks_at_checkpoints(memory, seed, &stream, &checkpoints);
            for (fi, k) in ks.into_iter().enumerate() {
                per[ai][fi].push(k);
            }
        }
    }
    for (ai, by_fraction) in per.into_iter().enumerate() {
        for (fi, ks) in by_fraction.into_iter().enumerate() {
            series[ai].push(fractions[fi], mean(ks));
        }
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        x_label: "Fraction of data deleted".into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// Wraps a raw update vector back into an [`UpdateStream`].
fn replay(updates: &[dh_gen::workload::Update]) -> UpdateStream {
    // UpdateStream has no public constructor from raw ops; rebuild via the
    // values it carries. Deletions in our spliced streams always target
    // live values, so a pass-through builder suffices.
    UpdateStream::from_updates(updates.to_vec())
}

/// Fig. 17: random deletions after *random* insertions
/// (S=1, Z=1, SD=2, C=1000, M=1KB).
pub fn fig17(opts: RunOptions) -> FigureResult {
    deletion_figure(
        "fig17",
        "Error vs volume of random deletes (random inserts, C=1000 M=1KB)",
        WorkloadKind::RandomInsertions,
        opts,
    )
}

/// Fig. 18: random deletions after *sorted* insertions — the hard case for
/// DADO the paper documents (bucket overspill toward the histogram
/// center).
pub fn fig18(opts: RunOptions) -> FigureResult {
    deletion_figure(
        "fig18",
        "Random deletes after sorted inserts (C=1000 M=1KB)",
        WorkloadKind::SortedInsertions,
        opts,
    )
}

/// Fig. 19: the mail-order trace — KS vs memory for AC, DC and DADO.
pub fn fig19(opts: RunOptions) -> FigureResult {
    let algos = [
        DynamicAlgo::Ac { disk_factor: 20 },
        DynamicAlgo::Dc,
        DynamicAlgo::Dado,
    ];
    let mut series: Vec<Series> = algos.iter().map(|a| Series::new(a.label())).collect();
    for &mkb in &[0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let memory = MemoryBudget::from_kb(mkb);
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
        for seed in opts.seed_values() {
            let records = (MailOrderConfig {
                records: opts.scaled(61_105) as usize,
                ..MailOrderConfig::default()
            })
            .generate(seed);
            let stream =
                UpdateStream::build(&records, WorkloadKind::RandomInsertions, seed ^ 0x5EED);
            for (ai, algo) in algos.iter().enumerate() {
                per[ai].push(algo.final_ks(memory, seed, &stream));
            }
        }
        for (ai, ks) in per.into_iter().enumerate() {
            series[ai].push(mkb, mean(ks));
        }
    }
    FigureResult {
        id: "fig19".into(),
        title: "Mail order data: performance comparison".into(),
        x_label: "Memory [KB]".into(),
        y_label: "KS statistic".into(),
        series,
    }
}

/// Shared engine for the distributed figures (20–23).
fn distributed_figure(
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    configure: impl Fn(DistributedConfig, f64) -> DistributedConfig,
    opts: RunOptions,
) -> FigureResult {
    let mut hu = Series::new("histogram + union");
    let mut uh = Series::new("union + histogram");
    for &x in xs {
        let cfg = configure(
            DistributedConfig {
                total_points: opts.scaled(100_000),
                domain_max: opts.domain_max.unwrap_or(5000),
                ..DistributedConfig::default()
            },
            x,
        );
        let mut ks_hu = Vec::new();
        let mut ks_uh = Vec::new();
        for seed in opts.seed_values() {
            let sites = cfg.generate_sites(seed);
            let mut pooled = DataDistribution::new();
            for s in &sites {
                for &v in &s.values {
                    pooled.insert(v);
                }
            }
            let a = build_global(&cfg, &sites, GlobalStrategy::HistogramThenUnion);
            let b = build_global(&cfg, &sites, GlobalStrategy::UnionThenHistogram);
            ks_hu.push(ks_error(&a, &pooled));
            ks_uh.push(ks_error(&b, &pooled));
        }
        hu.push(x, mean(ks_hu));
        uh.push(x, mean(ks_uh));
    }
    FigureResult {
        id: id.into(),
        title: title.into(),
        x_label: x_label.into(),
        y_label: "KS statistic".into(),
        series: vec![hu, uh],
    }
}

/// Fig. 20: global-histogram error vs histogram memory.
pub fn fig20(opts: RunOptions) -> FigureResult {
    distributed_figure(
        "fig20",
        "Shared-nothing: error vs histogram size",
        "Histogram Memory (KB)",
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
        |c, kb| DistributedConfig {
            memory: MemoryBudget::from_kb(kb),
            ..c
        },
        opts,
    )
}

/// Fig. 21: error vs intrasite skew `Z_Freq`.
pub fn fig21(opts: RunOptions) -> FigureResult {
    distributed_figure(
        "fig21",
        "Shared-nothing: error vs intrasite data skew",
        "Z_Freq (skew within members)",
        &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |c, z| DistributedConfig { z_freq: z, ..c },
        opts,
    )
}

/// Fig. 22: error vs number of member sites.
pub fn fig22(opts: RunOptions) -> FigureResult {
    distributed_figure(
        "fig22",
        "Shared-nothing: error vs number of sites",
        "Number of sites",
        &[1.0, 2.0, 5.0, 10.0, 15.0, 20.0],
        |c, n| DistributedConfig {
            sites: n as usize,
            ..c
        },
        opts,
    )
}

/// Fig. 23: error vs skew of member sizes `Z_Site`.
pub fn fig23(opts: RunOptions) -> FigureResult {
    distributed_figure(
        "fig23",
        "Shared-nothing: error vs skew in site size",
        "Z_Site (skew in member sizes)",
        &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        |c, z| DistributedConfig { z_site: z, ..c },
        opts,
    )
}

/// A registry-driven experiment outside the paper's fixed figures: final
/// KS error vs available memory for *any* mix of algorithms, selected by
/// name on the `repro` CLI (`repro custom --algos DC,SVO,AC40X`).
///
/// Every competitor — dynamic or static — is built through
/// [`AlgoSpec::build`] and driven as a `Box<dyn DynHistogram>` over the
/// identical update stream, exactly the path a serving catalog uses
/// (static algorithms rebuild-on-read behind the same interface).
pub fn run_custom(specs: &[AlgoSpec], workload: WorkloadKind, opts: RunOptions) -> FigureResult {
    let memories = [0.25, 0.5, 1.0, 2.0, 3.0, 4.0];
    let cfg = reference_config(opts);
    let mut series: Vec<Series> = specs.iter().map(|s| Series::new(s.label())).collect();
    for &mkb in &memories {
        let memory = MemoryBudget::from_kb(mkb);
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        for seed in opts.seed_values() {
            let data = cfg.generate(seed);
            let stream = UpdateStream::build(&data.values, workload, seed ^ 0x5EED);
            let ops = stream.ops();
            let truth = DataDistribution::from_values(&stream.final_multiset());
            for (si, spec) in specs.iter().enumerate() {
                let mut h = spec.build(memory, seed);
                h.apply_slice(&ops);
                per[si].push(ks_error(&h, &truth));
            }
        }
        for (si, ks) in per.into_iter().enumerate() {
            series[si].push(mkb, mean(ks));
        }
    }
    let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
    FigureResult {
        id: "custom".into(),
        title: format!("Custom registry run: {}", labels.join(", ")),
        x_label: "Memory [KB]".into(),
        y_label: "KS statistic".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunOptions {
        RunOptions {
            seeds: 1,
            scale: 0.02,
            domain_max: Some(500),
        }
    }

    #[test]
    fn registry_knows_every_figure() {
        for id in all_figure_ids() {
            // Don't run them all here (slow); just check dispatch of one
            // unknown id and the listing.
            assert!(id.starts_with("fig"));
        }
        assert!(run_figure("fig999", tiny()).is_err());
    }

    #[test]
    fn fig5_has_four_series_and_full_sweep() {
        let f = fig5(tiny());
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert_eq!(s.points.len(), 7);
            assert!(s.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
        }
        assert!(f.series_named("DADO").is_some());
        assert!(f.series_named("AC20X").is_some());
    }

    #[test]
    fn fig16_fractions_cover_unit_interval() {
        let f = fig16(tiny());
        let s = f.series_named("DADO").unwrap();
        assert_eq!(s.points.first().unwrap().0, 0.05);
        assert_eq!(s.points.last().unwrap().0, 1.0);
    }

    #[test]
    fn custom_runs_mixed_dynamic_and_static_specs() {
        let f = run_custom(
            &[
                AlgoSpec::Dc,
                AlgoSpec::VOptimal,
                AlgoSpec::Ac { disk_factor: 20 },
            ],
            WorkloadKind::RandomInsertions,
            tiny(),
        );
        assert_eq!(f.series.len(), 3);
        assert!(f.series_named("SVO").is_some());
        for s in &f.series {
            assert_eq!(s.points.len(), 6);
            assert!(s.points.iter().all(|&(_, y)| (0.0..=1.0).contains(&y)));
        }
    }

    #[test]
    fn fig20_compares_two_strategies() {
        let f = fig20(tiny());
        assert_eq!(f.series.len(), 2);
        assert!(f.series_named("histogram + union").is_some());
        assert!(f.series_named("union + histogram").is_some());
    }
}
