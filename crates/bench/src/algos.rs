//! Uniform runners for all histogram algorithms under the paper's memory
//! model — thin wrappers over the [`AlgoSpec`] registry.
//!
//! Historically this module dispatched on concrete histogram types; it now
//! builds every competitor through [`AlgoSpec::build`] and drives it as a
//! `Box<dyn DynHistogram>`, so the benches and the `repro` binary exercise
//! exactly the object-safe path a production catalog uses. Labels come
//! from [`AlgoSpec::label`], the single source of truth for the paper's
//! legend strings.

use dh_catalog::AlgoSpec;
use dh_core::{ks_error, DataDistribution, DynHistogram, MemoryBudget, UpdateOp};
use dh_gen::workload::UpdateStream;

/// The incrementally maintained histograms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicAlgo {
    /// Dynamic Compressed (Section 3).
    Dc,
    /// Dynamic V-Optimal (Section 4).
    Dvo,
    /// Dynamic Average-Deviation Optimal (Section 4.1).
    Dado,
    /// Approximate Compressed over a backing sample `disk_factor` times
    /// the main memory (Gibbons–Matias–Poosala; `gamma = -1`).
    Ac {
        /// Disk-space multiple granted to the backing sample (paper
        /// default 20).
        disk_factor: usize,
    },
}

impl DynamicAlgo {
    /// The registry entry behind this runner.
    pub fn spec(&self) -> AlgoSpec {
        match *self {
            DynamicAlgo::Dc => AlgoSpec::Dc,
            DynamicAlgo::Dvo => AlgoSpec::Dvo,
            DynamicAlgo::Dado => AlgoSpec::Dado,
            DynamicAlgo::Ac { disk_factor } => AlgoSpec::Ac { disk_factor },
        }
    }

    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        self.spec().label()
    }

    /// The four dynamic algorithms of Figs. 5–8 with the default AC disk
    /// factor.
    pub fn standard_set() -> [DynamicAlgo; 4] {
        [
            DynamicAlgo::Dc,
            DynamicAlgo::Dado,
            DynamicAlgo::Ac { disk_factor: 20 },
            DynamicAlgo::Dvo,
        ]
    }

    /// Replays `updates` into a fresh histogram under `memory` bytes and
    /// returns the final KS error against the stream's live multiset.
    pub fn final_ks(&self, memory: MemoryBudget, seed: u64, updates: &UpdateStream) -> f64 {
        let checkpoints = [updates.len()];
        self.ks_at_checkpoints(memory, seed, updates, &checkpoints)
            .pop()
            .expect("one checkpoint requested")
    }

    /// Replays `updates`, measuring the KS error against the exact live
    /// distribution at each checkpoint (given as update counts, ascending).
    pub fn ks_at_checkpoints(
        &self,
        memory: MemoryBudget,
        seed: u64,
        updates: &UpdateStream,
        checkpoints: &[usize],
    ) -> Vec<f64> {
        let mut h = self.spec().build(memory, seed);
        drive(&mut *h, updates, checkpoints)
    }
}

/// Replays the stream in checkpoint-sized batches through the object-safe
/// maintenance API, scoring KS against the incrementally maintained exact
/// distribution at each checkpoint.
fn drive(h: &mut dyn DynHistogram, updates: &UpdateStream, checkpoints: &[usize]) -> Vec<f64> {
    debug_assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
    let ops = updates.ops();
    let mut truth = DataDistribution::new();
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut applied = 0usize;
    for &cp in checkpoints {
        let cp = cp.min(ops.len());
        if cp > applied {
            let batch = &ops[applied..cp];
            h.apply_slice(batch);
            for &op in batch {
                match op {
                    UpdateOp::Insert(v) => truth.insert(v),
                    UpdateOp::Delete(v) => {
                        truth.delete(v);
                    }
                }
            }
            applied = cp;
        }
        out.push(ks_error(&h.as_read(), &truth));
    }
    out
}

/// The statically constructed histograms of Figs. 9–13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticAlgo {
    /// Static Compressed (SC).
    Sc,
    /// Static V-Optimal (SVO), exact DP.
    Svo,
    /// Static Average-Deviation Optimal (SADO), exact DP.
    Sado,
    /// Successive Similar Bucket Merge (SSBM).
    Ssbm,
    /// Equi-Depth (classic baseline).
    EquiDepth,
    /// Equi-Width (classic baseline).
    EquiWidth,
}

impl StaticAlgo {
    /// The registry entry behind this runner.
    pub fn spec(&self) -> AlgoSpec {
        match *self {
            StaticAlgo::Sc => AlgoSpec::Compressed,
            StaticAlgo::Svo => AlgoSpec::VOptimal,
            StaticAlgo::Sado => AlgoSpec::Sado,
            StaticAlgo::Ssbm => AlgoSpec::Ssbm,
            StaticAlgo::EquiDepth => AlgoSpec::EquiDepth,
            StaticAlgo::EquiWidth => AlgoSpec::EquiWidth,
        }
    }

    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        self.spec().label()
    }

    /// The static set compared against DADO in Figs. 9–12.
    pub fn standard_set() -> [StaticAlgo; 4] {
        [
            StaticAlgo::Sado,
            StaticAlgo::Svo,
            StaticAlgo::Sc,
            StaticAlgo::Ssbm,
        ]
    }

    /// Builds the histogram from the full distribution under `memory`
    /// bytes and returns its KS error.
    pub fn final_ks(&self, memory: MemoryBudget, truth: &DataDistribution) -> f64 {
        let h = self.spec().build_seeded(memory, 0, truth.clone());
        ks_error(&h, truth)
    }

    /// Builds the histogram and returns construction wall-clock seconds
    /// (Fig. 13). The distribution copy happens before the clock starts,
    /// so only the build itself is measured.
    pub fn build_seconds(&self, memory: MemoryBudget, truth: &DataDistribution) -> f64 {
        let owned = truth.clone();
        let t0 = std::time::Instant::now();
        std::hint::black_box(self.spec().build_seeded(memory, 0, owned));
        t0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_gen::workload::WorkloadKind;

    fn small_stream() -> UpdateStream {
        let values: Vec<i64> = (0..3000).map(|i| (i * 13) % 500).collect();
        UpdateStream::build(&values, WorkloadKind::RandomInsertions, 1)
    }

    #[test]
    fn all_dynamic_algos_produce_sane_ks() {
        let memory = MemoryBudget::from_kb(1.0);
        let stream = small_stream();
        for algo in DynamicAlgo::standard_set() {
            let ks = algo.final_ks(memory, 7, &stream);
            assert!(
                (0.0..=1.0).contains(&ks),
                "{}: ks out of range: {ks}",
                algo.label()
            );
            assert!(
                ks < 0.2,
                "{}: ks implausibly bad on easy data: {ks}",
                algo.label()
            );
        }
    }

    #[test]
    fn checkpoints_are_monotone_in_count() {
        let memory = MemoryBudget::from_kb(1.0);
        let stream = small_stream();
        let ks = DynamicAlgo::Dado.ks_at_checkpoints(memory, 1, &stream, &[1000, 2000, 3000]);
        assert_eq!(ks.len(), 3);
        assert!(ks.iter().all(|&k| (0.0..=1.0).contains(&k)));
    }

    #[test]
    fn static_algos_produce_sane_ks() {
        let values: Vec<i64> = (0..5000).map(|i| (i * 31) % 700).collect();
        let truth = DataDistribution::from_values(&values);
        let memory = MemoryBudget::from_kb(0.25);
        for algo in [
            StaticAlgo::Sc,
            StaticAlgo::Svo,
            StaticAlgo::Sado,
            StaticAlgo::Ssbm,
            StaticAlgo::EquiDepth,
            StaticAlgo::EquiWidth,
        ] {
            let ks = algo.final_ks(memory, &truth);
            assert!(
                (0.0..=1.0).contains(&ks),
                "{}: ks out of range: {ks}",
                algo.label()
            );
        }
    }

    #[test]
    fn build_seconds_is_positive() {
        let values: Vec<i64> = (0..2000).map(|i| i % 300).collect();
        let truth = DataDistribution::from_values(&values);
        let memory = MemoryBudget::from_bytes(200);
        let t = StaticAlgo::Ssbm.build_seconds(memory, &truth);
        assert!(t >= 0.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DynamicAlgo::Ac { disk_factor: 20 }.label(), "AC20X");
        assert_eq!(DynamicAlgo::Dado.label(), "DADO");
        assert_eq!(StaticAlgo::Svo.label(), "SVO");
        // One source of truth: the runner labels are the registry labels.
        for algo in DynamicAlgo::standard_set() {
            assert_eq!(algo.label(), algo.spec().label());
        }
        for algo in StaticAlgo::standard_set() {
            assert_eq!(algo.label(), algo.spec().label());
        }
    }

    #[test]
    fn registry_and_runner_agree_on_final_ks() {
        // The runner is a thin wrapper: driving the spec's boxed histogram
        // by hand must give the same number.
        let memory = MemoryBudget::from_kb(1.0);
        let stream = small_stream();
        for algo in DynamicAlgo::standard_set() {
            let mut h = algo.spec().build(memory, 7);
            h.apply_slice(&stream.ops());
            let truth = DataDistribution::from_values(&stream.final_multiset());
            let direct = ks_error(&h, &truth);
            let wrapped = algo.final_ks(memory, 7, &stream);
            assert!(
                (direct - wrapped).abs() < 1e-12,
                "{}: {direct} != {wrapped}",
                algo.label()
            );
        }
    }
}
