//! Uniform runners for all histogram algorithms under the paper's memory
//! model.

use dh_core::dynamic::{DadoHistogram, DcHistogram, DvoHistogram};
use dh_core::{ks_error, DataDistribution, Histogram, HistogramClass, MemoryBudget};
use dh_gen::workload::{Update, UpdateStream};
use dh_sample::AcHistogram;
use dh_static::{
    CompressedHistogram, EquiDepthHistogram, EquiWidthHistogram, SadoHistogram, SsbmHistogram,
    VOptimalHistogram,
};

/// The incrementally maintained histograms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicAlgo {
    /// Dynamic Compressed (Section 3).
    Dc,
    /// Dynamic V-Optimal (Section 4).
    Dvo,
    /// Dynamic Average-Deviation Optimal (Section 4.1).
    Dado,
    /// Approximate Compressed over a backing sample `disk_factor` times
    /// the main memory (Gibbons–Matias–Poosala; `gamma = -1`).
    Ac {
        /// Disk-space multiple granted to the backing sample (paper
        /// default 20).
        disk_factor: usize,
    },
}

impl DynamicAlgo {
    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            DynamicAlgo::Dc => "DC".into(),
            DynamicAlgo::Dvo => "DVO".into(),
            DynamicAlgo::Dado => "DADO".into(),
            DynamicAlgo::Ac { disk_factor } => format!("AC{disk_factor}X"),
        }
    }

    /// The four dynamic algorithms of Figs. 5–8 with the default AC disk
    /// factor.
    pub fn standard_set() -> [DynamicAlgo; 4] {
        [
            DynamicAlgo::Dc,
            DynamicAlgo::Dado,
            DynamicAlgo::Ac { disk_factor: 20 },
            DynamicAlgo::Dvo,
        ]
    }

    /// Replays `updates` into a fresh histogram under `memory` bytes and
    /// returns the final KS error against the stream's live multiset.
    pub fn final_ks(&self, memory: MemoryBudget, seed: u64, updates: &UpdateStream) -> f64 {
        let checkpoints = [updates.len()];
        self.ks_at_checkpoints(memory, seed, updates, &checkpoints)
            .pop()
            .expect("one checkpoint requested")
    }

    /// Replays `updates`, measuring the KS error against the exact live
    /// distribution at each checkpoint (given as update counts, ascending).
    pub fn ks_at_checkpoints(
        &self,
        memory: MemoryBudget,
        seed: u64,
        updates: &UpdateStream,
        checkpoints: &[usize],
    ) -> Vec<f64> {
        match self {
            DynamicAlgo::Dc => {
                let n = memory.buckets(HistogramClass::BorderAndCount);
                drive(DcHistogram::new(n), updates, checkpoints)
            }
            DynamicAlgo::Dvo => {
                let n = memory.buckets(HistogramClass::BorderAndTwoCounters);
                drive(DvoHistogram::new(n), updates, checkpoints)
            }
            DynamicAlgo::Dado => {
                let n = memory.buckets(HistogramClass::BorderAndTwoCounters);
                drive(DadoHistogram::new(n), updates, checkpoints)
            }
            DynamicAlgo::Ac { disk_factor } => {
                let n = memory.buckets(HistogramClass::BorderAndCount);
                let sample = memory.sample_elements(*disk_factor).max(1);
                drive(AcHistogram::new(n, sample, seed), updates, checkpoints)
            }
        }
    }
}

/// Replays the stream, scoring KS against the incrementally maintained
/// exact distribution at each checkpoint.
fn drive<H: Histogram>(mut h: H, updates: &UpdateStream, checkpoints: &[usize]) -> Vec<f64> {
    debug_assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
    let mut truth = DataDistribution::new();
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut next = 0usize;
    for (i, u) in updates.iter().enumerate() {
        match u {
            Update::Insert(v) => {
                h.insert(v);
                truth.insert(v);
            }
            Update::Delete(v) => {
                h.delete(v);
                truth.delete(v);
            }
        }
        while next < checkpoints.len() && checkpoints[next] == i + 1 {
            out.push(ks_error(&h, &truth));
            next += 1;
        }
    }
    while next < checkpoints.len() {
        out.push(ks_error(&h, &truth));
        next += 1;
    }
    out
}

/// The statically constructed histograms of Figs. 9–13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticAlgo {
    /// Static Compressed (SC).
    Sc,
    /// Static V-Optimal (SVO), exact DP.
    Svo,
    /// Static Average-Deviation Optimal (SADO), exact DP.
    Sado,
    /// Successive Similar Bucket Merge (SSBM).
    Ssbm,
    /// Equi-Depth (classic baseline).
    EquiDepth,
    /// Equi-Width (classic baseline).
    EquiWidth,
}

impl StaticAlgo {
    /// Legend label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            StaticAlgo::Sc => "SC",
            StaticAlgo::Svo => "SVO",
            StaticAlgo::Sado => "SADO",
            StaticAlgo::Ssbm => "SSBM",
            StaticAlgo::EquiDepth => "EquiDepth",
            StaticAlgo::EquiWidth => "EquiWidth",
        }
    }

    /// The static set compared against DADO in Figs. 9–12.
    pub fn standard_set() -> [StaticAlgo; 4] {
        [
            StaticAlgo::Sado,
            StaticAlgo::Svo,
            StaticAlgo::Sc,
            StaticAlgo::Ssbm,
        ]
    }

    /// Builds the histogram from the full distribution under `memory`
    /// bytes and returns its KS error.
    pub fn final_ks(&self, memory: MemoryBudget, truth: &DataDistribution) -> f64 {
        let n = memory.buckets(HistogramClass::BorderAndCount);
        match self {
            StaticAlgo::Sc => ks_error(&CompressedHistogram::build(truth, n), truth),
            StaticAlgo::Svo => ks_error(&VOptimalHistogram::build(truth, n), truth),
            StaticAlgo::Sado => ks_error(&SadoHistogram::build(truth, n), truth),
            StaticAlgo::Ssbm => ks_error(&SsbmHistogram::build(truth, n), truth),
            StaticAlgo::EquiDepth => ks_error(&EquiDepthHistogram::build(truth, n), truth),
            StaticAlgo::EquiWidth => ks_error(&EquiWidthHistogram::build(truth, n), truth),
        }
    }

    /// Builds the histogram and returns construction wall-clock seconds
    /// (Fig. 13).
    pub fn build_seconds(&self, memory: MemoryBudget, truth: &DataDistribution) -> f64 {
        let n = memory.buckets(HistogramClass::BorderAndCount);
        let t0 = std::time::Instant::now();
        match self {
            StaticAlgo::Sc => {
                std::hint::black_box(CompressedHistogram::build(truth, n));
            }
            StaticAlgo::Svo => {
                std::hint::black_box(VOptimalHistogram::build(truth, n));
            }
            StaticAlgo::Sado => {
                std::hint::black_box(SadoHistogram::build(truth, n));
            }
            StaticAlgo::Ssbm => {
                std::hint::black_box(SsbmHistogram::build(truth, n));
            }
            StaticAlgo::EquiDepth => {
                std::hint::black_box(EquiDepthHistogram::build(truth, n));
            }
            StaticAlgo::EquiWidth => {
                std::hint::black_box(EquiWidthHistogram::build(truth, n));
            }
        }
        t0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_gen::workload::WorkloadKind;

    fn small_stream() -> UpdateStream {
        let values: Vec<i64> = (0..3000).map(|i| (i * 13) % 500).collect();
        UpdateStream::build(&values, WorkloadKind::RandomInsertions, 1)
    }

    #[test]
    fn all_dynamic_algos_produce_sane_ks() {
        let memory = MemoryBudget::from_kb(1.0);
        let stream = small_stream();
        for algo in DynamicAlgo::standard_set() {
            let ks = algo.final_ks(memory, 7, &stream);
            assert!(
                (0.0..=1.0).contains(&ks),
                "{}: ks out of range: {ks}",
                algo.label()
            );
            assert!(
                ks < 0.2,
                "{}: ks implausibly bad on easy data: {ks}",
                algo.label()
            );
        }
    }

    #[test]
    fn checkpoints_are_monotone_in_count() {
        let memory = MemoryBudget::from_kb(1.0);
        let stream = small_stream();
        let ks = DynamicAlgo::Dado.ks_at_checkpoints(memory, 1, &stream, &[1000, 2000, 3000]);
        assert_eq!(ks.len(), 3);
        assert!(ks.iter().all(|&k| (0.0..=1.0).contains(&k)));
    }

    #[test]
    fn static_algos_produce_sane_ks() {
        let values: Vec<i64> = (0..5000).map(|i| (i * 31) % 700).collect();
        let truth = DataDistribution::from_values(&values);
        let memory = MemoryBudget::from_kb(0.25);
        for algo in [
            StaticAlgo::Sc,
            StaticAlgo::Svo,
            StaticAlgo::Sado,
            StaticAlgo::Ssbm,
            StaticAlgo::EquiDepth,
            StaticAlgo::EquiWidth,
        ] {
            let ks = algo.final_ks(memory, &truth);
            assert!(
                (0.0..=1.0).contains(&ks),
                "{}: ks out of range: {ks}",
                algo.label()
            );
        }
    }

    #[test]
    fn build_seconds_is_positive() {
        let values: Vec<i64> = (0..2000).map(|i| i % 300).collect();
        let truth = DataDistribution::from_values(&values);
        let memory = MemoryBudget::from_bytes(200);
        let t = StaticAlgo::Ssbm.build_seconds(memory, &truth);
        assert!(t >= 0.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DynamicAlgo::Ac { disk_factor: 20 }.label(), "AC20X");
        assert_eq!(DynamicAlgo::Dado.label(), "DADO");
        assert_eq!(StaticAlgo::Svo.label(), "SVO");
    }
}
