//! The multi-column [`Catalog`]: histograms maintained in place while
//! readers estimate off shared snapshots.
//!
//! One `Catalog` owns a histogram per registered column (any mix of
//! [`AlgoSpec`]s), ingests batched [`UpdateOp`] streams per column, and
//! hands out [`Snapshot`]s — immutable, `Arc`-shared views that implement
//! [`ReadHistogram`] — so estimation (including cross-column joins
//! through `dh_optimizer`) runs off shared, cached state between batches.
//! The first read after a batch renders the column under its write lock;
//! for dynamic specs that is one span copy, while a static spec pays its
//! rebuild there (the cost static histograms owe *somewhere* — choose a
//! dynamic spec for write-hot columns).

use crate::spec::AlgoSpec;
use dh_core::{BoxedHistogram, BucketSpan, HistogramCdf, MemoryBudget, ReadHistogram, UpdateOp};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Errors surfaced by [`Catalog`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The named column has not been registered.
    UnknownColumn(String),
    /// The column name is already taken.
    DuplicateColumn(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            CatalogError::DuplicateColumn(c) => write!(f, "column '{c}' already registered"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Per-column mutable state, guarded by the column's `RwLock`.
struct ColumnState {
    histogram: BoxedHistogram,
    /// Number of batches applied so far; strictly monotone.
    checkpoint: u64,
    /// Number of individual updates applied so far.
    updates: u64,
    /// Cached snapshot of the current state; invalidated by every batch.
    snapshot: Option<Snapshot>,
    /// Scratch buffer for snapshot rendering (allocation reuse).
    scratch: Vec<BucketSpan>,
}

struct Column {
    name: String,
    spec: AlgoSpec,
    state: RwLock<ColumnState>,
}

/// A thread-safe, multi-column histogram store.
///
/// Writers call [`Catalog::apply`] with batches of updates; readers call
/// [`Catalog::snapshot`] (or the `estimate_*` conveniences) at any time
/// from any thread. Columns are independent: ingestion on one column
/// never blocks estimation on another.
#[derive(Default)]
pub struct Catalog {
    columns: RwLock<BTreeMap<String, Arc<Column>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `column` with a fresh histogram built from `spec` under
    /// `memory` bytes (`seed` feeds sampling algorithms, see
    /// [`AlgoSpec::build`]).
    ///
    /// # Errors
    /// [`CatalogError::DuplicateColumn`] if the name is taken.
    pub fn register(
        &self,
        column: impl Into<String>,
        spec: AlgoSpec,
        memory: MemoryBudget,
        seed: u64,
    ) -> Result<(), CatalogError> {
        let name = column.into();
        let mut columns = write_lock(&self.columns);
        if columns.contains_key(&name) {
            return Err(CatalogError::DuplicateColumn(name));
        }
        let histogram = spec.build(memory, seed);
        columns.insert(
            name.clone(),
            Arc::new(Column {
                name,
                spec,
                state: RwLock::new(ColumnState {
                    histogram,
                    checkpoint: 0,
                    updates: 0,
                    snapshot: None,
                    scratch: Vec::new(),
                }),
            }),
        );
        Ok(())
    }

    /// The registered column names, sorted.
    pub fn columns(&self) -> Vec<String> {
        read_lock(&self.columns).keys().cloned().collect()
    }

    /// Whether `column` is registered.
    pub fn contains(&self, column: &str) -> bool {
        read_lock(&self.columns).contains_key(column)
    }

    /// Number of registered columns.
    pub fn len(&self) -> usize {
        read_lock(&self.columns).len()
    }

    /// Whether no columns are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The algorithm a column was registered with.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        Ok(self.column(column)?.spec)
    }

    /// Applies one batch of updates to `column`'s histogram and returns
    /// the new checkpoint count (strictly monotone per column; an empty
    /// batch still advances it, marking an explicit sync point).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn apply(&self, column: &str, batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        let col = self.column(column)?;
        let mut state = write_lock(&col.state);
        state.histogram.apply_slice(batch);
        state.updates += batch.len() as u64;
        state.checkpoint += 1;
        state.snapshot = None;
        Ok(state.checkpoint)
    }

    /// An immutable snapshot of `column`'s current histogram.
    ///
    /// Snapshots are cached per checkpoint: between batches, every call
    /// clones one `Arc`. The first read after a batch renders the spans
    /// once (under the column's write lock, reusing a scratch buffer).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        let col = self.column(column)?;
        if let Some(s) = &read_lock(&col.state).snapshot {
            return Ok(s.clone());
        }
        let mut state = write_lock(&col.state);
        if let Some(s) = &state.snapshot {
            return Ok(s.clone()); // another reader rendered it first
        }
        let ColumnState {
            histogram, scratch, ..
        } = &mut *state;
        histogram.spans_into(scratch);
        let snapshot = Snapshot::from_parts(
            col.name.clone(),
            col.spec.label(),
            state.checkpoint,
            state.updates,
            state.scratch.clone(),
        );
        state.snapshot = Some(snapshot.clone());
        Ok(snapshot)
    }

    /// The number of batches applied to `column` so far.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        Ok(read_lock(&self.column(column)?.state).checkpoint)
    }

    /// Estimated number of values in `[a, b]` on `column`.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        Ok(self.snapshot(column)?.estimate_range(a, b))
    }

    /// Estimated number of values equal to `v` on `column`.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        Ok(self.snapshot(column)?.estimate_eq(v))
    }

    /// Total live mass on `column`.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        Ok(self.snapshot(column)?.total_count())
    }

    fn column(&self, column: &str) -> Result<Arc<Column>, CatalogError> {
        read_lock(&self.columns)
            .get(column)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownColumn(column.into()))
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("columns", &self.columns())
            .finish()
    }
}

/// Poison-tolerant read lock (shared with the sharded serving layer).
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Poison-tolerant write lock (shared with the sharded serving layer).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

struct SnapshotInner {
    column: String,
    label: String,
    checkpoint: u64,
    updates: u64,
    total: f64,
    spans: Vec<BucketSpan>,
    cdf: HistogramCdf,
}

/// A cheap, immutable view of one column's histogram at a checkpoint.
///
/// Cloning is one `Arc` bump; the snapshot implements [`ReadHistogram`]
/// (with a precomputed CDF, so estimates don't re-render spans) and can be
/// fed anywhere a histogram is expected — including `dh_optimizer`'s
/// join estimators, which is how mixed-algorithm joins run straight off a
/// catalog.
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

impl Snapshot {
    /// Assembles a snapshot from rendered spans (shared by [`Catalog`] and
    /// the sharded serving layer, which composes spans from many shards).
    pub(crate) fn from_parts(
        column: String,
        label: String,
        checkpoint: u64,
        updates: u64,
        spans: Vec<BucketSpan>,
    ) -> Self {
        Snapshot {
            inner: Arc::new(SnapshotInner {
                column,
                label,
                checkpoint,
                updates,
                total: spans.iter().map(|s| s.count).sum(),
                cdf: HistogramCdf::from_spans(spans.clone()),
                spans,
            }),
        }
    }

    /// The same rendered spans under a newer checkpoint/update stamp —
    /// used by the sharded layer when a version-matched cache hit raced
    /// with a checkpoint bump (spans identical, counter ahead).
    pub(crate) fn restamped(&self, checkpoint: u64, updates: u64) -> Snapshot {
        Snapshot {
            inner: Arc::new(SnapshotInner {
                column: self.inner.column.clone(),
                label: self.inner.label.clone(),
                checkpoint,
                updates,
                total: self.inner.total,
                cdf: self.inner.cdf.clone(),
                spans: self.inner.spans.clone(),
            }),
        }
    }

    /// The column this snapshot was taken from.
    pub fn column(&self) -> &str {
        &self.inner.column
    }

    /// The algorithm label of the owning column (paper legend string).
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// The batch count at the time of the snapshot.
    pub fn checkpoint(&self) -> u64 {
        self.inner.checkpoint
    }

    /// The update count at the time of the snapshot.
    pub fn updates(&self) -> u64 {
        self.inner.updates
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("column", &self.inner.column)
            .field("label", &self.inner.label)
            .field("checkpoint", &self.inner.checkpoint)
            .field("buckets", &self.inner.spans.len())
            .finish()
    }
}

impl ReadHistogram for Snapshot {
    fn spans(&self) -> Vec<BucketSpan> {
        self.inner.spans.clone()
    }

    fn for_each_span(&self, f: &mut dyn FnMut(&BucketSpan)) {
        for s in &self.inner.spans {
            f(s);
        }
    }

    fn total_count(&self) -> f64 {
        self.inner.total
    }

    fn num_buckets(&self) -> usize {
        self.inner.spans.len()
    }

    fn cdf(&self) -> HistogramCdf {
        self.inner.cdf.clone()
    }

    fn estimate_less_than(&self, x: f64) -> f64 {
        self.inner.cdf.mass_below(x)
    }

    fn estimate_le(&self, v: i64) -> f64 {
        self.inner.cdf.mass_below(v as f64 + 1.0)
    }

    fn estimate_range(&self, a: i64, b: i64) -> f64 {
        if a > b {
            return 0.0;
        }
        self.inner.cdf.mass_in(a as f64, b as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inserts(range: std::ops::Range<i64>) -> Vec<UpdateOp> {
        range.map(UpdateOp::Insert).collect()
    }

    #[test]
    fn register_apply_snapshot_round_trip() {
        let cat = Catalog::new();
        let memory = MemoryBudget::from_kb(1.0);
        cat.register("a", AlgoSpec::Dado, memory, 1).unwrap();
        assert_eq!(
            cat.register("a", AlgoSpec::Dc, memory, 1),
            Err(CatalogError::DuplicateColumn("a".into()))
        );
        let cp = cat.apply("a", &inserts(0..5000)).unwrap();
        assert_eq!(cp, 1);
        let snap = cat.snapshot("a").unwrap();
        assert_eq!(snap.checkpoint(), 1);
        assert_eq!(snap.updates(), 5000);
        assert_eq!(snap.column(), "a");
        assert_eq!(snap.label(), "DADO");
        assert!((snap.total_count() - 5000.0).abs() < 1e-9);
        assert!((snap.estimate_range(0, 4999) - 5000.0).abs() / 5000.0 < 0.02);
    }

    #[test]
    fn snapshots_are_cached_and_invalidate_on_write() {
        let cat = Catalog::new();
        cat.register("a", AlgoSpec::Dc, MemoryBudget::from_kb(0.5), 1)
            .unwrap();
        cat.apply("a", &inserts(0..1000)).unwrap();
        let s1 = cat.snapshot("a").unwrap();
        let s2 = cat.snapshot("a").unwrap();
        assert!(Arc::ptr_eq(&s1.inner, &s2.inner), "cached between writes");
        cat.apply("a", &inserts(0..10)).unwrap();
        let s3 = cat.snapshot("a").unwrap();
        assert!(!Arc::ptr_eq(&s1.inner, &s3.inner), "invalidated by write");
        assert_eq!(s3.checkpoint(), 2);
        // The old snapshot still reads consistently at its checkpoint.
        assert!((s1.total_count() - 1000.0).abs() < 1e-9);
        assert!((s3.total_count() - 1010.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_columns_error() {
        let cat = Catalog::new();
        assert_eq!(
            cat.apply("ghost", &[]).unwrap_err(),
            CatalogError::UnknownColumn("ghost".into())
        );
        assert!(cat.snapshot("ghost").is_err());
        assert!(cat.estimate_eq("ghost", 1).is_err());
        assert!(!cat.contains("ghost"));
        assert!(cat.is_empty());
        let msg = CatalogError::UnknownColumn("ghost".into()).to_string();
        assert!(msg.contains("ghost"));
    }

    #[test]
    fn mixed_specs_per_column() {
        let cat = Catalog::new();
        let memory = MemoryBudget::from_kb(0.5);
        for (name, spec) in [
            ("dc", AlgoSpec::Dc),
            ("svo", AlgoSpec::VOptimal),
            ("ac", AlgoSpec::Ac { disk_factor: 20 }),
        ] {
            cat.register(name, spec, memory, 7).unwrap();
            cat.apply(name, &inserts(0..2000)).unwrap();
        }
        assert_eq!(cat.columns(), ["ac", "dc", "svo"]);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.spec("svo").unwrap(), AlgoSpec::VOptimal);
        for name in ["dc", "svo", "ac"] {
            let est = cat.estimate_range(name, 0, 1999).unwrap();
            assert!((est - 2000.0).abs() / 2000.0 < 0.05, "{name}: {est}");
            assert_eq!(cat.checkpoint(name).unwrap(), 1);
        }
    }

    #[test]
    fn empty_batches_advance_checkpoints() {
        let cat = Catalog::new();
        cat.register("a", AlgoSpec::EquiDepth, MemoryBudget::from_kb(0.25), 0)
            .unwrap();
        assert_eq!(cat.apply("a", &[]).unwrap(), 1);
        assert_eq!(cat.apply("a", &[]).unwrap(), 2);
        assert_eq!(cat.snapshot("a").unwrap().num_buckets(), 0);
    }
}
