//! The multi-column [`Catalog`]: histograms maintained in place while
//! readers estimate off shared snapshots.
//!
//! One `Catalog` owns a histogram per registered column (any mix of
//! [`AlgoSpec`]s) behind a single cell per column, and serves the whole
//! [`ColumnStore`] API: epoch-stamped
//! [`WriteBatch`] commits (atomic across columns),
//! per-column [`Snapshot`]s and consistent multi-column
//! [`SnapshotSet`]s — immutable, `Arc`-shared views
//! that implement [`ReadHistogram`], so estimation (including
//! cross-column joins through `dh_optimizer`) runs off shared, cached
//! state between batches. The first read after a batch renders the
//! column once; for dynamic specs that is one span copy, while a static
//! spec pays its rebuild there (the cost static histograms owe
//! *somewhere* — choose a dynamic spec for write-hot columns).

use crate::spec::AlgoSpec;
use crate::store::{ColumnConfig, ColumnStore, SnapshotSet};
use crate::txn::{
    compose_at, BatchTicket, Cell, ColumnStamp, ComposeCache, DirectRestore, Registry,
    RestoreColumn, StoreColumn, WriteBatch,
};
use dh_core::{BucketSpan, HistogramCdf, ReadHistogram, UpdateOp};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Errors surfaced by [`ColumnStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The named column has not been registered.
    UnknownColumn(String),
    /// The column name is already taken.
    DuplicateColumn(String),
    /// A shard plan failed validation (zero shards, inverted domain), or
    /// a sharded store was asked to register a column without one.
    InvalidShardPlan(String),
    /// A past epoch was requested (see
    /// [`ColumnStore::snapshot_set_at`]) that the store no longer
    /// retains — it fell out of the time-travel ring, was dropped by an
    /// explicit GC, or predates a recovery. Carries the requested epoch.
    EpochEvicted(u64),
    /// A durability failure surfaced through a [`ColumnStore`] method —
    /// the `DurableStore` decorator could not append to or sync its
    /// epoch changelog. Carries the underlying `dh_wal` error rendered
    /// to a string (the trait's error type predates the durability
    /// layer; `DurableStore::open` returns the fully-typed error).
    Durability(String),
    /// The store is a read replica (a `dh_replica` `Follower`): it
    /// replays mutations from the leader's changelog and accepts none
    /// of its own. Route the write to the leader.
    ReadOnlyReplica,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            CatalogError::DuplicateColumn(c) => write!(f, "column '{c}' already registered"),
            CatalogError::InvalidShardPlan(why) => write!(f, "invalid shard plan: {why}"),
            CatalogError::EpochEvicted(epoch) => {
                write!(f, "epoch {epoch} is no longer retained for time travel")
            }
            CatalogError::Durability(why) => write!(f, "durability failure: {why}"),
            CatalogError::ReadOnlyReplica => {
                write!(
                    f,
                    "store is a read-only replica; route mutations to the leader"
                )
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// One registered column: a single [`Cell`] plus its publish-consistent
/// stamp and the compose cache.
struct Column {
    name: String,
    spec: AlgoSpec,
    cell: Cell,
    stamp: Mutex<ColumnStamp>,
    cache: Mutex<ComposeCache>,
}

impl StoreColumn for Column {
    type Staged = ();

    fn name(&self) -> &str {
        &self.name
    }

    fn stage_ops(&self, ticket: &Arc<BatchTicket>, ops: Vec<UpdateOp>) {
        self.cell.stage(ticket.clone(), ops);
    }

    fn stamp(&self) -> &Mutex<ColumnStamp> {
        &self.stamp
    }

    /// Synchronous store: the committing writer applies its own batch
    /// (readers could drain it themselves, but keeping maintenance on
    /// the write path preserves the single-lock cost model).
    fn settle(&self, _staged: &(), epoch: u64) {
        self.cell.drain_to(epoch);
    }

    fn render_at(&self, epoch: u64, stamp: ColumnStamp) -> Result<Snapshot, u64> {
        compose_at(
            &[&self.cell],
            epoch,
            &self.cache,
            &self.name,
            self.spec.label(),
            stamp.accepted,
            stamp.updates,
        )
    }

    fn restore_content(&self, epoch: u64, ops: Vec<UpdateOp>) {
        self.cell.restore(epoch, &ops);
    }
}

/// A thread-safe, multi-column histogram store serving through the
/// [`ColumnStore`] trait — the single-lock-per-column design.
///
/// Writers commit [`WriteBatch`]es (or single-column
/// [`apply`](ColumnStore::apply) calls) from any thread; readers take
/// epoch-pinned [`Snapshot`]s / [`SnapshotSet`]s at any time. Columns
/// are independent for maintenance — histogram application on one column
/// never blocks estimation on another — while the store-wide epoch clock
/// makes every commit atomic across the columns it touches.
#[derive(Default)]
pub struct Catalog {
    registry: Registry<Column>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ColumnStore for Catalog {
    /// Registers `column` with a fresh histogram built per `config`.
    ///
    /// The whole value domain is served from one histogram; a supplied
    /// [`ShardPlan`](crate::ShardPlan) is accepted and ignored (it
    /// describes physical partitioning, not semantics), so generic
    /// callers can register one config against any store.
    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), CatalogError> {
        self.registry.insert(column, || Column {
            name: column.to_string(),
            spec: config.spec,
            cell: Cell::new(config.spec.build(config.memory, config.seed)),
            stamp: Mutex::new(ColumnStamp::default()),
            cache: Mutex::new(ComposeCache::default()),
        })
    }

    fn columns(&self) -> Vec<String> {
        self.registry.names()
    }

    fn contains(&self, column: &str) -> bool {
        self.registry.contains(column)
    }

    fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        Ok(self.registry.get(column)?.spec)
    }

    fn commit(&self, batch: WriteBatch) -> Result<u64, CatalogError> {
        self.registry.commit(batch)
    }

    fn apply(&self, column: &str, batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        self.registry.apply(column, batch)
    }

    /// A no-op barrier: this store applies batches on the write path, so
    /// everything accepted is already applied.
    fn flush(&self, column: &str) -> Result<(), CatalogError> {
        self.registry.get(column)?;
        Ok(())
    }

    fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        self.registry.snapshot(column)
    }

    fn snapshot_set(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError> {
        self.registry.snapshot_set(columns)
    }

    fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        self.registry.checkpoint(column)
    }

    fn epoch(&self) -> u64 {
        self.registry.epoch()
    }

    fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        self.registry.estimate_range(column, a, b)
    }

    fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        self.registry.estimate_eq(column, v)
    }

    fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        self.registry.total_count(column)
    }

    fn read_stats(&self) -> crate::read::ReadStats {
        self.registry.read_stats()
    }
}

impl DirectRestore for Catalog {
    fn restore_at(&self, epoch: u64, images: Vec<RestoreColumn>) -> Result<(), CatalogError> {
        self.registry.restore_at(epoch, images)
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("columns", &self.columns())
            .field("epoch", &self.epoch())
            .finish()
    }
}

struct SnapshotInner {
    column: String,
    label: String,
    epoch: u64,
    checkpoint: u64,
    updates: u64,
    total: f64,
    spans: Vec<BucketSpan>,
    cdf: HistogramCdf,
}

/// A cheap, immutable view of one column's histogram, pinned to a
/// published epoch.
///
/// [`ColumnStore::snapshot`] always pins the epoch current at the call
/// — but that is a property of how the snapshot was *obtained*, not of
/// the type: a snapshot held across later commits keeps serving its
/// epoch, and stores with a retention ring (the `DurableStore`
/// decorator) hand out snapshots of *past* epochs through
/// [`ColumnStore::snapshot_set_at`] until retention evicts them
/// ([`CatalogError::EpochEvicted`]).
///
/// Cloning is one `Arc` bump; the snapshot implements [`ReadHistogram`]
/// (with a precomputed CDF, so estimates don't re-render spans) and can
/// be fed anywhere a histogram is expected — including `dh_optimizer`'s
/// join estimators, which is how mixed-algorithm joins run straight off
/// a catalog.
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

impl Snapshot {
    /// Assembles a snapshot from rendered spans (shared by every
    /// [`ColumnStore`] implementation).
    pub(crate) fn from_parts(
        column: String,
        label: String,
        epoch: u64,
        checkpoint: u64,
        updates: u64,
        spans: Vec<BucketSpan>,
    ) -> Self {
        Snapshot {
            inner: Arc::new(SnapshotInner {
                column,
                label,
                epoch,
                checkpoint,
                updates,
                total: spans.iter().map(|s| s.count).sum(),
                cdf: HistogramCdf::from_spans(spans.clone()),
                spans,
            }),
        }
    }

    /// The same rendered spans under a newer epoch/counter stamp — used
    /// when a version-matched cache hit raced with a commit that left the
    /// spans identical (an empty batch, or commits to other columns).
    pub(crate) fn restamped(&self, epoch: u64, checkpoint: u64, updates: u64) -> Snapshot {
        Snapshot {
            inner: Arc::new(SnapshotInner {
                column: self.inner.column.clone(),
                label: self.inner.label.clone(),
                epoch,
                checkpoint,
                updates,
                total: self.inner.total,
                cdf: self.inner.cdf.clone(),
                spans: self.inner.spans.clone(),
            }),
        }
    }

    /// The column this snapshot was taken from.
    pub fn column(&self) -> &str {
        &self.inner.column
    }

    /// The algorithm label of the owning column (paper legend string).
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// The store epoch this snapshot is pinned to: it contains exactly
    /// the batches published at or before this epoch — whole batches
    /// only. Snapshots of a [`SnapshotSet`] all
    /// share one epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The column's accepted-batch count as of the pinned epoch (stamped
    /// under the publication gate, so it counts exactly the batches this
    /// snapshot contains).
    pub fn checkpoint(&self) -> u64 {
        self.inner.checkpoint
    }

    /// The column's accepted-update count as of the pinned epoch.
    pub fn updates(&self) -> u64 {
        self.inner.updates
    }

    /// Whether two snapshots share the same underlying rendering (used
    /// by cache tests; clones of one snapshot always do).
    #[cfg(test)]
    pub(crate) fn same_rendering(&self, other: &Snapshot) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("column", &self.inner.column)
            .field("label", &self.inner.label)
            .field("epoch", &self.inner.epoch)
            .field("checkpoint", &self.inner.checkpoint)
            .field("buckets", &self.inner.spans.len())
            .finish()
    }
}

impl ReadHistogram for Snapshot {
    fn spans(&self) -> Vec<BucketSpan> {
        self.inner.spans.clone()
    }

    fn for_each_span(&self, f: &mut dyn FnMut(&BucketSpan)) {
        for s in &self.inner.spans {
            f(s);
        }
    }

    fn total_count(&self) -> f64 {
        self.inner.total
    }

    fn num_buckets(&self) -> usize {
        self.inner.spans.len()
    }

    fn cdf(&self) -> HistogramCdf {
        self.inner.cdf.clone()
    }

    fn estimate_less_than(&self, x: f64) -> f64 {
        self.inner.cdf.mass_below(x)
    }

    fn estimate_le(&self, v: i64) -> f64 {
        self.inner.cdf.mass_below(v as f64 + 1.0)
    }

    fn estimate_range(&self, a: i64, b: i64) -> f64 {
        if a > b {
            return 0.0;
        }
        self.inner.cdf.mass_in(a as f64, b as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::MemoryBudget;

    fn inserts(range: std::ops::Range<i64>) -> Vec<UpdateOp> {
        range.map(UpdateOp::Insert).collect()
    }

    fn config() -> ColumnConfig {
        ColumnConfig::new(AlgoSpec::Dado, MemoryBudget::from_kb(1.0)).with_seed(1)
    }

    #[test]
    fn register_apply_snapshot_round_trip() {
        let cat = Catalog::new();
        cat.register("a", config()).unwrap();
        assert_eq!(
            cat.register("a", config()),
            Err(CatalogError::DuplicateColumn("a".into()))
        );
        let cp = cat.apply("a", &inserts(0..5000)).unwrap();
        assert_eq!(cp, 1);
        let snap = cat.snapshot("a").unwrap();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.checkpoint(), 1);
        assert_eq!(snap.updates(), 5000);
        assert_eq!(snap.column(), "a");
        assert_eq!(snap.label(), "DADO");
        assert!((snap.total_count() - 5000.0).abs() < 1e-9);
        assert!((snap.estimate_range(0, 4999) - 5000.0).abs() / 5000.0 < 0.02);
    }

    #[test]
    fn snapshots_are_cached_and_invalidate_on_write() {
        let cat = Catalog::new();
        cat.register(
            "a",
            ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)).with_seed(1),
        )
        .unwrap();
        cat.apply("a", &inserts(0..1000)).unwrap();
        let s1 = cat.snapshot("a").unwrap();
        let s2 = cat.snapshot("a").unwrap();
        assert!(s1.same_rendering(&s2), "cached between writes");
        cat.apply("a", &inserts(0..10)).unwrap();
        let s3 = cat.snapshot("a").unwrap();
        assert!(!s1.same_rendering(&s3), "invalidated by write");
        assert_eq!(s3.checkpoint(), 2);
        assert_eq!(s3.epoch(), 2);
        // The old snapshot still reads consistently at its epoch.
        assert!((s1.total_count() - 1000.0).abs() < 1e-9);
        assert!((s3.total_count() - 1010.0).abs() < 1e-9);
    }

    #[test]
    fn cross_column_commits_are_atomic_and_epoch_stamped() {
        let cat = Catalog::new();
        cat.register("a", config()).unwrap();
        cat.register("b", config()).unwrap();
        let mut batch = WriteBatch::new();
        batch.extend("a", inserts(0..100));
        batch.extend("b", inserts(0..200));
        let epoch = cat.commit(batch).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(cat.epoch(), 1);
        let set = cat.snapshot_set(&["a", "b"]).unwrap();
        assert_eq!(set.epoch(), 1);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("a").unwrap().epoch(), 1);
        assert_eq!(set.get("b").unwrap().epoch(), 1);
        assert!((set.get("a").unwrap().total_count() - 100.0).abs() < 1e-9);
        assert!((set.get("b").unwrap().total_count() - 200.0).abs() < 1e-9);
        assert_eq!(set.columns().collect::<Vec<_>>(), ["a", "b"]);
    }

    #[test]
    fn commit_rejects_unknown_columns_without_side_effects() {
        let cat = Catalog::new();
        cat.register("a", config()).unwrap();
        let mut batch = WriteBatch::new();
        batch.extend("a", inserts(0..50));
        batch.insert("ghost", 1);
        assert_eq!(
            cat.commit(batch).unwrap_err(),
            CatalogError::UnknownColumn("ghost".into())
        );
        // Nothing was staged or published.
        assert_eq!(cat.epoch(), 0);
        assert_eq!(cat.checkpoint("a").unwrap(), 0);
        assert_eq!(cat.snapshot("a").unwrap().total_count(), 0.0);
    }

    #[test]
    fn unknown_columns_error() {
        let cat = Catalog::new();
        assert_eq!(
            cat.apply("ghost", &[]).unwrap_err(),
            CatalogError::UnknownColumn("ghost".into())
        );
        assert!(cat.snapshot("ghost").is_err());
        assert!(cat.snapshot_set(&["ghost"]).is_err());
        assert!(cat.estimate_eq("ghost", 1).is_err());
        assert!(cat.flush("ghost").is_err());
        assert!(!cat.contains("ghost"));
        assert!(cat.is_empty());
        let msg = CatalogError::UnknownColumn("ghost".into()).to_string();
        assert!(msg.contains("ghost"));
    }

    #[test]
    fn mixed_specs_per_column() {
        let cat = Catalog::new();
        let memory = MemoryBudget::from_kb(0.5);
        for (name, spec) in [
            ("dc", AlgoSpec::Dc),
            ("svo", AlgoSpec::VOptimal),
            ("ac", AlgoSpec::Ac { disk_factor: 20 }),
        ] {
            cat.register(name, ColumnConfig::new(spec, memory).with_seed(7))
                .unwrap();
            cat.apply(name, &inserts(0..2000)).unwrap();
        }
        assert_eq!(cat.columns(), ["ac", "dc", "svo"]);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.spec("svo").unwrap(), AlgoSpec::VOptimal);
        for name in ["dc", "svo", "ac"] {
            let est = cat.estimate_range(name, 0, 1999).unwrap();
            assert!((est - 2000.0).abs() / 2000.0 < 0.05, "{name}: {est}");
            assert_eq!(cat.checkpoint(name).unwrap(), 1);
        }
        // Three applies on three columns: three store epochs.
        assert_eq!(cat.epoch(), 3);
    }

    #[test]
    fn empty_batches_advance_checkpoints() {
        let cat = Catalog::new();
        cat.register(
            "a",
            ColumnConfig::new(AlgoSpec::EquiDepth, MemoryBudget::from_kb(0.25)),
        )
        .unwrap();
        assert_eq!(cat.apply("a", &[]).unwrap(), 1);
        assert_eq!(cat.apply("a", &[]).unwrap(), 2);
        assert_eq!(cat.snapshot("a").unwrap().num_buckets(), 0);
        assert_eq!(cat.snapshot("a").unwrap().epoch(), 2);
    }
}
