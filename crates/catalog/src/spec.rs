//! [`AlgoSpec`]: every histogram algorithm of the paper as one
//! configuration value with a uniform build path.

use crate::adapter::{StaticKind, StaticRebuild};
use dh_core::dynamic::{DadoHistogram, DcHistogram, DvoHistogram};
use dh_core::{BoxedHistogram, DataDistribution, DynHistogram, HistogramClass, MemoryBudget};
use dh_sample::AcHistogram;
use std::fmt;
use std::str::FromStr;

/// A histogram algorithm plus its configuration — the single source of
/// truth for dispatch, labels and memory layout across the workspace
/// (benches, `repro`, catalogs).
///
/// Dynamic variants are maintained in place; static variants are adapted
/// through [`StaticRebuild`] so the whole registry builds the same
/// [`BoxedHistogram`] currency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoSpec {
    /// Dynamic Compressed (Section 3).
    Dc,
    /// Dynamic V-Optimal (Section 4).
    Dvo,
    /// Dynamic Average-Deviation Optimal (Section 4.1).
    Dado,
    /// Approximate Compressed over a backing sample `disk_factor` times
    /// the main memory (Gibbons–Matias–Poosala; `gamma = -1`).
    Ac {
        /// Disk-space multiple granted to the backing sample (paper
        /// default 20).
        disk_factor: usize,
    },
    /// Equi-Width (classic static baseline).
    EquiWidth,
    /// Equi-Depth (classic static baseline).
    EquiDepth,
    /// Static Compressed (SC).
    Compressed,
    /// Static V-Optimal (SVO), exact DP.
    VOptimal,
    /// Static Average-Deviation Optimal (SADO), exact DP.
    Sado,
    /// Successive Similar Bucket Merge (SSBM).
    Ssbm,
}

impl AlgoSpec {
    /// The paper's default AC disk factor ("disk space equal to twenty
    /// times the main memory").
    pub const DEFAULT_AC_DISK_FACTOR: usize = 20;

    /// Every algorithm of the registry, with AC at its paper-default disk
    /// factor.
    pub fn all() -> [AlgoSpec; 10] {
        [
            AlgoSpec::Dc,
            AlgoSpec::Dvo,
            AlgoSpec::Dado,
            AlgoSpec::Ac {
                disk_factor: Self::DEFAULT_AC_DISK_FACTOR,
            },
            AlgoSpec::EquiWidth,
            AlgoSpec::EquiDepth,
            AlgoSpec::Compressed,
            AlgoSpec::VOptimal,
            AlgoSpec::Sado,
            AlgoSpec::Ssbm,
        ]
    }

    /// Whether this histogram is incrementally maintained (the paper's
    /// dynamic histograms) rather than rebuilt from a full scan.
    pub fn is_dynamic(self) -> bool {
        matches!(
            self,
            AlgoSpec::Dc | AlgoSpec::Dvo | AlgoSpec::Dado | AlgoSpec::Ac { .. }
        )
    }

    /// The per-bucket storage layout this algorithm pays for under the
    /// paper's memory model.
    pub fn class(self) -> HistogramClass {
        match self {
            AlgoSpec::Dvo | AlgoSpec::Dado => HistogramClass::BorderAndTwoCounters,
            _ => HistogramClass::BorderAndCount,
        }
    }

    /// Bucket count granted by `memory` under this algorithm's layout.
    pub fn buckets(self, memory: MemoryBudget) -> usize {
        memory.buckets(self.class())
    }

    /// The static builder behind this spec, `None` for dynamic specs.
    fn static_kind(self) -> Option<StaticKind> {
        match self {
            AlgoSpec::EquiWidth => Some(StaticKind::EquiWidth),
            AlgoSpec::EquiDepth => Some(StaticKind::EquiDepth),
            AlgoSpec::Compressed => Some(StaticKind::Compressed),
            AlgoSpec::VOptimal => Some(StaticKind::VOptimal),
            AlgoSpec::Sado => Some(StaticKind::Sado),
            AlgoSpec::Ssbm => Some(StaticKind::Ssbm),
            AlgoSpec::Dc | AlgoSpec::Dvo | AlgoSpec::Dado | AlgoSpec::Ac { .. } => None,
        }
    }

    /// Legend label, bit-identical to the paper's figures ("DC", "DVO",
    /// "DADO", "AC20X", "EquiWidth", "EquiDepth", "SC", "SVO", "SADO",
    /// "SSBM").
    pub fn label(self) -> String {
        match self {
            AlgoSpec::Dc => "DC".into(),
            AlgoSpec::Dvo => "DVO".into(),
            AlgoSpec::Dado => "DADO".into(),
            AlgoSpec::Ac { disk_factor } => format!("AC{disk_factor}X"),
            AlgoSpec::EquiWidth => "EquiWidth".into(),
            AlgoSpec::EquiDepth => "EquiDepth".into(),
            AlgoSpec::Compressed => "SC".into(),
            AlgoSpec::VOptimal => "SVO".into(),
            AlgoSpec::Sado => "SADO".into(),
            AlgoSpec::Ssbm => "SSBM".into(),
        }
    }

    /// Builds an empty histogram of this algorithm under `memory` bytes,
    /// ready to ingest an update stream through the object-safe
    /// [`DynHistogram`] interface.
    ///
    /// `seed` feeds AC's reservoir sample; the other algorithms are
    /// deterministic and ignore it.
    pub fn build(self, memory: MemoryBudget, seed: u64) -> BoxedHistogram {
        let n = self.buckets(memory);
        if let Some(kind) = self.static_kind() {
            return Box::new(StaticRebuild::new(kind, n));
        }
        match self {
            AlgoSpec::Dc => Box::new(DcHistogram::new(n)),
            AlgoSpec::Dvo => Box::new(DvoHistogram::new(n)),
            AlgoSpec::Dado => Box::new(DadoHistogram::new(n)),
            AlgoSpec::Ac { disk_factor } => Box::new(AcHistogram::new(
                n,
                memory.sample_elements(disk_factor).max(1),
                seed,
            )),
            _ => unreachable!("static specs handled above"),
        }
    }

    /// Builds a histogram of this algorithm already loaded with `truth`.
    ///
    /// Static algorithms construct directly (and eagerly) from the
    /// distribution — this is the registry face of the paper's
    /// build-from-a-full-scan protocol, and what construction-time
    /// experiments should measure. Dynamic algorithms replay the
    /// distribution as insertions in ascending value order.
    ///
    /// `truth` is taken by value so timing call sites can hoist the clone
    /// out of the measured region; pass `dist.clone()` to keep the
    /// original.
    pub fn build_seeded(
        self,
        memory: MemoryBudget,
        seed: u64,
        truth: DataDistribution,
    ) -> BoxedHistogram {
        match self.static_kind() {
            Some(kind) => Box::new(StaticRebuild::with_distribution(
                kind,
                self.buckets(memory),
                truth,
            )),
            None => {
                let mut h = self.build(memory, seed);
                for (v, c) in truth.iter() {
                    for _ in 0..c {
                        h.insert(v);
                    }
                }
                h
            }
        }
    }
}

impl fmt::Display for AlgoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error parsing an [`AlgoSpec`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgoSpecError {
    input: String,
}

impl fmt::Display for ParseAlgoSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown algorithm '{}'; known: DC, DVO, DADO, AC<k>X (e.g. AC20X), \
             EquiWidth, EquiDepth, SC, SVO, SADO, SSBM",
            self.input
        )
    }
}

impl std::error::Error for ParseAlgoSpecError {}

impl FromStr for AlgoSpec {
    type Err = ParseAlgoSpecError;

    /// Parses the paper's legend labels, case-insensitively. `AC` without
    /// a factor means the paper default (`AC20X`); `AC40X` and `AC40`
    /// both select a disk factor of 40.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAlgoSpecError { input: s.into() };
        let t = s.trim().to_ascii_uppercase();
        let spec = match t.as_str() {
            "DC" => AlgoSpec::Dc,
            "DVO" => AlgoSpec::Dvo,
            "DADO" => AlgoSpec::Dado,
            "EQUIWIDTH" | "EQUI-WIDTH" => AlgoSpec::EquiWidth,
            "EQUIDEPTH" | "EQUI-DEPTH" => AlgoSpec::EquiDepth,
            "SC" | "COMPRESSED" => AlgoSpec::Compressed,
            "SVO" | "VOPTIMAL" | "V-OPTIMAL" => AlgoSpec::VOptimal,
            "SADO" => AlgoSpec::Sado,
            "SSBM" => AlgoSpec::Ssbm,
            "AC" => AlgoSpec::Ac {
                disk_factor: Self::DEFAULT_AC_DISK_FACTOR,
            },
            _ => {
                let digits = t.strip_prefix("AC").ok_or_else(err)?;
                let digits = digits.strip_suffix('X').unwrap_or(digits);
                let disk_factor: usize = digits.parse().map_err(|_| err())?;
                if disk_factor == 0 {
                    return Err(err());
                }
                AlgoSpec::Ac { disk_factor }
            }
        };
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::{Histogram, ReadHistogram, UpdateOp};

    #[test]
    fn labels_match_paper_legends() {
        let labels: Vec<String> = AlgoSpec::all().iter().map(|a| a.label()).collect();
        assert_eq!(
            labels,
            [
                "DC",
                "DVO",
                "DADO",
                "AC20X",
                "EquiWidth",
                "EquiDepth",
                "SC",
                "SVO",
                "SADO",
                "SSBM"
            ]
        );
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for spec in AlgoSpec::all() {
            let parsed: AlgoSpec = spec.label().parse().expect("label parses");
            assert_eq!(parsed, spec);
        }
        assert_eq!(
            "ac".parse::<AlgoSpec>().unwrap(),
            AlgoSpec::Ac { disk_factor: 20 }
        );
        assert_eq!(
            "AC40".parse::<AlgoSpec>().unwrap(),
            AlgoSpec::Ac { disk_factor: 40 }
        );
        assert_eq!("sado".parse::<AlgoSpec>().unwrap(), AlgoSpec::Sado);
        assert!("AC0X".parse::<AlgoSpec>().is_err());
        assert!("DVOO".parse::<AlgoSpec>().is_err());
        let msg = "nope".parse::<AlgoSpec>().unwrap_err().to_string();
        assert!(msg.contains("nope") && msg.contains("SSBM"), "{msg}");
    }

    #[test]
    fn memory_layout_matches_paper_classes() {
        assert_eq!(AlgoSpec::Dvo.class(), HistogramClass::BorderAndTwoCounters);
        assert_eq!(AlgoSpec::Dado.class(), HistogramClass::BorderAndTwoCounters);
        for spec in [
            AlgoSpec::Dc,
            AlgoSpec::Ac { disk_factor: 20 },
            AlgoSpec::Compressed,
            AlgoSpec::VOptimal,
        ] {
            assert_eq!(spec.class(), HistogramClass::BorderAndCount);
        }
    }

    #[test]
    fn every_spec_builds_and_streams() {
        let memory = MemoryBudget::from_kb(0.5);
        let updates: Vec<UpdateOp> = (0..2000)
            .map(|i| {
                if i % 7 == 3 {
                    UpdateOp::Delete((i - 1) % 90)
                } else {
                    UpdateOp::Insert(i % 90)
                }
            })
            .collect();
        let live = updates.iter().fold(0.0, |acc, u| match u {
            UpdateOp::Insert(_) => acc + 1.0,
            UpdateOp::Delete(_) => acc - 1.0,
        });
        for spec in AlgoSpec::all() {
            let mut h = spec.build(memory, 9);
            h.apply_slice(&updates);
            assert!(
                (h.total_count() - live).abs() < 1e-6,
                "{}: total {} != {live}",
                spec.label(),
                h.total_count()
            );
            let est = h.estimate_range(0, 89);
            assert!(
                (est - live).abs() / live < 0.05,
                "{}: full-range estimate {est} far from {live}",
                spec.label()
            );
        }
    }

    #[test]
    fn build_seeded_matches_direct_static_construction() {
        let values: Vec<i64> = (0..3000).map(|i| (i * 13) % 250).collect();
        let truth = DataDistribution::from_values(&values);
        let memory = MemoryBudget::from_kb(0.25);
        let h = AlgoSpec::Ssbm.build_seeded(memory, 0, truth.clone());
        let direct = dh_static::SsbmHistogram::build(&truth, AlgoSpec::Ssbm.buckets(memory));
        assert_eq!(h.spans(), direct.spans());
        // Dynamic specs replay the distribution as sorted insertions.
        let h = AlgoSpec::Dado.build_seeded(memory, 0, truth.clone());
        assert!((h.total_count() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn generic_extension_works_through_the_box() {
        let memory = MemoryBudget::from_kb(0.25);
        let mut h = AlgoSpec::Dc.build(memory, 0);
        // `apply` (the generic extension) and `apply_slice` both reach the
        // boxed histogram.
        h.apply((0..500).map(|i| UpdateOp::Insert(i % 40)));
        assert_eq!(h.total_count(), 500.0);
    }
}
