//! The estimation *serving layer*: one registry for every histogram
//! algorithm in the workspace, one object-safe [`ColumnStore`] trait for
//! every store design, and transactional epoch-stamped writes — the
//! deployment the paper argues for (Section 1: the optimizer keeps
//! reading size estimates while the data set, and hence the histogram,
//! evolves underneath it), hardened for multi-column, multi-shard
//! consistency.
//!
//! * [`spec`] — [`AlgoSpec`], the unified configuration enum covering the
//!   dynamic histograms (DC, DVO, DADO, AC), the static baselines
//!   (Equi-Width, Equi-Depth, Compressed) and the paper's static
//!   contributions (V-Optimal, SADO, SSBM). `AlgoSpec::build` turns a
//!   spec plus a [`dh_core::MemoryBudget`] into a ready-to-stream
//!   [`dh_core::BoxedHistogram`]; `FromStr`/`Display` round-trip the
//!   paper's legend labels so CLIs can select algorithms by name.
//! * [`adapter`] — [`StaticRebuild`], the wrapper that gives
//!   scan-and-rebuild static histograms the same maintained-in-place
//!   [`dh_core::DynHistogram`] face as the dynamic ones.
//! * [`store`] — the [`ColumnStore`] trait (register / commit / apply /
//!   snapshot / estimate, object-safe), [`ColumnConfig`], and
//!   [`SnapshotSet`] — a consistent multi-column view pinned to one
//!   epoch. Estimation code, benches and the `repro serve` replay are
//!   written once against `&dyn ColumnStore`.
//! * [`txn`] — [`WriteBatch`] and the two-phase, epoch-stamped commit
//!   protocol (stage per cell, one atomic epoch publication per store)
//!   that guarantees readers never observe a torn batch — across shards
//!   *and* across columns.
//! * [`catalog`] — [`Catalog`], the single-cell-per-column store, and the
//!   epoch-pinned [`Snapshot`] every store serves.
//! * [`sharded`] — [`ShardedCatalog`]: a column's value domain
//!   partitioned across independently locked shards (drained inline or by
//!   per-shard MPSC workers), with snapshots composed back into one
//!   histogram through `dh_distributed`'s lossless superposition —
//!   multi-writer ingestion without a global lock, same read API. Shard
//!   borders adapt to the routed load: a [`ReshardPolicy`] (or an
//!   explicit [`ColumnStore::reshard`]) rebuilds the live [`ShardMap`]
//!   from the composed CDF behind the epoch barrier, so a skewed update
//!   stream cannot pile the ingestion onto one hot shard. The border
//!   move is one instance of the elastic rebuild plane:
//!   [`ColumnStore::rebuild`] executes a [`RebuildPlan`] of deltas —
//!   grow/shrink the shard count, migrate the algorithm online,
//!   re-budget the memory, switch the ingestion design — behind the
//!   same barrier with exact mass conservation, and an
//!   [`AutoscalePolicy`] drives the shard count from the load on its
//!   own (see `docs/ELASTIC.md`; the live shape is
//!   [`ColumnStore::column_shape`]).
//! * [`durable`] — [`DurableStore`], crash durability as a decorator
//!   over any of the above: every publication appended to `dh_wal`'s
//!   epoch changelog, checkpoints on an epoch cadence,
//!   [`DurableStore::open`] replaying the store back (torn final record
//!   tolerated, corruption typed), and a ring of retained generations
//!   serving past-epoch [`ColumnStore::snapshot_set_at`] reads — see
//!   `docs/DURABILITY.md`.
//!
//! This crate (not `dh_core`) hosts `AlgoSpec` because building AC and
//! the static baselines requires `dh_sample` and `dh_static`, which both
//! sit *above* `dh_core` in the crate DAG.
//!
//! # Example: mixed algorithms behind one API
//!
//! ```
//! use dh_catalog::{AlgoSpec, Catalog, ColumnConfig, ColumnStore};
//! use dh_core::{MemoryBudget, ReadHistogram, UpdateOp};
//!
//! let catalog = Catalog::new();
//! let memory = MemoryBudget::from_kb(1.0);
//! catalog
//!     .register("orders.amount", ColumnConfig::new(AlgoSpec::Dc, memory).with_seed(1))
//!     .unwrap();
//! catalog
//!     .register("orders.qty", ColumnConfig::new("SVO".parse().unwrap(), memory))
//!     .unwrap();
//!
//! let batch: Vec<UpdateOp> = (0..4000).map(|i| UpdateOp::Insert(i % 120)).collect();
//! catalog.apply("orders.amount", &batch).unwrap();
//! catalog.apply("orders.qty", &batch).unwrap();
//!
//! let snap = catalog.snapshot("orders.amount").unwrap();
//! assert_eq!(snap.checkpoint(), 1);
//! assert!(snap.estimate_range(0, 119) > 3900.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapter;
pub mod catalog;
pub mod durable;
pub mod global;
pub mod read;
pub mod sharded;
pub mod spec;
pub mod store;
pub mod txn;

pub use adapter::StaticRebuild;
pub use catalog::{Catalog, CatalogError, Snapshot};
pub use durable::{DurableError, DurableOptions, DurableStore, StoreKind};
pub use read::ReadStats;
pub use sharded::{
    AutoscalePolicy, ColumnShape, IngestMode, RebuildPlan, ReshardPolicy, ShardMap, ShardPlan,
    ShardedCatalog,
};
pub use spec::{AlgoSpec, ParseAlgoSpecError};
pub use store::{ColumnConfig, ColumnStore, SnapshotSet};
pub use txn::WriteBatch;
