//! The sharded serving layer: one column's domain partitioned across
//! independently locked shards, composed back into a single histogram
//! through `dh_distributed`'s lossless superposition — with **dynamic
//! re-sharding** that moves the shard borders when the routed load skews.
//!
//! A [`Catalog`](crate::Catalog) column serializes histogram maintenance
//! behind one cell. A [`ShardedCatalog`] column instead splits its value
//! domain into `k` contiguous subranges, each owning a private histogram
//! (built from the same [`AlgoSpec`], with the memory budget divided
//! evenly, remainder bytes going to the first shards), so concurrent
//! writers whose batches land on different shards never touch the same
//! state lock. Readers still see *one* histogram: snapshot composition
//! superimposes the per-shard spans ([`dh_distributed::superimpose`],
//! the Section 8 union estimator — shards are "member sites" of a
//! degenerate shared-nothing union whose members happen to be disjoint),
//! so a [`Snapshot`] of a sharded column feeds `dh_optimizer` exactly
//! like an unsharded one.
//!
//! Writes follow the store-wide two-phase, epoch-stamped commit of
//! [`crate::txn`]: a batch is *staged* into every touched shard's pending
//! queue, then *published* in one atomic epoch bump — so no reader ever
//! observes a batch torn between shards (or, for a multi-column
//! [`WriteBatch`], between columns). Two ingestion
//! designs then differ only in **who applies** the staged entries
//! ([`IngestMode`]):
//!
//! * **`Locked`** — the committing writer drains each touched shard
//!   itself, under that shard's own lock. Writers on different shards
//!   proceed in parallel; writers on the same shard contend only there.
//! * **`Channel`** — each shard owns an MPSC drain worker; after
//!   publishing, writers only nudge the workers and return, never waiting
//!   on histogram maintenance. [`ColumnStore::flush`] is the barrier that
//!   makes reads deterministic (readers also self-serve: a snapshot
//!   drains published entries it still needs).
//!
//! Either way drains apply entries in epoch order, so locked and channel
//! ingestion produce identical histograms for the same commit sequence.
//! The `contention` bench and `repro serve` compare both designs against
//! the single-cell `Catalog` under multi-writer replay — through the
//! same `&dyn ColumnStore` code path; `ARCHITECTURE.md` quotes the
//! numbers.
//!
//! # Dynamic re-sharding
//!
//! The paper's core argument is that histogram partitions must *adapt*
//! as the data evolves; a shard plan frozen at registration loses the
//! multi-writer win the moment the update stream skews, because most
//! batches route into one or two hot shards. The sharded store
//! therefore keeps the registered [`ShardPlan`] only as the *initial*
//! routing and serves through a live [`ShardMap`] whose borders can
//! move:
//!
//! * every `route_batch` cheaply counts routed ops per shard
//!   ([`ColumnStore::shard_load`]);
//! * a [`ReshardPolicy`] on [`ColumnConfig`] fires on
//!   `commit`/`apply` when the max/mean routed load exceeds its
//!   threshold (rate-limited by a minimum epoch interval);
//! * [`ColumnStore::reshard`] pins the column behind the epoch clock
//!   (new commits block on the routing lock, in-flight commits are
//!   waited out), drains every shard to the barrier epoch, computes
//!   equal-*load* borders from the composed snapshot's CDF, rebuilds the
//!   per-shard histograms by re-routing the composed spans, and swaps
//!   the new map and cells in atomically — readers never observe a mixed
//!   routing, and total mass is preserved exactly.
//!
//! A re-shard publishes no epoch: snapshots pinned at or after the
//! barrier render from the rebuilt shards, snapshots pinned strictly
//! before it retry at the barrier epoch (the same retry path a
//! concurrent drain uses), and whole-epoch accounting holds throughout
//! (`tests/txn_torn_reads.rs` races writers against a re-sharder).
//!
//! # Elastic rebuilds
//!
//! The border move is the all-defaults case of a general rebuild plane.
//! [`ColumnStore::rebuild`] takes a [`RebuildPlan`] — four optional
//! deltas: shard count, [`AlgoSpec`], [`MemoryBudget`], [`IngestMode`] —
//! and executes any combination behind the same pin → drain-to-barrier →
//! compose → clip/re-ingest → atomic-swap sequence: grow or shrink `k`,
//! migrate the algorithm online (the composed spans are re-ingested
//! into freshly built target-spec histograms by largest remainder, so
//! exactly `round(total)` insertions come through), re-split a new
//! budget, or switch ingestion designs. [`ColumnStore::reshard`] is the
//! empty plan. An [`AutoscalePolicy`] on [`ColumnConfig`] drives the
//! shard-count knob automatically — at or above its up-rate the count
//! doubles toward the cap, at or below its down-rate it halves toward
//! the floor, in between it falls back to the skew rebalance. The live
//! shape (vs the frozen registration) is [`ColumnStore::column_shape`];
//! the whole plane is specified in `docs/ELASTIC.md` and pinned by
//! `tests/rebuild.rs`.
//!
//! # Example
//!
//! ```
//! use dh_catalog::{AlgoSpec, ColumnConfig, ColumnStore, ShardPlan, ShardedCatalog};
//! use dh_core::{MemoryBudget, ReadHistogram, UpdateOp};
//!
//! let catalog = ShardedCatalog::new();
//! let plan = ShardPlan::new(0, 999, 4).unwrap(); // domain [0, 999], 4 shards
//! let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
//!     .with_seed(1)
//!     .with_plan(plan);
//! catalog.register("orders.amount", config).unwrap();
//!
//! // A heavily skewed stream: everything lands in the first shard.
//! let batch: Vec<UpdateOp> = (0..4000).map(|i| UpdateOp::Insert(i % 250)).collect();
//! catalog.apply("orders.amount", &batch).unwrap();
//!
//! // Move the borders to equalize the load; mass is preserved exactly.
//! assert!(catalog.reshard("orders.amount").unwrap());
//! let snap = catalog.snapshot("orders.amount").unwrap();
//! assert_eq!(snap.epoch(), 1);
//! assert!((snap.total_count() - 4000.0).abs() < 1e-9);
//! ```

use crate::catalog::CatalogError;
use crate::spec::AlgoSpec;
use crate::store::{ColumnConfig, ColumnStore, SnapshotSet};
use crate::txn::{
    compose_at, lock, read_lock, write_lock, BatchTicket, Cell, ColumnStamp, ComposeCache,
    DirectRestore, Registry, RestoreColumn, StoreColumn, WriteBatch,
};
use crate::Snapshot;
use dh_core::{BucketSpan, MemoryBudget, UpdateOp};
use dh_distributed::superimpose;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// How a sharded column applies its staged update batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// The committing writer drains each touched shard itself, under that
    /// shard's own lock. Synchronous: when
    /// [`ColumnStore::apply`]/[`ColumnStore::commit`] returns, the batch
    /// is in the histograms.
    #[default]
    Locked,
    /// One MPSC drain worker per shard applies staged entries; writers
    /// publish, nudge the workers and return without waiting on histogram
    /// maintenance. Asynchronous: use [`ColumnStore::flush`] as a barrier
    /// before reads that must observe every prior commit (snapshots are
    /// still never torn — they see whole published batches only, as of
    /// whatever epoch they pin).
    Channel,
}

/// How a column is sharded at registration: its value domain, the shard
/// count, and the ingestion design. Constructible only through
/// [`ShardPlan::new`] (which rejects degenerate input), so every live
/// plan is valid — the single validation point.
///
/// The plan fixes the *initial, equal-width* borders; at runtime the
/// store routes through a [`ShardMap`] whose borders may move on
/// re-shard ([`ColumnStore::reshard`]), and the shard count and
/// ingestion mode may change through an elastic rebuild
/// ([`ColumnStore::rebuild`]). Only the domain is permanent.
///
/// # Routing invariants
///
/// Every plan guarantees (and every [`ShardMap`] preserves):
///
/// * [`route`](ShardPlan::route) is total on `i64` (values outside the
///   domain clamp to the edge shards) and maps into `0..shards`;
/// * [`shard_range`](ShardPlan::shard_range) is the exact inverse: the
///   ranges tile the domain — disjoint, in order, covering every value —
///   and `route(v) == i` iff `v` clamps into `shard_range(i)`;
/// * both are overflow-safe over the full `i64` domain (widened to
///   `i128`/`u128` internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPlan {
    /// Inclusive value domain `[lo, hi]` partitioned across shards.
    domain: (i64, i64),
    /// Number of shards (>= 1).
    shards: usize,
    /// Ingestion design.
    mode: IngestMode,
}

impl ShardPlan {
    /// A locked-ingestion plan over the inclusive domain `[lo, hi]` with
    /// `shards` equal-width shards.
    ///
    /// # Errors
    /// [`CatalogError::InvalidShardPlan`] if `shards == 0` or `lo > hi`
    /// (degenerate input is rejected, never clamped).
    pub fn new(lo: i64, hi: i64, shards: usize) -> Result<Self, CatalogError> {
        if shards == 0 {
            return Err(CatalogError::InvalidShardPlan(
                "need at least one shard (shards == 0)".into(),
            ));
        }
        if lo > hi {
            return Err(CatalogError::InvalidShardPlan(format!(
                "empty domain [{lo}, {hi}] (lo > hi)"
            )));
        }
        Ok(Self {
            domain: (lo, hi),
            shards,
            mode: IngestMode::Locked,
        })
    }

    /// The same plan with channel (MPSC drain worker) ingestion.
    pub fn channel(mut self) -> Self {
        self.mode = IngestMode::Channel;
        self
    }

    /// The inclusive value domain `[lo, hi]` partitioned across shards.
    /// Values outside it route to the nearest edge shard.
    pub fn domain(&self) -> (i64, i64) {
        self.domain
    }

    /// Number of shards (>= 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingestion design.
    pub fn mode(&self) -> IngestMode {
        self.mode
    }

    /// The shard index a value routes to under the *initial* equal-width
    /// partition of the domain, clamped at the edges. Total on `i64`;
    /// always in `0..self.shards()`. (After a re-shard the live borders
    /// are those of [`ShardedCatalog::shard_map`].)
    pub fn route(&self, v: i64) -> usize {
        let (lo, hi) = self.domain;
        let v = v.clamp(lo, hi);
        // Equal-width cells; widen before subtracting so domains spanning
        // the full i64 range can't overflow.
        let width = (hi as i128 - lo as i128) as u128 + 1;
        let off = (v as i128 - lo as i128) as u128;
        ((off * self.shards as u128 / width) as usize).min(self.shards - 1)
    }

    /// The inclusive value subrange owned by shard `i` under the initial
    /// equal-width partition — the exact inverse of
    /// [`route`](ShardPlan::route): the ranges tile the domain in order,
    /// and in-domain `v` satisfies `route(v) == i` iff `v` lies in
    /// `shard_range(i)`. With more shards than domain values some shards
    /// own nothing; their range comes back inverted (`b == a - 1`),
    /// consistent with an empty inclusive range.
    ///
    /// # Panics
    /// Panics if `i >= self.shards()`.
    pub fn shard_range(&self, i: usize) -> (i64, i64) {
        assert!(i < self.shards, "shard index out of range");
        let (lo, hi) = self.domain;
        let width = (hi as i128 - lo as i128) as u128 + 1;
        let k = self.shards as u128;
        // Inverse of `route`: value offset `off` lands in shard i iff
        // off * k / width == i, i.e. off in [ceil(i*width/k), ceil((i+1)*width/k) - 1].
        // Offsets fit in i128 (width <= 2^64), so the lo + offset sums
        // stay exact even on full-i64 domains.
        let start = |i: u128| (i * width).div_ceil(k) as i128;
        let a = (lo as i128 + start(i as u128)) as i64;
        let b = (lo as i128 + start(i as u128 + 1) - 1) as i64;
        (a, b)
    }
}

/// When a sharded column should move its shard borders automatically.
///
/// Attached to a [`ColumnConfig`] via
/// [`with_reshard`](ColumnConfig::with_reshard); evaluated after every
/// [`ColumnStore::commit`]/[`ColumnStore::apply`] that touches the
/// column. All three gates must pass before a re-shard is attempted
/// (an explicit [`ColumnStore::reshard`] call bypasses them).
#[derive(Debug, Clone, Copy)]
pub struct ReshardPolicy {
    /// Fire when `max(shard load) / mean(shard load)` reaches this ratio
    /// (must be finite and >= 1; `1.0` re-balances eagerly, larger values
    /// tolerate more skew). Loads are the routed-op counters of the
    /// current shard map ([`ColumnStore::shard_load`]).
    pub skew_threshold: f64,
    /// Minimum published epochs between two automatic re-shard attempts
    /// (rate limit; an attempt that leaves the borders unchanged still
    /// counts, so a persistently-balanced column is not re-examined
    /// every commit).
    pub min_interval_epochs: u64,
    /// Minimum routed ops accumulated by the current shard map before
    /// the skew ratio is judged (keeps a handful of early batches from
    /// triggering a rebuild on noise).
    pub min_load: u64,
}

/// Bit-wise equality on the float threshold (`f64::to_bits`), making
/// the policy — and through it [`ColumnConfig`] —
/// [`Eq`]: deterministic for every value (a NaN threshold equals
/// itself, `-0.0 != 0.0`), which is what crash recovery needs when it
/// asserts a replayed register record matches the live config.
impl PartialEq for ReshardPolicy {
    fn eq(&self, other: &Self) -> bool {
        self.skew_threshold.to_bits() == other.skew_threshold.to_bits()
            && self.min_interval_epochs == other.min_interval_epochs
            && self.min_load == other.min_load
    }
}

impl Eq for ReshardPolicy {}

impl Default for ReshardPolicy {
    /// Fire at 2x mean shard load, at most every 16 epochs, after at
    /// least 4096 routed ops.
    fn default() -> Self {
        Self {
            skew_threshold: 2.0,
            min_interval_epochs: 16,
            min_load: 4096,
        }
    }
}

/// What an elastic rebuild should change about a column's live shape.
///
/// Every field is a *delta*: `None` keeps the column's current value at
/// the barrier, `Some` replaces it. The all-`None` default is a pure
/// border rebalance — exactly what [`ColumnStore::reshard`] runs. All
/// four deltas execute behind the same epoch barrier (pin → drain →
/// compose → clip/re-ingest → atomic swap), so any combination — grow
/// `k` while migrating DC → DADO under a new budget — is one atomic
/// routing swap with exact mass conservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebuildPlan {
    /// Target shard count (`None` keeps the live count; `Some(0)` is
    /// rejected by [`ColumnStore::rebuild`]).
    pub shards: Option<usize>,
    /// Target algorithm (`None` keeps the live one). The composed spans
    /// are re-ingested into freshly built histograms of this spec —
    /// online algorithm migration, e.g. static → dynamic.
    pub spec: Option<AlgoSpec>,
    /// Target total memory budget, re-split across the (possibly new)
    /// shard count (`None` keeps the live budget).
    pub memory: Option<MemoryBudget>,
    /// Target ingestion design (`None` keeps the live one). Switching to
    /// [`IngestMode::Channel`] spawns drain workers for the new
    /// generation; switching away joins them when the old generation
    /// retires.
    pub ingest_mode: Option<IngestMode>,
}

impl RebuildPlan {
    /// The no-op delta: a pure border rebalance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the target shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Sets the target algorithm.
    pub fn with_spec(mut self, spec: AlgoSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Sets the target total memory budget.
    pub fn with_memory(mut self, memory: MemoryBudget) -> Self {
        self.memory = Some(memory);
        self
    }

    /// Sets the target ingestion design.
    pub fn with_ingest_mode(mut self, mode: IngestMode) -> Self {
        self.ingest_mode = Some(mode);
        self
    }

    /// Whether every field is `None` (a pure border rebalance).
    pub fn is_rebalance(&self) -> bool {
        *self == Self::default()
    }
}

/// A column's *live* shape: the structural choices a [`RebuildPlan`] can
/// change, as currently served. Contrast with the frozen registration
/// [`ShardPlan`] returned by [`ShardedCatalog::plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnShape {
    /// The algorithm the live histograms were built from.
    pub spec: AlgoSpec,
    /// The total memory budget split across the live shards.
    pub memory: MemoryBudget,
    /// The live shard count.
    pub shards: usize,
    /// The live ingestion design.
    pub ingest_mode: IngestMode,
    /// The registered value domain (permanent; rebuilds never change it).
    pub domain: (i64, i64),
}

/// When — and *how* — a sharded column should rebuild itself
/// automatically: the elastic generalization of [`ReshardPolicy`].
///
/// Attached to a [`ColumnConfig`] via
/// [`with_autoscale`](ColumnConfig::with_autoscale) and judged after
/// every commit that touches the column (rate-limited by
/// `min_interval_epochs`). Where a `ReshardPolicy` can only move
/// borders, an autoscale decision returns a full [`RebuildPlan`]:
///
/// * routed throughput ≥ `scale_up_rate` ops/epoch → *grow* `k`
///   (doubling, capped at `max_shards`);
/// * routed throughput ≤ `scale_down_rate` ops/epoch → *shrink* `k`
///   (halving, floored at `min_shards`), so an idle column stops paying
///   per-shard overhead;
/// * otherwise, skewed shard load (max/mean ≥ `skew_threshold`) →
///   rebalance the borders at the current `k`.
#[derive(Debug, Clone, Copy)]
pub struct AutoscalePolicy {
    /// Lower bound on the shard count (>= 1); scale-down stops here.
    pub min_shards: usize,
    /// Upper bound on the shard count (>= `min_shards`); scale-up stops
    /// here.
    pub max_shards: usize,
    /// Routed ops per epoch at or above which the shard count doubles.
    pub scale_up_rate: u64,
    /// Routed ops per epoch at or below which the shard count halves.
    pub scale_down_rate: u64,
    /// Border-rebalance gate: rebalance when `max(load) / mean(load)`
    /// reaches this ratio (must be finite and >= 1).
    pub skew_threshold: f64,
    /// Minimum published epochs between two automatic decisions — the
    /// throughput window: rates are judged over the ops routed since the
    /// last judgment.
    pub min_interval_epochs: u64,
    /// Minimum routed ops accumulated by the current generation before
    /// the *skew* gate is judged (the rate gates have their own
    /// thresholds).
    pub min_load: u64,
}

/// Bit-wise equality on the float threshold, for the same reason as
/// [`ReshardPolicy`]: recovery compares replayed configs for equality.
impl PartialEq for AutoscalePolicy {
    fn eq(&self, other: &Self) -> bool {
        self.min_shards == other.min_shards
            && self.max_shards == other.max_shards
            && self.scale_up_rate == other.scale_up_rate
            && self.scale_down_rate == other.scale_down_rate
            && self.skew_threshold.to_bits() == other.skew_threshold.to_bits()
            && self.min_interval_epochs == other.min_interval_epochs
            && self.min_load == other.min_load
    }
}

impl Eq for AutoscalePolicy {}

impl Default for AutoscalePolicy {
    /// Scale between 1 and 32 shards: up above 4096 ops/epoch, down at
    /// or below 64, rebalance at 2x mean skew, judged at most every 16
    /// epochs after 4096 routed ops.
    fn default() -> Self {
        Self {
            min_shards: 1,
            max_shards: 32,
            scale_up_rate: 4096,
            scale_down_rate: 64,
            skew_threshold: 2.0,
            min_interval_epochs: 16,
            min_load: 4096,
        }
    }
}

impl AutoscalePolicy {
    /// Judges one throughput window: the column served `window_ops`
    /// routed ops over `window_epochs` published epochs at `shards`
    /// shards, with per-shard generation loads `loads`. Returns the
    /// [`RebuildPlan`] to run, or `None` to leave the column alone.
    ///
    /// Pure and deterministic — `DurableStore` logs the *decision* (the
    /// resolved plan), so replay never re-judges a window.
    pub fn decide(
        &self,
        shards: usize,
        window_ops: u64,
        window_epochs: u64,
        loads: &[u64],
    ) -> Option<RebuildPlan> {
        let rate = window_ops / window_epochs.max(1);
        if rate >= self.scale_up_rate.max(1) && shards < self.max_shards {
            let target = shards.saturating_mul(2).min(self.max_shards);
            return Some(RebuildPlan::new().with_shards(target));
        }
        if rate <= self.scale_down_rate && shards > self.min_shards.max(1) {
            let target = (shards / 2).max(self.min_shards).max(1);
            return Some(RebuildPlan::new().with_shards(target));
        }
        let total: u64 = loads.iter().sum();
        if loads.len() > 1 && total >= self.min_load.max(1) {
            let max = loads.iter().copied().max().unwrap_or(0);
            let mean = total as f64 / loads.len() as f64;
            if max as f64 >= self.skew_threshold * mean {
                return Some(RebuildPlan::new());
            }
        }
        None
    }
}

/// Validates the automatic-rebuild policies a registration carries —
/// shared by [`ShardedCatalog::register`] and the `DurableStore`
/// decorator, which strips the policies out of the config before the
/// inner store ever sees them and must therefore reject a nonsensical
/// policy itself.
pub(crate) fn validate_policies(config: &ColumnConfig) -> Result<(), CatalogError> {
    if let Some(policy) = config.reshard {
        if !policy.skew_threshold.is_finite() || policy.skew_threshold < 1.0 {
            return Err(CatalogError::InvalidShardPlan(format!(
                "reshard skew_threshold must be finite and >= 1, got {}",
                policy.skew_threshold
            )));
        }
    }
    if let Some(auto) = config.autoscale {
        if !auto.skew_threshold.is_finite() || auto.skew_threshold < 1.0 {
            return Err(CatalogError::InvalidShardPlan(format!(
                "autoscale skew_threshold must be finite and >= 1, got {}",
                auto.skew_threshold
            )));
        }
        if auto.min_shards == 0 {
            return Err(CatalogError::InvalidShardPlan(
                "autoscale min_shards must be >= 1".into(),
            ));
        }
        if auto.max_shards < auto.min_shards {
            return Err(CatalogError::InvalidShardPlan(format!(
                "autoscale max_shards {} below min_shards {}",
                auto.max_shards, auto.min_shards
            )));
        }
        // The rate gates need hysteresis: scale-up is judged first, so
        // a policy satisfying both gates in one window would ratchet
        // the column to `max_shards` and never shrink it.
        if auto.scale_down_rate >= auto.scale_up_rate {
            return Err(CatalogError::InvalidShardPlan(format!(
                "autoscale scale_down_rate {} must be below scale_up_rate {}",
                auto.scale_down_rate, auto.scale_up_rate
            )));
        }
    }
    Ok(())
}

/// The live routing table of a sharded column: `k` contiguous value
/// subranges given by their start cuts, over the registered domain.
///
/// A freshly registered column routes through
/// [`ShardMap::equal_width`] (identical to [`ShardPlan::route`]); a
/// re-shard replaces it with [`ShardMap::balanced`] borders computed
/// from the composed snapshot's CDF. Both constructions preserve the
/// routing invariants documented on [`ShardPlan`]: `route` is total on
/// `i64` (out-of-domain values clamp to the edge shards) and
/// [`shard_range`](ShardMap::shard_range) is its exact inverse, tiling
/// the domain in order (empty shards come back inverted, `b == a - 1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShardMap {
    /// Inclusive value domain `[lo, hi]`.
    domain: (i64, i64),
    /// `starts[i]` is the first value owned by shard `i`;
    /// `starts[0] == lo`. Non-decreasing; equal consecutive starts mean
    /// the earlier shard is empty.
    starts: Vec<i64>,
}

impl ShardMap {
    /// The equal-width map over `[lo, hi]` — the initial routing of
    /// every [`ShardPlan`], bit-identical to [`ShardPlan::route`] /
    /// [`ShardPlan::shard_range`].
    ///
    /// # Errors
    /// [`CatalogError::InvalidShardPlan`] if `shards == 0` or `lo > hi`.
    pub fn equal_width(domain: (i64, i64), shards: usize) -> Result<Self, CatalogError> {
        let plan = ShardPlan::new(domain.0, domain.1, shards)?;
        let starts = (0..shards).map(|i| plan.shard_range(i).0).collect();
        Ok(Self { domain, starts })
    }

    /// A map whose borders equalize the *mass* of `spans` (the composed
    /// snapshot of the column) across shards: cut `i` sits at the
    /// `i/k` quantile of the span CDF, rounded to an integer and nudged
    /// so every shard keeps at least one domain value. Mass observed per
    /// shard approximates future routed load when updates follow the
    /// data distribution — the equal-*load* borders a re-shard installs.
    ///
    /// Falls back to [`ShardMap::equal_width`] when the spans carry no
    /// mass or the domain holds fewer values than shards (where empty
    /// shards are unavoidable anyway).
    ///
    /// # Errors
    /// [`CatalogError::InvalidShardPlan`] if `shards == 0` or `lo > hi`.
    pub fn balanced(
        spans: &[BucketSpan],
        domain: (i64, i64),
        shards: usize,
    ) -> Result<Self, CatalogError> {
        // Validates the domain/shard count exactly like `ShardPlan::new`.
        let fallback = Self::equal_width(domain, shards)?;
        let (lo, hi) = domain;
        let width = (hi as i128 - lo as i128) as u128 + 1;
        let total: f64 = spans.iter().map(|s| s.count).sum();
        if width < shards as u128 || !total.is_finite() || total <= 0.0 {
            return Ok(fallback);
        }
        let mut sorted: Vec<BucketSpan> = spans.iter().filter(|s| s.count > 0.0).copied().collect();
        sorted.sort_by(|a, b| a.lo.total_cmp(&b.lo));

        let mut starts = Vec::with_capacity(shards);
        starts.push(lo);
        let mut acc = 0.0;
        let mut idx = 0;
        for i in 1..shards {
            let target = total * i as f64 / shards as f64;
            while idx < sorted.len() && acc + sorted[idx].count < target {
                acc += sorted[idx].count;
                idx += 1;
            }
            let x = match sorted.get(idx) {
                // Walk exhausted (floating-point shortfall): everything
                // left of the cut, park it at the domain end.
                None => hi as f64,
                Some(s) => {
                    let need = target - acc;
                    if s.count > 0.0 && s.width() > 0.0 {
                        s.lo + (need / s.count) * s.width()
                    } else {
                        s.lo
                    }
                }
            };
            // Integer cut, clamped so cuts stay strictly increasing and
            // every remaining shard keeps at least one value (`as`
            // saturates, the clamp restores validity; width >= shards
            // makes the window non-empty by induction).
            let min_cut = *starts.last().expect("seeded with lo") as i128 + 1;
            let max_cut = hi as i128 - (shards - 1 - i) as i128;
            let cut = (x.ceil() as i128).clamp(min_cut, max_cut);
            starts.push(cut as i64);
        }
        Self::from_cuts(domain, starts)
    }

    /// A map from explicit start cuts: `starts[i]` is the first value of
    /// shard `i`. `starts[0]` must equal the domain's lower bound; cuts
    /// must be non-decreasing and lie within the domain (at most one
    /// past its upper bound, marking trailing empty shards).
    ///
    /// # Errors
    /// [`CatalogError::InvalidShardPlan`] on an empty cut list, an
    /// inverted domain, or cuts violating the rules above.
    pub fn from_cuts(domain: (i64, i64), starts: Vec<i64>) -> Result<Self, CatalogError> {
        let (lo, hi) = domain;
        if lo > hi {
            return Err(CatalogError::InvalidShardPlan(format!(
                "empty domain [{lo}, {hi}] (lo > hi)"
            )));
        }
        if starts.is_empty() {
            return Err(CatalogError::InvalidShardPlan(
                "need at least one shard (no cuts)".into(),
            ));
        }
        if starts[0] != lo {
            return Err(CatalogError::InvalidShardPlan(format!(
                "first cut {} must open the domain at {lo}",
                starts[0]
            )));
        }
        for (i, w) in starts.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(CatalogError::InvalidShardPlan(format!(
                    "cuts out of order at shard {i}: {} > {}",
                    w[0], w[1]
                )));
            }
        }
        for &s in &starts[1..] {
            // `s == i64::MIN` past index 0 would make the empty-range
            // rendering `(s, s - 1)` underflow.
            if s == i64::MIN || s as i128 > hi as i128 + 1 {
                return Err(CatalogError::InvalidShardPlan(format!(
                    "cut {s} outside the domain [{lo}, {hi}]"
                )));
            }
        }
        Ok(Self { domain, starts })
    }

    /// The inclusive value domain `[lo, hi]`.
    pub fn domain(&self) -> (i64, i64) {
        self.domain
    }

    /// Number of shards (>= 1).
    pub fn shards(&self) -> usize {
        self.starts.len()
    }

    /// The start cuts: `starts()[i]` is the first value owned by shard
    /// `i` (`starts()[0]` is the domain's lower bound).
    pub fn starts(&self) -> &[i64] {
        &self.starts
    }

    /// The shard index a value routes to: the shard whose subrange
    /// contains `v` after clamping into the domain. Total on `i64`;
    /// always in `0..self.shards()`.
    pub fn route(&self, v: i64) -> usize {
        let (lo, hi) = self.domain;
        let v = v.clamp(lo, hi);
        // Last shard whose start is <= v; empty shards (duplicate
        // starts) are skipped by taking the last.
        self.starts.partition_point(|&s| s <= v) - 1
    }

    /// The inclusive value subrange owned by shard `i` — the exact
    /// inverse of [`route`](ShardMap::route). Empty shards come back
    /// inverted (`b == a - 1`).
    ///
    /// # Panics
    /// Panics if `i >= self.shards()`.
    pub fn shard_range(&self, i: usize) -> (i64, i64) {
        assert!(i < self.starts.len(), "shard index out of range");
        let a = self.starts[i];
        let b = if i + 1 < self.starts.len() {
            // Validation guarantees starts[i + 1] > i64::MIN.
            (self.starts[i + 1] as i128 - 1) as i64
        } else {
            self.domain.1
        };
        (a, b)
    }
}

/// Splits a column's memory budget across `shards`: every shard gets
/// `bytes / shards`, and the `bytes % shards` remainder bytes go to the
/// first shards one each — so a `k`-sharded column spends exactly the
/// same total bytes as the unsharded column (previously the truncated
/// division silently dropped up to `k - 1` bytes). Each shard is floored
/// at one byte, so degenerate budgets smaller than the shard count
/// round up.
pub(crate) fn split_budget(memory: MemoryBudget, shards: usize) -> Vec<MemoryBudget> {
    let bytes = memory.bytes();
    let base = bytes / shards;
    let remainder = bytes % shards;
    (0..shards)
        .map(|i| MemoryBudget::from_bytes((base + usize::from(i < remainder)).max(1)))
        .collect()
}

/// Per-generation channel-mode machinery: one drain-nudge sender per
/// shard plus the worker handles (joined when the generation drops).
struct Workers {
    /// `senders[i]` nudges shard `i`'s worker to drain up to an epoch.
    senders: Vec<mpsc::Sender<u64>>,
    handles: Vec<JoinHandle<()>>,
}

/// One routing generation of a sharded column: the live [`ShardMap`],
/// the per-shard cells it routes into, and everything scoped to that
/// routing (load counters, drain workers, the compose cache). A
/// re-shard swaps the whole generation atomically under the column's
/// routing lock, so writers and readers always see map and cells in
/// agreement.
struct Generation {
    map: ShardMap,
    /// The algorithm the generation's histograms were built from. Part
    /// of the generation (not the column) since PR 10: an online
    /// migration swaps it atomically with the map and cells.
    spec: AlgoSpec,
    /// The total memory budget split across this generation's cells.
    memory: MemoryBudget,
    /// The ingestion design this generation serves (decides `workers`).
    mode: IngestMode,
    cells: Vec<Arc<Cell>>,
    /// Ops routed into each shard since this generation was installed
    /// (the load the [`ReshardPolicy`] judges).
    load: Vec<AtomicU64>,
    /// Commits that have staged into this generation's cells and not
    /// yet finished settling. A re-shard holds the routing write lock
    /// (no new stagings) and waits for this to reach zero, so every
    /// batch staged here is published and drainable before the barrier
    /// epoch is read.
    in_flight: AtomicU64,
    /// `Some` iff the column ingests in [`IngestMode::Channel`].
    workers: Option<Workers>,
    cache: Mutex<ComposeCache>,
}

impl Generation {
    /// Builds a generation over `cells`, spawning one drain worker per
    /// shard in channel mode.
    fn install(
        map: ShardMap,
        spec: AlgoSpec,
        memory: MemoryBudget,
        mode: IngestMode,
        cells: Vec<Arc<Cell>>,
    ) -> Arc<Self> {
        let workers = match mode {
            IngestMode::Locked => None,
            IngestMode::Channel => {
                let mut senders = Vec::with_capacity(cells.len());
                let mut handles = Vec::with_capacity(cells.len());
                for cell in &cells {
                    let (tx, rx) = mpsc::channel::<u64>();
                    let cell = Arc::clone(cell);
                    handles.push(std::thread::spawn(move || {
                        while let Ok(epoch) = rx.recv() {
                            cell.drain_to(epoch);
                        }
                    }));
                    senders.push(tx);
                }
                Some(Workers { senders, handles })
            }
        };
        let load = cells.iter().map(|_| AtomicU64::new(0)).collect();
        Arc::new(Self {
            map,
            spec,
            memory,
            mode,
            cells,
            load,
            in_flight: AtomicU64::new(0),
            workers,
            cache: Mutex::new(ComposeCache::default()),
        })
    }
}

impl Drop for Generation {
    fn drop(&mut self) {
        if let Some(workers) = self.workers.take() {
            drop(workers.senders); // disconnect: workers drain and exit
            for h in workers.handles {
                let _ = h.join();
            }
        }
    }
}

/// The staging token of one commit on a sharded column: which shards it
/// touched, in which generation. Settling uses the generation recorded
/// here (not the current one), and dropping the token — after the
/// commit has settled, even if settling panicked — releases the
/// generation's in-flight count that gates re-sharding.
pub(crate) struct StagedShards {
    generation: Arc<Generation>,
    touched: Vec<usize>,
}

impl Drop for StagedShards {
    fn drop(&mut self) {
        self.generation.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// Rebuild bookkeeping, under the per-column rebuild mutex (one rebuild
/// at a time; policy-triggered attempts skip instead of queueing).
#[derive(Default)]
struct ReshardMeta {
    /// Completed generation rebuilds (border moves and shape changes).
    count: u64,
    /// Store epoch of the last rebuild *attempt* (swap or not), for
    /// the policies' rate limits.
    last_epoch: u64,
    /// Store epoch of the last [`AutoscalePolicy`] judgment — the start
    /// of the current throughput window.
    judged_epoch: u64,
    /// Total generation load already judged — subtracted so each window
    /// counts only the ops routed since the previous judgment. Reset
    /// (with `judged_epoch`) when a rebuild swaps the generation, whose
    /// load counters restart at zero.
    judged_load: u64,
}

struct ShardedColumn {
    name: String,
    /// The *registration* algorithm — what [`ColumnStore::spec`]
    /// reports and replayed register records are compared against. The
    /// live (possibly migrated) algorithm lives on the generation; see
    /// [`ShardedCatalog::shape`].
    spec: AlgoSpec,
    plan: ShardPlan,
    seed: u64,
    policy: Option<ReshardPolicy>,
    autoscale: Option<AutoscalePolicy>,
    /// The live routing generation; replaced whole on re-shard.
    generation: RwLock<Arc<Generation>>,
    /// Ops whose value lay outside the registered domain and were
    /// clamped into an edge shard (total across generations).
    clamped: AtomicU64,
    reshard: Mutex<ReshardMeta>,
    stamp: Mutex<ColumnStamp>,
}

impl ShardedColumn {
    fn generation(&self) -> Arc<Generation> {
        read_lock(&self.generation).clone()
    }

    /// Acquires the routing write lock with the column *quiescent*: no
    /// commit staged into the current generation is still in flight.
    /// Every commit increments `in_flight` under the routing read lock,
    /// so once this returns, nothing is staged-but-unsettled and no new
    /// staging can start. The lock is *released between retries*: a
    /// straggling commit needs the publication gate to publish, the
    /// gate may be held by a fallback render, and that render needs the
    /// routing read lock — waiting while holding the write lock would
    /// close that cycle into a deadlock. The in-flight window of a
    /// commit is tiny (stage → publish → settle), so this converges
    /// quickly.
    fn quiesce(&self) -> std::sync::RwLockWriteGuard<'_, Arc<Generation>> {
        loop {
            let slot = write_lock(&self.generation);
            if slot.in_flight.load(Ordering::Acquire) == 0 {
                return slot;
            }
            drop(slot);
            std::thread::yield_now();
        }
    }
}

impl StoreColumn for ShardedColumn {
    /// The generation a batch staged into, plus the shard indices it
    /// touched there.
    type Staged = StagedShards;

    fn name(&self) -> &str {
        &self.name
    }

    fn stage_ops(&self, ticket: &Arc<BatchTicket>, ops: Vec<UpdateOp>) -> StagedShards {
        let generation = read_lock(&self.generation);
        let (lo, hi) = generation.map.domain();
        let mut routed: Vec<Vec<UpdateOp>> = vec![Vec::new(); generation.map.shards()];
        let mut clamped = 0u64;
        for &op in &ops {
            let v = match op {
                UpdateOp::Insert(v) | UpdateOp::Delete(v) => v,
            };
            if v < lo || v > hi {
                clamped += 1;
            }
            routed[generation.map.route(v)].push(op);
        }
        if clamped > 0 {
            self.clamped.fetch_add(clamped, Ordering::Relaxed);
        }
        let mut touched = Vec::new();
        for (i, sub) in routed.into_iter().enumerate() {
            if !sub.is_empty() {
                generation.load[i].fetch_add(sub.len() as u64, Ordering::Relaxed);
                generation.cells[i].stage(ticket.clone(), sub);
                touched.push(i);
            }
        }
        // Counted before the routing read lock is released: a re-shard
        // observes in-flight commits under the write lock, so every
        // batch staged into this generation is covered by its barrier.
        generation.in_flight.fetch_add(1, Ordering::Relaxed);
        StagedShards {
            generation: Arc::clone(&generation),
            touched,
        }
    }

    fn stamp(&self) -> &Mutex<ColumnStamp> {
        &self.stamp
    }

    /// Post-publication application: drain the touched shards inline
    /// (locked mode) or nudge their workers (channel mode) — in the
    /// generation the batch was staged into, which a concurrent
    /// re-shard cannot retire until this settle (and the token drop
    /// after it) completes.
    fn settle(&self, staged: &StagedShards, epoch: u64) {
        match &staged.generation.workers {
            None => {
                for &i in &staged.touched {
                    staged.generation.cells[i].drain_to(epoch);
                }
            }
            Some(workers) => {
                for &i in &staged.touched {
                    // A worker that died (a panicking histogram apply
                    // unwinds its thread) must not turn into a
                    // store-wide denial of writes: fall back to the
                    // locked-mode inline drain.
                    if workers.senders[i].send(epoch).is_err() {
                        staged.generation.cells[i].drain_to(epoch);
                    }
                }
            }
        }
    }

    fn render_at(&self, epoch: u64, stamp: ColumnStamp) -> Result<Snapshot, u64> {
        let generation = self.generation();
        let cells: Vec<&Cell> = generation.cells.iter().map(Arc::as_ref).collect();
        compose_at(
            &cells,
            epoch,
            &generation.cache,
            &self.name,
            // The *live* algorithm: after a migration, snapshots label
            // themselves with what actually built them.
            generation.spec.label(),
            stamp.accepted,
            stamp.updates,
        )
    }

    /// Routes `ops` through the live shard map exactly like a staged
    /// commit — same clamp accounting, same per-shard load counters (so
    /// a restored column's re-shard policy judges the same load a
    /// replayed history would have accumulated) — but applies straight
    /// into the cells instead of staging.
    fn restore_content(&self, epoch: u64, ops: Vec<UpdateOp>) {
        let generation = self.generation();
        let (lo, hi) = generation.map.domain();
        let mut routed: Vec<Vec<UpdateOp>> = vec![Vec::new(); generation.map.shards()];
        let mut clamped = 0u64;
        for &op in &ops {
            let v = match op {
                UpdateOp::Insert(v) | UpdateOp::Delete(v) => v,
            };
            if v < lo || v > hi {
                clamped += 1;
            }
            routed[generation.map.route(v)].push(op);
        }
        if clamped > 0 {
            self.clamped.fetch_add(clamped, Ordering::Relaxed);
        }
        for (i, sub) in routed.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            generation.load[i].fetch_add(sub.len() as u64, Ordering::Relaxed);
            generation.cells[i].restore(epoch, &sub);
        }
    }
}

/// One clipped slice of the composed histogram destined for a new
/// shard: `count` insertions spread evenly over the integer values
/// `[vlo, vhi]`. A re-shard plan is a list of clips — O(shards ×
/// composed buckets) descriptors, never O(rows) — that
/// [`replay_clips`] streams into the rebuilt histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RerouteClip {
    shard: usize,
    vlo: i64,
    vhi: i64,
    count: u64,
}

/// Plans the insertion stream that reproduces `composed` (a column's
/// composed spans) in the shards of `map`: each span is clipped against
/// every shard's value window (edge shards absorb the mass of values
/// that were clamped in from outside the domain), and the grand total
/// is apportioned over the clips by largest remainder — so the rebuilt
/// column carries **exactly** `round(total)` insertions, conserving
/// mass through the re-shard.
fn reroute_clips(composed: &[BucketSpan], map: &ShardMap) -> Vec<RerouteClip> {
    struct Clip {
        shard: usize,
        vlo: i64,
        vhi: i64,
        mass: f64,
    }

    let shards = map.shards();
    let total: f64 = composed.iter().map(|s| s.count).sum();
    let n_total = total.round().max(0.0) as u64;
    if n_total == 0 {
        return Vec::new();
    }
    let live = |i: usize| {
        let (a, b) = map.shard_range(i);
        b >= a
    };
    let first_live = (0..shards).find(|&i| live(i)).unwrap_or(0);
    let last_live = (0..shards).rev().find(|&i| live(i)).unwrap_or(0);

    let mut clips: Vec<Clip> = Vec::new();
    for i in 0..shards {
        let (a, b) = map.shard_range(i);
        if b < a {
            continue;
        }
        // The first and last *live* shards extend to ±infinity so mass
        // outside the registered domain (clamped-in values) is kept,
        // even when edge shards of the map are empty.
        let win_lo = if i == first_live {
            f64::NEG_INFINITY
        } else {
            a as f64
        };
        let win_hi = if i == last_live {
            f64::INFINITY
        } else {
            (b as i128 + 1) as f64
        };
        for s in composed {
            let mass = s.mass_in(win_lo, win_hi);
            if mass <= 0.0 {
                continue;
            }
            let olo = s.lo.max(win_lo);
            let ohi = s.hi.min(win_hi);
            // Integer values in [olo, ohi): ceil(olo) ..= ceil(ohi) - 1.
            let mut vlo = olo.ceil();
            let mut vhi = ohi.ceil() - 1.0;
            if vhi < vlo {
                // Sub-integer sliver (fractional borders): park the mass
                // on the nearest integer.
                vlo = ((olo + ohi) * 0.5).floor();
                vhi = vlo;
            }
            clips.push(Clip {
                shard: i,
                // f64 -> i64 `as` saturates; domains are i64 anyway.
                vlo: vlo as i64,
                vhi: (vhi as i64).max(vlo as i64),
                mass,
            });
        }
    }
    if clips.is_empty() {
        return Vec::new();
    }

    // Largest-remainder apportionment of the exact total over the clips.
    let mut counts: Vec<u64> = clips.iter().map(|c| c.mass.floor() as u64).collect();
    let mut assigned: u64 = counts.iter().sum();
    let mut order: Vec<usize> = (0..clips.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = clips[a].mass.fract();
        let fb = clips[b].mass.fract();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    let mut i = 0;
    while assigned < n_total {
        counts[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    let mut i = 0;
    while assigned > n_total {
        // Floating-point drift in the other direction (rare): shave the
        // smallest remainders first.
        let j = order[order.len() - 1 - (i % order.len())];
        if counts[j] > 0 {
            counts[j] -= 1;
            assigned -= 1;
        }
        i += 1;
    }

    clips
        .iter()
        .zip(&counts)
        .filter(|&(_, &count)| count > 0)
        .map(|(clip, &count)| RerouteClip {
            shard: clip.shard,
            vlo: clip.vlo,
            vhi: clip.vhi,
            count,
        })
        .collect()
}

/// How many synthesized insertions a re-shard applies per
/// `apply_slice` call: peak transient memory of a rebuild is one chunk
/// plus the clip descriptors, never O(rows).
const RESHARD_CHUNK: usize = 4096;

/// Streams shard `shard`'s clips into `histogram` in
/// [`RESHARD_CHUNK`]-sized batches.
fn replay_clips(histogram: &mut dh_core::BoxedHistogram, clips: &[RerouteClip], shard: usize) {
    let mut buf: Vec<UpdateOp> = Vec::with_capacity(RESHARD_CHUNK);
    for clip in clips.iter().filter(|c| c.shard == shard) {
        spread_inserts(clip.vlo, clip.vhi, clip.count, &mut |v, n| {
            for _ in 0..n {
                buf.push(UpdateOp::Insert(v));
                if buf.len() == RESHARD_CHUNK {
                    histogram.apply_slice(&buf);
                    buf.clear();
                }
            }
        });
    }
    if !buf.is_empty() {
        histogram.apply_slice(&buf);
    }
}

/// Emits `n` insertions spread as evenly as possible over the integer
/// values `[vlo, vhi]`, in value order, as `(value, repeat)` pairs, in
/// O(min(n, values)) time.
pub(crate) fn spread_inserts(vlo: i64, vhi: i64, n: u64, emit: &mut dyn FnMut(i64, u64)) {
    if n == 0 {
        return;
    }
    let values = (vhi as i128 - vlo as i128 + 1) as u128;
    if n as u128 >= values {
        // Every value gets base, the remainder is striped evenly.
        let base = (n as u128 / values) as u64;
        let rem = n as u128 % values;
        for j in 0..values as u64 {
            let v = (vlo as i128 + j as i128) as i64;
            let extra = ((j as u128 + 1) * rem / values - j as u128 * rem / values) as u64;
            if base + extra > 0 {
                emit(v, base + extra);
            }
        }
    } else {
        // Fewer insertions than values: place them at evenly spaced
        // positions (window midpoints).
        for j in 0..n {
            let off = ((2 * j as u128 + 1) * values / (2 * n as u128)) as i128;
            emit((vlo as i128 + off) as i64, 1);
        }
    }
}

/// A thread-safe, multi-column histogram store whose columns are
/// partitioned across shards — the distributed cousin of
/// [`Catalog`](crate::Catalog), serving through the same [`ColumnStore`]
/// trait.
///
/// Writers commit from any number of threads; batches are routed by
/// value range so writers touching different shards never contend on
/// histogram state, while the store-wide epoch clock keeps every commit
/// atomic across shards and columns. Readers get the same epoch-pinned
/// [`Snapshot`] type a `Catalog` serves, so estimation and
/// `dh_optimizer` joins are oblivious to the sharding. Shard borders
/// adapt to the routed load — automatically under a [`ReshardPolicy`],
/// or on demand through [`ColumnStore::reshard`] (see the
/// [module docs](self) for the barrier protocol).
#[derive(Default)]
pub struct ShardedCatalog {
    registry: Registry<ShardedColumn>,
    /// Whether any registered column carries a [`ReshardPolicy`] — lets
    /// the commit path skip the policy bookkeeping (touched-column name
    /// collection, post-commit lookups) entirely on stores that never
    /// armed one, keeping their write path as lean as before.
    armed: std::sync::atomic::AtomicBool,
}

impl ShardedCatalog {
    /// An empty sharded catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard plan a column was *registered* with — a frozen record
    /// of the registration call, not the live state: its borders,
    /// shard count, and ingestion mode are all stale after the first
    /// re-shard or rebuild. The live borders are
    /// [`ShardedCatalog::shard_map`]; the live shard count, algorithm,
    /// memory budget, and ingestion mode are [`ShardedCatalog::shape`].
    /// Only the domain is permanent.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn plan(&self, column: &str) -> Result<ShardPlan, CatalogError> {
        Ok(self.registry.get(column)?.plan)
    }

    /// The column's *live* shape: the algorithm, memory budget, shard
    /// count, and ingestion mode currently serving — everything a
    /// [`RebuildPlan`] can change, after every rebuild that changed it.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn shape(&self, column: &str) -> Result<ColumnShape, CatalogError> {
        let col = self.registry.get(column)?;
        let generation = col.generation();
        Ok(ColumnShape {
            spec: generation.spec,
            memory: generation.memory,
            shards: generation.map.shards(),
            ingest_mode: generation.mode,
            domain: generation.map.domain(),
        })
    }

    /// The column's *current* routing table. Starts as the plan's
    /// equal-width partition; every completed re-shard replaces it.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn shard_map(&self, column: &str) -> Result<ShardMap, CatalogError> {
        Ok(self.registry.get(column)?.generation().map.clone())
    }

    /// How many times the column's borders have been rebuilt.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn reshard_count(&self, column: &str) -> Result<u64, CatalogError> {
        Ok(lock(&self.registry.get(column)?.reshard).count)
    }

    /// Policy-gated rebuild attempt after a commit touched `column`.
    fn maybe_rebuild(&self, column: &str) {
        if let Ok(col) = self.registry.get(column) {
            if col.policy.is_some() || col.autoscale.is_some() {
                self.do_rebuild(&col, None, false);
            }
        }
    }

    /// Whether the column's re-shard policy gates all pass right now.
    fn policy_fires(&self, col: &ShardedColumn, meta: &ReshardMeta) -> bool {
        let Some(policy) = col.policy else {
            return false;
        };
        if self.registry.epoch().saturating_sub(meta.last_epoch) < policy.min_interval_epochs {
            return false;
        }
        // Folded straight off the atomics — this runs after every
        // commit on an armed column, so it must not allocate.
        let generation = col.generation();
        if generation.load.len() < 2 {
            // One shard has no borders to move; only an autoscale
            // decision can grow it.
            return false;
        }
        let (mut total, mut max) = (0u64, 0u64);
        for counter in &generation.load {
            let load = counter.load(Ordering::Relaxed);
            total += load;
            max = max.max(load);
        }
        if total < policy.min_load.max(1) {
            return false;
        }
        let mean = total as f64 / generation.load.len() as f64;
        max as f64 >= policy.skew_threshold * mean
    }

    /// Resolves what the column's automatic policies want to do right
    /// now, under the rebuild mutex. The [`ReshardPolicy`] (border
    /// rebalance only) is judged first for compatibility; otherwise the
    /// [`AutoscalePolicy`] judges the throughput window since its last
    /// decision. Updates the window bookkeeping in `meta`.
    fn policy_decides(&self, col: &ShardedColumn, meta: &mut ReshardMeta) -> Option<RebuildPlan> {
        if self.policy_fires(col, meta) {
            return Some(RebuildPlan::new());
        }
        let auto = col.autoscale?;
        let epoch = self.registry.epoch();
        let window_epochs = epoch.saturating_sub(meta.judged_epoch);
        if window_epochs < auto.min_interval_epochs.max(1) {
            return None;
        }
        let generation = col.generation();
        let loads: Vec<u64> = generation
            .load
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect();
        let total: u64 = loads.iter().sum();
        let window_ops = total.saturating_sub(meta.judged_load);
        meta.judged_epoch = epoch;
        meta.judged_load = total;
        auto.decide(generation.map.shards(), window_ops, window_epochs, &loads)
    }

    /// The rebuild protocol — one code path for border rebalance,
    /// grow/shrink `k`, online algorithm migration, and memory
    /// re-budgeting. Returns whether the generation was actually swapped
    /// (the borders moved or the shape changed).
    ///
    /// 1. **Pin** — take the column's rebuild mutex (forced calls
    ///    queue, policy-triggered ones skip if one is already running)
    ///    and the routing write lock: no new batch can stage into the
    ///    old generation.
    /// 2. **Drain to the barrier** — wait out commits that already
    ///    staged (they publish and settle; channel workers are nudged by
    ///    those settles, and the inline drain below catches any
    ///    stragglers), read the barrier epoch, and drain every shard up
    ///    to it. The column now has no pending entries at all.
    /// 3. **Rebuild** — compose the per-shard spans (the column's full
    ///    histogram as of the barrier), resolve the plan's deltas
    ///    against the live shape, compute equal-load borders at the
    ///    *target* shard count from the composed CDF, and re-route the
    ///    composed mass into per-shard histograms freshly built from the
    ///    *target* algorithm and budget (exact total via the
    ///    largest-remainder re-ingestion).
    /// 4. **Swap** — install the new generation (map + shape + cells +
    ///    load counters + workers) in one assignment under the routing
    ///    write lock. Readers pinned at or after the barrier render the
    ///    new cells; readers pinned before it retry at the barrier
    ///    epoch, exactly like any overtaken pinned read.
    ///
    /// `plan: None` means "ask the column's automatic policies"
    /// ([`ReshardPolicy`] first, then [`AutoscalePolicy`]) — the
    /// post-commit path. `Some(plan)` executes that plan, gates
    /// bypassed.
    fn do_rebuild(&self, col: &ShardedColumn, plan: Option<RebuildPlan>, forced: bool) -> bool {
        let moved = self.do_rebuild_inner(col, plan, forced);
        if moved {
            // A rebuild replaces the column's cells *without* publishing
            // an epoch, so the front generation (and its predicate cache)
            // must be force-re-rendered at the same epoch — a reader must
            // never keep being served off the pre-rebuild rendering
            // once the routing has swapped. Runs after every routing and
            // rebuild lock is released.
            self.registry.refresh_front(true);
        }
        moved
    }

    fn do_rebuild_inner(
        &self,
        col: &ShardedColumn,
        plan: Option<RebuildPlan>,
        forced: bool,
    ) -> bool {
        let mut meta = if forced {
            lock(&col.reshard)
        } else {
            match col.reshard.try_lock() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => return false,
            }
        };
        let plan = match plan {
            Some(plan) => plan,
            None if forced => RebuildPlan::new(),
            None => match self.policy_decides(col, &mut meta) {
                Some(plan) => plan,
                None => return false,
            },
        };

        // How many times a *forced* rebuild re-ingests outside the
        // routing lock before falling back to an under-lock rebuild to
        // guarantee completion against sustained racing commits.
        const UNLOCKED_REBUILD_ATTEMPTS: usize = 2;

        for attempt in 0.. {
            // Quiescing makes the barrier epoch cover every batch that
            // ever staged into this generation (see
            // [`ShardedColumn::quiesce`] for the deadlock-avoidance
            // discipline of the wait).
            let mut slot = col.quiesce();
            let epoch = self.registry.epoch();
            meta.last_epoch = epoch;
            let mut parts = Vec::with_capacity(slot.cells.len());
            for cell in &slot.cells {
                cell.drain_to(epoch);
                let (_, spans) = cell
                    .spans_at(epoch)
                    .expect("no commit on this column can pass a held rebuild barrier");
                parts.push(spans);
            }
            let composed = if parts.len() == 1 {
                parts.pop().expect("one part")
            } else {
                superimpose(&parts)
            };
            // Resolve the plan's deltas against the *live* shape at the
            // barrier — the same resolution a replayed rebuild record
            // performs, against the same state, so recovery reproduces
            // the shape bit-identically.
            let spec = plan.spec.unwrap_or(slot.spec);
            let memory = plan.memory.unwrap_or(slot.memory);
            let mode = plan.ingest_mode.unwrap_or(slot.mode);
            let shards = plan.shards.unwrap_or_else(|| slot.map.shards());
            let reshapes = spec != slot.spec
                || memory != slot.memory
                || mode != slot.mode
                || shards != slot.map.shards();
            let map = match ShardMap::balanced(&composed, slot.map.domain(), shards) {
                Ok(map) => map,
                Err(_) => return false,
            };
            if !reshapes && map == slot.map {
                // Nothing to change: same shape, borders already optimal
                // (a single-shard rebalance always lands here — one
                // shard has no borders to move).
                return false;
            }
            // The column's publication stamp as of the barrier: any
            // commit touching the column during an unlocked rebuild
            // moves it, flagging the rebuilt cells stale.
            let column_epoch = lock(&col.stamp).epoch;
            let budgets = split_budget(memory, map.shards());
            let clips = reroute_clips(&composed, &map);
            let n_shards = map.shards();
            let rebuild = |epoch: u64| -> Vec<Arc<Cell>> {
                (0..n_shards)
                    .map(|i| {
                        let mut histogram = spec.build(budgets[i], col.seed.wrapping_add(i as u64));
                        replay_clips(&mut histogram, &clips, i);
                        Arc::new(Cell::with_applied(histogram, epoch))
                    })
                    .collect()
            };

            // The expensive part — O(rows) re-ingestion — runs *outside*
            // the routing lock whenever possible, so readers (and, via
            // the gate-held fallback render, the store-wide publication
            // gate) are never blocked behind it. Only a forced rebuild
            // that keeps losing the race re-ingests under the lock.
            if forced && attempt >= UNLOCKED_REBUILD_ATTEMPTS {
                *slot = Generation::install(map, spec, memory, mode, rebuild(epoch));
                meta.count += 1;
                meta.judged_epoch = epoch;
                meta.judged_load = 0;
                return true;
            }
            drop(slot);
            let cells = rebuild(epoch);
            let mut slot = col.quiesce();
            if lock(&col.stamp).epoch != column_epoch {
                // A commit touched the column mid-rebuild: the cells are
                // stale. Forced calls recompute from the fresh state;
                // policy-triggered ones give up (the policy re-fires on
                // a later commit).
                drop(slot);
                if forced {
                    continue;
                }
                return false;
            }
            *slot = Generation::install(map, spec, memory, mode, cells);
            meta.count += 1;
            // The new generation's load counters restart at zero; the
            // autoscale throughput window restarts with them.
            meta.judged_epoch = epoch;
            meta.judged_load = 0;
            return true;
        }
        unreachable!("the rebuild loop always returns")
    }
}

impl ColumnStore for ShardedCatalog {
    /// Registers `column`, sharded per `config.plan` (required for this
    /// store), each shard holding a fresh `config.spec` histogram. The
    /// memory budget is divided across the shards with the remainder
    /// bytes spread over the first shards (a `k`-sharded column spends
    /// exactly the same total bytes as an unsharded one); the seed is
    /// salted per shard. A `config.reshard` policy arms automatic
    /// re-sharding.
    ///
    /// With [`IngestMode::Channel`] this also spawns one drain worker
    /// thread per shard (joined when the generation is retired or the
    /// column is dropped).
    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), CatalogError> {
        let plan = config.plan.ok_or_else(|| {
            CatalogError::InvalidShardPlan(
                "a sharded store needs ColumnConfig::with_plan(...)".into(),
            )
        })?;
        validate_policies(&config)?;
        // `ShardPlan::new` is the single validation point: plans cannot
        // be constructed degenerate, so `plan` is valid here.
        let budgets = split_budget(config.memory, plan.shards());
        let inserted = self.registry.insert(column, || {
            let cells: Vec<Arc<Cell>> = budgets
                .iter()
                .enumerate()
                .map(|(i, &budget)| {
                    Arc::new(Cell::new(
                        config
                            .spec
                            .build(budget, config.seed.wrapping_add(i as u64)),
                    ))
                })
                .collect();
            let map = ShardMap::equal_width(plan.domain(), plan.shards())
                .expect("plan validated by ShardPlan::new");
            ShardedColumn {
                name: column.to_string(),
                spec: config.spec,
                plan,
                seed: config.seed,
                policy: config.reshard,
                autoscale: config.autoscale,
                generation: RwLock::new(Generation::install(
                    map,
                    config.spec,
                    config.memory,
                    plan.mode(),
                    cells,
                )),
                clamped: AtomicU64::new(0),
                reshard: Mutex::new(ReshardMeta::default()),
                stamp: Mutex::new(ColumnStamp::default()),
            }
        });
        if inserted.is_ok()
            && ((config.reshard.is_some() && plan.shards() > 1) || config.autoscale.is_some())
        {
            self.armed.store(true, Ordering::Relaxed);
        }
        inserted
    }

    fn columns(&self) -> Vec<String> {
        self.registry.names()
    }

    fn contains(&self, column: &str) -> bool {
        self.registry.contains(column)
    }

    fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        Ok(self.registry.get(column)?.spec)
    }

    fn commit(&self, batch: WriteBatch) -> Result<u64, CatalogError> {
        if !self.armed.load(Ordering::Relaxed) {
            return self.registry.commit(batch);
        }
        // Only policy-armed columns need post-commit bookkeeping; the
        // others' names are not worth cloning.
        let columns: Vec<String> = batch
            .columns()
            .filter(|column| {
                self.registry.get(column).is_ok_and(|col| {
                    (col.policy.is_some() && col.plan.shards() > 1) || col.autoscale.is_some()
                })
            })
            .map(str::to_string)
            .collect();
        let epoch = self.registry.commit(batch)?;
        for column in &columns {
            self.maybe_rebuild(column);
        }
        Ok(epoch)
    }

    fn apply(&self, column: &str, batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        let checkpoint = self.registry.apply(column, batch)?;
        if self.armed.load(Ordering::Relaxed) {
            self.maybe_rebuild(column);
        }
        Ok(checkpoint)
    }

    /// Drains every shard of `column` up to the current published epoch.
    /// After this returns, every batch accepted before the call is in the
    /// histograms (the read barrier for channel-mode columns; cheap for
    /// locked ones, which drain on the write path).
    fn flush(&self, column: &str) -> Result<(), CatalogError> {
        let col = self.registry.get(column)?;
        let epoch = self.registry.epoch();
        for cell in &col.generation().cells {
            cell.drain_to(epoch);
        }
        Ok(())
    }

    fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        self.registry.snapshot(column)
    }

    fn snapshot_set(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError> {
        self.registry.snapshot_set(columns)
    }

    fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        self.registry.checkpoint(column)
    }

    fn epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// Forces a re-shard of `column`: drains it to a barrier epoch,
    /// recomputes equal-load borders from the composed CDF, and swaps
    /// the routing atomically. Returns `true` if the borders moved
    /// (`false` when they were already optimal or the column has a
    /// single shard). Bypasses the [`ReshardPolicy`] gates. A thin
    /// wrapper over [`ColumnStore::rebuild`] with the all-`None` plan.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn reshard(&self, column: &str) -> Result<bool, CatalogError> {
        self.rebuild(column, RebuildPlan::new())
    }

    /// Executes `plan` against `column` behind the epoch barrier: drains
    /// to the barrier, composes the column's full histogram, resolves the
    /// plan's deltas against the live shape, and swaps in a generation
    /// with the target shard count, algorithm, memory budget, and
    /// ingestion mode — total mass conserved exactly (the re-ingestion's
    /// largest-remainder contract). Returns `true`
    /// if the generation was swapped (`false` when the plan resolves to
    /// the current shape with optimal borders).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent;
    /// [`CatalogError::InvalidShardPlan`] if `plan.shards == Some(0)`.
    fn rebuild(&self, column: &str, plan: RebuildPlan) -> Result<bool, CatalogError> {
        if plan.shards == Some(0) {
            return Err(CatalogError::InvalidShardPlan(
                "need at least one shard (shards == 0)".into(),
            ));
        }
        let col = self.registry.get(column)?;
        Ok(self.do_rebuild(&col, Some(plan), true))
    }

    /// The live shape ([`ShardedCatalog::shape`]) behind the object-safe
    /// trait surface.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn column_shape(&self, column: &str) -> Result<Option<ColumnShape>, CatalogError> {
        self.shape(column).map(Some)
    }

    /// Ops routed into each shard since the current shard map was
    /// installed (reset by every re-shard) — the load the
    /// [`ReshardPolicy`] judges.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn shard_load(&self, column: &str) -> Result<Vec<u64>, CatalogError> {
        let generation = self.registry.get(column)?.generation();
        Ok(generation
            .load
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect())
    }

    /// How many ops carried a value outside the registered domain and
    /// were clamped into an edge shard (cumulative across re-shards).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn clamped_ops(&self, column: &str) -> Result<u64, CatalogError> {
        Ok(self.registry.get(column)?.clamped.load(Ordering::Relaxed))
    }

    fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        self.registry.estimate_range(column, a, b)
    }

    fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        self.registry.estimate_eq(column, v)
    }

    fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        self.registry.total_count(column)
    }

    fn read_stats(&self) -> crate::read::ReadStats {
        self.registry.read_stats()
    }
}

impl DirectRestore for ShardedCatalog {
    fn restore_at(&self, epoch: u64, images: Vec<RestoreColumn>) -> Result<(), CatalogError> {
        self.registry.restore_at(epoch, images)
    }
}

impl fmt::Debug for ShardedCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCatalog")
            .field("columns", &self.columns())
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ReadHistogram;

    fn inserts(range: std::ops::Range<i64>) -> Vec<UpdateOp> {
        range.map(UpdateOp::Insert).collect()
    }

    fn config(spec: AlgoSpec, kb: f64, seed: u64, plan: ShardPlan) -> ColumnConfig {
        ColumnConfig::new(spec, MemoryBudget::from_kb(kb))
            .with_seed(seed)
            .with_plan(plan)
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        assert!(matches!(
            ShardPlan::new(0, 9, 0),
            Err(CatalogError::InvalidShardPlan(_))
        ));
        assert!(matches!(
            ShardPlan::new(10, 9, 4),
            Err(CatalogError::InvalidShardPlan(_))
        ));
        let msg = ShardPlan::new(10, 9, 4).unwrap_err().to_string();
        assert!(msg.contains("lo > hi"), "{msg}");
        // A sharded store refuses a config without a plan.
        let cat = ShardedCatalog::new();
        assert!(matches!(
            cat.register(
                "a",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
            ),
            Err(CatalogError::InvalidShardPlan(_))
        ));
        // ... and a config with a degenerate re-shard policy.
        let bad_policy = ReshardPolicy {
            skew_threshold: 0.5,
            ..ReshardPolicy::default()
        };
        assert!(matches!(
            cat.register(
                "a",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
                    .with_plan(ShardPlan::new(0, 9, 2).unwrap())
                    .with_reshard(bad_policy)
            ),
            Err(CatalogError::InvalidShardPlan(_))
        ));
        // Private fields: `ShardPlan::new` is the only constructor, so a
        // degenerate plan cannot reach a store at all. Accessors echo
        // the validated values.
        let plan = ShardPlan::new(-5, 5, 3).unwrap().channel();
        assert_eq!(plan.domain(), (-5, 5));
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.mode(), IngestMode::Channel);
    }

    #[test]
    fn routing_partitions_the_domain() {
        let plan = ShardPlan::new(0, 999, 4).unwrap();
        assert_eq!(plan.route(0), 0);
        assert_eq!(plan.route(249), 0);
        assert_eq!(plan.route(250), 1);
        assert_eq!(plan.route(999), 3);
        // Outside the domain: clamped to the edge shards.
        assert_eq!(plan.route(-5), 0);
        assert_eq!(plan.route(10_000), 3);
        // Ranges tile the domain exactly.
        let mut next = 0i64;
        for i in 0..4 {
            let (a, b) = plan.shard_range(i);
            assert_eq!(
                a,
                next,
                "shard {i} starts where {} ended",
                i.wrapping_sub(1)
            );
            assert!(b >= a);
            next = b + 1;
        }
        assert_eq!(next, 1000);
        // Every value routes into its own shard's range.
        for v in 0..1000 {
            let s = plan.route(v);
            let (a, b) = plan.shard_range(s);
            assert!((a..=b).contains(&v), "{v} outside shard {s} [{a},{b}]");
        }
    }

    #[test]
    fn full_i64_domain_does_not_overflow() {
        let plan = ShardPlan::new(i64::MIN, i64::MAX, 4).unwrap();
        assert_eq!(plan.route(i64::MIN), 0);
        assert_eq!(plan.route(-1), 1);
        assert_eq!(plan.route(0), 2);
        assert_eq!(plan.route(i64::MAX), 3);
        let mut next = i64::MIN;
        for i in 0..4 {
            let (a, b) = plan.shard_range(i);
            assert_eq!(a, next);
            assert_eq!(plan.route(a), i);
            assert_eq!(plan.route(b), i);
            next = b.wrapping_add(1);
        }
        assert_eq!(plan.shard_range(3).1, i64::MAX);
    }

    #[test]
    fn uneven_domains_still_tile() {
        let plan = ShardPlan::new(-7, 9, 3).unwrap(); // width 17, not divisible
        let mut covered = 0i64;
        for i in 0..3 {
            let (a, b) = plan.shard_range(i);
            covered += b - a + 1;
            for v in a..=b {
                assert_eq!(plan.route(v), i);
            }
        }
        assert_eq!(covered, 17);
    }

    #[test]
    fn shard_map_equal_width_matches_plan_routing() {
        for (lo, hi, k) in [
            (0i64, 999, 4),
            (-7, 9, 3),
            (0, 3, 16),
            (i64::MIN, i64::MAX, 8),
        ] {
            let plan = ShardPlan::new(lo, hi, k).unwrap();
            let map = ShardMap::equal_width((lo, hi), k).unwrap();
            assert_eq!(map.domain(), (lo, hi));
            assert_eq!(map.shards(), k);
            for i in 0..k {
                assert_eq!(map.shard_range(i), plan.shard_range(i), "shard {i}");
            }
            let mid = ((lo as i128 + hi as i128) / 2) as i64;
            let probes = [lo, hi, mid, lo.saturating_add(1), hi.saturating_sub(1)];
            for v in probes {
                assert_eq!(map.route(v), plan.route(v), "route({v})");
            }
        }
    }

    #[test]
    fn shard_map_from_cuts_validates() {
        // First cut must open the domain.
        assert!(ShardMap::from_cuts((0, 9), vec![1, 5]).is_err());
        // Cuts must be ordered.
        assert!(ShardMap::from_cuts((0, 9), vec![0, 7, 4]).is_err());
        // Cuts may sit at most one past the domain end (trailing empties).
        assert!(ShardMap::from_cuts((0, 9), vec![0, 11]).is_err());
        assert!(ShardMap::from_cuts((0, 9), vec![0, 10]).is_ok());
        // Inverted domains and empty cut lists are rejected.
        assert!(ShardMap::from_cuts((9, 0), vec![9]).is_err());
        assert!(ShardMap::from_cuts((0, 9), vec![]).is_err());
        // i64::MIN may only appear as the opening cut.
        assert!(ShardMap::from_cuts((i64::MIN, 5), vec![i64::MIN, i64::MIN]).is_err());
        // Duplicate interior cuts are empty shards; routing skips them.
        let map = ShardMap::from_cuts((0, 9), vec![0, 5, 5, 8]).unwrap();
        assert_eq!(map.shard_range(1), (5, 4)); // empty, inverted
        assert_eq!(map.route(5), 2);
        assert_eq!(map.route(4), 0);
        assert_eq!(map.route(8), 3);
        assert_eq!(map.starts(), &[0, 5, 5, 8]);
    }

    #[test]
    fn balanced_cuts_follow_the_mass() {
        // All mass on [0, 99] of a [0, 999] domain: every cut lands in
        // the hot range, leaving at most the last shard to cover the
        // cold tail.
        let spans = vec![BucketSpan::new(0.0, 100.0, 1000.0)];
        let map = ShardMap::balanced(&spans, (0, 999), 4).unwrap();
        assert_eq!(map.starts()[0], 0);
        assert_eq!(map.starts()[1], 25);
        assert_eq!(map.starts()[2], 50);
        assert_eq!(map.starts()[3], 75);
        // No mass: equal-width fallback.
        let flat = ShardMap::balanced(&[], (0, 999), 4).unwrap();
        assert_eq!(flat, ShardMap::equal_width((0, 999), 4).unwrap());
        // Fewer values than shards: equal-width fallback too.
        let tiny = ShardMap::balanced(&spans, (0, 2), 8).unwrap();
        assert_eq!(tiny, ShardMap::equal_width((0, 2), 8).unwrap());
    }

    #[test]
    fn split_budget_spends_every_byte() {
        // The old truncated split ran 16 shards on 992 of 1000 bytes.
        let split = split_budget(MemoryBudget::from_bytes(1000), 16);
        assert_eq!(split.iter().map(|m| m.bytes()).sum::<usize>(), 1000);
        assert_eq!(split.iter().filter(|m| m.bytes() == 63).count(), 8);
        assert_eq!(split.iter().filter(|m| m.bytes() == 62).count(), 8);
        // Exact division is untouched.
        let even = split_budget(MemoryBudget::from_bytes(1024), 8);
        assert!(even.iter().all(|m| m.bytes() == 128));
        // Degenerate budgets floor each shard at one byte.
        let tiny = split_budget(MemoryBudget::from_bytes(3), 8);
        assert!(tiny.iter().all(|m| m.bytes() == 1));
    }

    /// Expands shard `shard`'s clips into the synthesized values (with
    /// multiplicity) a rebuild would ingest.
    fn expand(clips: &[RerouteClip], shard: usize) -> Vec<i64> {
        let mut values = Vec::new();
        for clip in clips.iter().filter(|c| c.shard == shard) {
            spread_inserts(clip.vlo, clip.vhi, clip.count, &mut |v, n| {
                values.extend(std::iter::repeat_n(v, n as usize));
            });
        }
        values
    }

    #[test]
    fn reroute_conserves_mass_exactly() {
        let composed = vec![
            BucketSpan::new(0.0, 40.0, 123.0),
            BucketSpan::new(40.0, 100.0, 7.0),
            BucketSpan::new(100.0, 200.0, 870.0),
        ];
        let map = ShardMap::balanced(&composed, (0, 199), 4).unwrap();
        let clips = reroute_clips(&composed, &map);
        let total: u64 = clips.iter().map(|c| c.count).sum();
        assert_eq!(total, 1000);
        // Every synthesized insertion lands in its shard's range.
        let mut expanded = 0;
        for i in 0..4 {
            let (a, b) = map.shard_range(i);
            let values = expand(&clips, i);
            expanded += values.len();
            for v in values {
                assert!((a..=b).contains(&v), "{v} outside shard {i} [{a},{b}]");
            }
        }
        assert_eq!(expanded, 1000, "spread must emit exactly the clip counts");
    }

    #[test]
    fn reroute_keeps_out_of_domain_mass_in_edge_shards() {
        // Mass below and above the domain (clamped-in values) survives
        // the re-route, attached to the first/last live shards.
        let composed = vec![
            BucketSpan::new(-50.0, -40.0, 10.0),
            BucketSpan::new(0.0, 100.0, 80.0),
            BucketSpan::new(150.0, 160.0, 10.0),
        ];
        let map = ShardMap::equal_width((0, 99), 2).unwrap();
        let clips = reroute_clips(&composed, &map);
        let total: u64 = clips.iter().map(|c| c.count).sum();
        assert_eq!(total, 100);
        assert!(
            expand(&clips, 0).iter().any(|&v| v < 0),
            "out-of-domain low mass kept"
        );
        assert!(
            expand(&clips, 1).iter().any(|&v| v > 99),
            "out-of-domain high mass kept"
        );
    }

    #[test]
    fn reroute_keeps_below_domain_mass_when_first_shard_is_empty() {
        // An empty *first* shard must not swallow the -infinity window:
        // below-domain mass attaches to the first live shard, exactly
        // like the above-domain mass attaches to the last live one.
        let map = ShardMap::from_cuts((0, 9), vec![0, 0, 5]).unwrap(); // shard 0 empty
        let composed = vec![
            BucketSpan::new(-50.0, -40.0, 10.0),
            BucketSpan::new(0.0, 10.0, 20.0),
        ];
        let clips = reroute_clips(&composed, &map);
        let total: u64 = clips.iter().map(|c| c.count).sum();
        assert_eq!(total, 30, "below-domain mass must survive the re-route");
        assert!(expand(&clips, 0).is_empty(), "empty shard gets nothing");
        assert!(
            expand(&clips, 1).iter().any(|&v| v < 0),
            "below-domain values land in the first live shard"
        );
    }

    #[test]
    fn replay_clips_streams_in_bounded_chunks() {
        // A rebuild far larger than one chunk must ingest every
        // insertion (the streamed path replaces materializing O(rows)
        // ops at once).
        let composed = vec![BucketSpan::new(0.0, 50.0, (3 * RESHARD_CHUNK + 17) as f64)];
        let map = ShardMap::equal_width((0, 99), 2).unwrap();
        let clips = reroute_clips(&composed, &map);
        let mut histogram = AlgoSpec::Dc.build(MemoryBudget::from_kb(0.5), 0);
        replay_clips(&mut histogram, &clips, 0);
        let total: f64 = histogram.as_read().total_count();
        assert!((total - (3 * RESHARD_CHUNK + 17) as f64).abs() < 1e-6);
    }

    #[test]
    fn sharded_round_trip_and_caching() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 4999, 8).unwrap();
        cat.register("a", config(AlgoSpec::Dado, 2.0, 1, plan))
            .unwrap();
        assert_eq!(
            cat.register("a", config(AlgoSpec::Dc, 1.0, 1, plan)),
            Err(CatalogError::DuplicateColumn("a".into()))
        );
        let cp = cat.apply("a", &inserts(0..5000)).unwrap();
        assert_eq!(cp, 1);
        let s1 = cat.snapshot("a").unwrap();
        assert_eq!(s1.epoch(), 1);
        assert_eq!(s1.checkpoint(), 1);
        assert_eq!(s1.updates(), 5000);
        assert_eq!(s1.label(), "DADO");
        assert!((s1.total_count() - 5000.0).abs() < 1e-9);
        assert!((s1.estimate_range(0, 4999) - 5000.0).abs() / 5000.0 < 0.02);
        // Cached between writes, invalidated by a write.
        let s2 = cat.snapshot("a").unwrap();
        assert!(s1.same_rendering(&s2), "cached between writes");
        cat.apply("a", &inserts(0..10)).unwrap();
        let s3 = cat.snapshot("a").unwrap();
        assert_eq!(s3.checkpoint(), 2);
        assert_eq!(s3.epoch(), 2);
        assert!((s3.total_count() - 5010.0).abs() < 1e-9);
        // The old snapshot still reads consistently.
        assert!((s1.total_count() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn shard_aligned_ranges_are_exact() {
        // Mass conservation per shard makes estimates over whole shard
        // subranges *exact* — sharding strictly sharpens those reads.
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 99, 5).unwrap();
        cat.register("a", config(AlgoSpec::Dc, 0.25, 3, plan))
            .unwrap();
        let batch: Vec<UpdateOp> = (0..3000).map(|i| UpdateOp::Insert((i * 7) % 100)).collect();
        cat.apply("a", &batch).unwrap();
        let mut counts = [0f64; 100];
        for &op in &batch {
            if let UpdateOp::Insert(v) = op {
                counts[v as usize] += 1.0;
            }
        }
        for i in 0..5 {
            let (a, b) = plan.shard_range(i);
            let exact: f64 = (a..=b).map(|v| counts[v as usize]).sum();
            let est = cat.estimate_range("a", a, b).unwrap();
            assert!(
                (est - exact).abs() < 1e-6,
                "shard {i} [{a},{b}]: est {est} != exact {exact}"
            );
        }
    }

    #[test]
    fn channel_mode_applies_after_flush() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 999, 4).unwrap().channel();
        cat.register("a", config(AlgoSpec::Dc, 1.0, 1, plan))
            .unwrap();
        for b in 0..10i64 {
            let batch: Vec<UpdateOp> = (0..500)
                .map(|i| UpdateOp::Insert((b * 37 + i) % 1000))
                .collect();
            cat.apply("a", &batch).unwrap();
        }
        cat.flush("a").unwrap();
        let snap = cat.snapshot("a").unwrap();
        assert!((snap.total_count() - 5000.0).abs() < 1e-9);
        assert_eq!(cat.checkpoint("a").unwrap(), 10);
        // Dropping the catalog joins the workers (must not hang).
        drop(cat);
    }

    #[test]
    fn cross_shard_commits_are_never_torn() {
        // A batch spread over every shard becomes visible in one epoch:
        // any snapshot holds a whole multiple of the per-batch mass.
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 799, 8).unwrap();
        cat.register("a", config(AlgoSpec::Dc, 1.0, 1, plan))
            .unwrap();
        for round in 0..5i64 {
            // One value per shard (100-wide shards).
            let batch: Vec<UpdateOp> = (0..8).map(|s| UpdateOp::Insert(s * 100 + round)).collect();
            cat.apply("a", &batch).unwrap();
            let snap = cat.snapshot("a").unwrap();
            let total = snap.total_count();
            assert!(
                (total / 8.0 - (total / 8.0).round()).abs() < 1e-9,
                "torn batch visible: total {total}"
            );
        }
    }

    #[test]
    fn reshard_moves_borders_preserves_mass_and_counters() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 999, 4).unwrap();
        cat.register("a", config(AlgoSpec::Dc, 1.0, 1, plan))
            .unwrap();
        // Heavy skew: every value in the first (equal-width) shard.
        let batch: Vec<UpdateOp> = (0..4000).map(|i| UpdateOp::Insert(i % 250)).collect();
        cat.apply("a", &batch).unwrap();
        let loads = cat.shard_load("a").unwrap();
        assert_eq!(loads, vec![4000, 0, 0, 0]);
        assert_eq!(
            cat.shard_map("a").unwrap(),
            ShardMap::equal_width((0, 999), 4).unwrap()
        );

        assert!(cat.reshard("a").unwrap(), "skewed borders must move");
        assert_eq!(cat.reshard_count("a").unwrap(), 1);
        let map = cat.shard_map("a").unwrap();
        assert_ne!(map, ShardMap::equal_width((0, 999), 4).unwrap());
        // Load counters reset with the new generation.
        assert!(cat.shard_load("a").unwrap().iter().all(|&l| l == 0));
        // Mass is conserved exactly; the epoch clock did not move.
        let snap = cat.snapshot("a").unwrap();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.checkpoint(), 1);
        assert!((snap.total_count() - 4000.0).abs() < 1e-9);
        // The same skewed stream now spreads across shards.
        cat.apply("a", &batch).unwrap();
        let loads = cat.shard_load("a").unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(
            max < 4000,
            "re-balanced borders must split the hot range: {loads:?}"
        );
        let snap = cat.snapshot("a").unwrap();
        assert!((snap.total_count() - 8000.0).abs() < 1e-9);
        // Re-sharding an already balanced column is a no-op.
        let before = cat.shard_map("a").unwrap();
        if !cat.reshard("a").unwrap() {
            assert_eq!(cat.shard_map("a").unwrap(), before);
        }
    }

    #[test]
    fn unknown_columns_error() {
        let cat = ShardedCatalog::new();
        assert_eq!(
            cat.apply("ghost", &[]).unwrap_err(),
            CatalogError::UnknownColumn("ghost".into())
        );
        assert!(cat.snapshot("ghost").is_err());
        assert!(cat.flush("ghost").is_err());
        assert!(cat.estimate_eq("ghost", 1).is_err());
        assert!(cat.plan("ghost").is_err());
        assert!(cat.shard_map("ghost").is_err());
        assert!(cat.shard_load("ghost").is_err());
        assert!(cat.clamped_ops("ghost").is_err());
        assert!(cat.reshard("ghost").is_err());
        assert!(cat.reshard_count("ghost").is_err());
        assert!(!cat.contains("ghost"));
        assert!(cat.is_empty());
    }

    #[test]
    fn empty_batches_advance_checkpoints() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 9, 2).unwrap();
        cat.register("a", config(AlgoSpec::EquiDepth, 0.25, 0, plan))
            .unwrap();
        assert_eq!(cat.apply("a", &[]).unwrap(), 1);
        assert_eq!(cat.apply("a", &[]).unwrap(), 2);
        assert_eq!(cat.checkpoint("a").unwrap(), 2);
        assert_eq!(cat.snapshot("a").unwrap().num_buckets(), 0);
    }
}
