//! The sharded serving layer: one column's domain partitioned across
//! independently locked shards, composed back into a single histogram
//! through `dh_distributed`'s lossless superposition.
//!
//! A [`Catalog`](crate::Catalog) column serializes histogram maintenance
//! behind one cell. A [`ShardedCatalog`] column instead splits its value
//! domain into `k` contiguous subranges, each owning a private histogram
//! (built from the same [`AlgoSpec`], with the memory budget divided
//! evenly), so concurrent writers whose batches land on different shards
//! never touch the same state lock. Readers still see *one* histogram:
//! snapshot composition superimposes the per-shard spans
//! ([`dh_distributed::superimpose`], the Section 8 union estimator —
//! shards are "member sites" of a degenerate shared-nothing union whose
//! members happen to be disjoint), so a [`Snapshot`] of a sharded column
//! feeds `dh_optimizer` exactly like an unsharded one.
//!
//! Writes follow the store-wide two-phase, epoch-stamped commit of
//! [`crate::txn`]: a batch is *staged* into every touched shard's pending
//! queue, then *published* in one atomic epoch bump — so no reader ever
//! observes a batch torn between shards (or, for a multi-column
//! [`WriteBatch`], between columns). Two ingestion
//! designs then differ only in **who applies** the staged entries
//! ([`IngestMode`]):
//!
//! * **`Locked`** — the committing writer drains each touched shard
//!   itself, under that shard's own lock. Writers on different shards
//!   proceed in parallel; writers on the same shard contend only there.
//! * **`Channel`** — each shard owns an MPSC drain worker; after
//!   publishing, writers only nudge the workers and return, never waiting
//!   on histogram maintenance. [`ColumnStore::flush`] is the barrier that
//!   makes reads deterministic (readers also self-serve: a snapshot
//!   drains published entries it still needs).
//!
//! Either way drains apply entries in epoch order, so locked and channel
//! ingestion produce identical histograms for the same commit sequence.
//! The `contention` bench and `repro serve` compare both designs against
//! the single-cell `Catalog` under multi-writer replay — through the
//! same `&dyn ColumnStore` code path; `ARCHITECTURE.md` quotes the
//! numbers.
//!
//! # Example
//!
//! ```
//! use dh_catalog::{AlgoSpec, ColumnConfig, ColumnStore, ShardPlan, ShardedCatalog};
//! use dh_core::{MemoryBudget, ReadHistogram, UpdateOp};
//!
//! let catalog = ShardedCatalog::new();
//! let plan = ShardPlan::new(0, 999, 4).unwrap(); // domain [0, 999], 4 shards
//! let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
//!     .with_seed(1)
//!     .with_plan(plan);
//! catalog.register("orders.amount", config).unwrap();
//!
//! let batch: Vec<UpdateOp> = (0..4000).map(|i| UpdateOp::Insert(i % 1000)).collect();
//! catalog.apply("orders.amount", &batch).unwrap();
//!
//! let snap = catalog.snapshot("orders.amount").unwrap();
//! assert_eq!(snap.epoch(), 1);
//! assert!((snap.total_count() - 4000.0).abs() < 1e-9);
//! assert!(snap.estimate_range(0, 999) > 3900.0);
//! ```

use crate::catalog::CatalogError;
use crate::spec::AlgoSpec;
use crate::store::{ColumnConfig, ColumnStore, SnapshotSet};
use crate::txn::{
    compose_at, BatchTicket, Cell, ColumnStamp, ComposeCache, Registry, StoreColumn, WriteBatch,
};
use crate::Snapshot;
use dh_core::{MemoryBudget, UpdateOp};
use std::fmt;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// How a sharded column applies its staged update batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// The committing writer drains each touched shard itself, under that
    /// shard's own lock. Synchronous: when
    /// [`ColumnStore::apply`]/[`ColumnStore::commit`] returns, the batch
    /// is in the histograms.
    #[default]
    Locked,
    /// One MPSC drain worker per shard applies staged entries; writers
    /// publish, nudge the workers and return without waiting on histogram
    /// maintenance. Asynchronous: use [`ColumnStore::flush`] as a barrier
    /// before reads that must observe every prior commit (snapshots are
    /// still never torn — they see whole published batches only, as of
    /// whatever epoch they pin).
    Channel,
}

/// How a column is sharded: its value domain, the shard count, and the
/// ingestion design. Constructible only through [`ShardPlan::new`]
/// (which rejects degenerate input), so every live plan is valid — the
/// single validation point.
///
/// # Routing invariants
///
/// Every plan guarantees:
///
/// * [`route`](ShardPlan::route) is total on `i64` (values outside the
///   domain clamp to the edge shards) and maps into `0..shards`;
/// * [`shard_range`](ShardPlan::shard_range) is the exact inverse: the
///   ranges tile the domain — disjoint, in order, covering every value —
///   and `route(v) == i` iff `v` clamps into `shard_range(i)`;
/// * both are overflow-safe over the full `i64` domain (widened to
///   `i128`/`u128` internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPlan {
    /// Inclusive value domain `[lo, hi]` partitioned across shards.
    domain: (i64, i64),
    /// Number of shards (>= 1).
    shards: usize,
    /// Ingestion design.
    mode: IngestMode,
}

impl ShardPlan {
    /// A locked-ingestion plan over the inclusive domain `[lo, hi]` with
    /// `shards` equal-width shards.
    ///
    /// # Errors
    /// [`CatalogError::InvalidShardPlan`] if `shards == 0` or `lo > hi`
    /// (degenerate input is rejected, never clamped).
    pub fn new(lo: i64, hi: i64, shards: usize) -> Result<Self, CatalogError> {
        if shards == 0 {
            return Err(CatalogError::InvalidShardPlan(
                "need at least one shard (shards == 0)".into(),
            ));
        }
        if lo > hi {
            return Err(CatalogError::InvalidShardPlan(format!(
                "empty domain [{lo}, {hi}] (lo > hi)"
            )));
        }
        Ok(Self {
            domain: (lo, hi),
            shards,
            mode: IngestMode::Locked,
        })
    }

    /// The same plan with channel (MPSC drain worker) ingestion.
    pub fn channel(mut self) -> Self {
        self.mode = IngestMode::Channel;
        self
    }

    /// The inclusive value domain `[lo, hi]` partitioned across shards.
    /// Values outside it route to the nearest edge shard.
    pub fn domain(&self) -> (i64, i64) {
        self.domain
    }

    /// Number of shards (>= 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingestion design.
    pub fn mode(&self) -> IngestMode {
        self.mode
    }

    /// The shard index a value routes to: equal-width partition of the
    /// domain, clamped at the edges. Total on `i64`; always in
    /// `0..self.shards()`.
    pub fn route(&self, v: i64) -> usize {
        let (lo, hi) = self.domain;
        let v = v.clamp(lo, hi);
        // Equal-width cells; widen before subtracting so domains spanning
        // the full i64 range can't overflow.
        let width = (hi as i128 - lo as i128) as u128 + 1;
        let off = (v as i128 - lo as i128) as u128;
        ((off * self.shards as u128 / width) as usize).min(self.shards - 1)
    }

    /// The inclusive value subrange owned by shard `i` — the exact
    /// inverse of [`route`](ShardPlan::route): the ranges tile the domain
    /// in order, and in-domain `v` satisfies `route(v) == i` iff `v` lies
    /// in `shard_range(i)`. With more shards than domain values some
    /// shards own nothing; their range comes back inverted
    /// (`b == a - 1`), consistent with an empty inclusive range.
    ///
    /// # Panics
    /// Panics if `i >= self.shards()`.
    pub fn shard_range(&self, i: usize) -> (i64, i64) {
        assert!(i < self.shards, "shard index out of range");
        let (lo, hi) = self.domain;
        let width = (hi as i128 - lo as i128) as u128 + 1;
        let k = self.shards as u128;
        // Inverse of `route`: value offset `off` lands in shard i iff
        // off * k / width == i, i.e. off in [ceil(i*width/k), ceil((i+1)*width/k) - 1].
        // Offsets fit in i128 (width <= 2^64), so the lo + offset sums
        // stay exact even on full-i64 domains.
        let start = |i: u128| (i * width).div_ceil(k) as i128;
        let a = (lo as i128 + start(i as u128)) as i64;
        let b = (lo as i128 + start(i as u128 + 1) - 1) as i64;
        (a, b)
    }
}

/// Per-column channel-mode machinery: one drain-nudge sender per shard
/// plus the worker handles (joined on drop).
struct Workers {
    /// `senders[i]` nudges shard `i`'s worker to drain up to an epoch.
    senders: Vec<mpsc::Sender<u64>>,
    handles: Vec<JoinHandle<()>>,
}

struct ShardedColumn {
    name: String,
    spec: AlgoSpec,
    plan: ShardPlan,
    cells: Vec<Arc<Cell>>,
    stamp: Mutex<ColumnStamp>,
    /// `Some` iff `plan.mode == IngestMode::Channel`.
    workers: Option<Workers>,
    cache: Mutex<ComposeCache>,
}

impl ShardedColumn {
    /// Routes a batch into per-shard sub-batches (indices align with
    /// `self.cells`; untouched shards get an empty vec).
    fn route_batch(&self, batch: &[UpdateOp]) -> Vec<Vec<UpdateOp>> {
        let mut routed: Vec<Vec<UpdateOp>> = vec![Vec::new(); self.plan.shards()];
        for &op in batch {
            let v = match op {
                UpdateOp::Insert(v) | UpdateOp::Delete(v) => v,
            };
            routed[self.plan.route(v)].push(op);
        }
        routed
    }
}

impl StoreColumn for ShardedColumn {
    /// The shard indices a batch touched.
    type Staged = Vec<usize>;

    fn name(&self) -> &str {
        &self.name
    }

    fn stage_ops(&self, ticket: &Arc<BatchTicket>, ops: Vec<UpdateOp>) -> Vec<usize> {
        let mut touched = Vec::new();
        for (i, sub) in self.route_batch(&ops).into_iter().enumerate() {
            if !sub.is_empty() {
                self.cells[i].stage(ticket.clone(), sub);
                touched.push(i);
            }
        }
        touched
    }

    fn stamp(&self) -> &Mutex<ColumnStamp> {
        &self.stamp
    }

    /// Post-publication application: drain the touched shards inline
    /// (locked mode) or nudge their workers (channel mode).
    fn settle(&self, touched: &Vec<usize>, epoch: u64) {
        match &self.workers {
            None => {
                for &i in touched {
                    self.cells[i].drain_to(epoch);
                }
            }
            Some(workers) => {
                for &i in touched {
                    // A worker that died (a panicking histogram apply
                    // unwinds its thread) must not turn into a
                    // store-wide denial of writes: fall back to the
                    // locked-mode inline drain.
                    if workers.senders[i].send(epoch).is_err() {
                        self.cells[i].drain_to(epoch);
                    }
                }
            }
        }
    }

    fn render_at(&self, epoch: u64, stamp: ColumnStamp) -> Result<Snapshot, u64> {
        let cells: Vec<&Cell> = self.cells.iter().map(Arc::as_ref).collect();
        compose_at(
            &cells,
            epoch,
            &self.cache,
            &self.name,
            self.spec.label(),
            stamp.accepted,
            stamp.updates,
        )
    }
}

impl Drop for ShardedColumn {
    fn drop(&mut self) {
        if let Some(workers) = self.workers.take() {
            drop(workers.senders); // disconnect: workers drain and exit
            for h in workers.handles {
                let _ = h.join();
            }
        }
    }
}

/// A thread-safe, multi-column histogram store whose columns are
/// partitioned across shards — the distributed cousin of
/// [`Catalog`](crate::Catalog), serving through the same [`ColumnStore`]
/// trait.
///
/// Writers commit from any number of threads; batches are routed by
/// value range so writers touching different shards never contend on
/// histogram state, while the store-wide epoch clock keeps every commit
/// atomic across shards and columns. Readers get the same epoch-pinned
/// [`Snapshot`] type a `Catalog` serves, so estimation and
/// `dh_optimizer` joins are oblivious to the sharding.
#[derive(Default)]
pub struct ShardedCatalog {
    registry: Registry<ShardedColumn>,
}

impl ShardedCatalog {
    /// An empty sharded catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard plan a column was registered with.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn plan(&self, column: &str) -> Result<ShardPlan, CatalogError> {
        Ok(self.registry.get(column)?.plan)
    }
}

impl ColumnStore for ShardedCatalog {
    /// Registers `column`, sharded per `config.plan` (required for this
    /// store), each shard holding a fresh `config.spec` histogram. The
    /// memory budget is divided evenly across the shards (a `k`-sharded
    /// column spends the same total bytes as an unsharded one); the seed
    /// is salted per shard.
    ///
    /// With [`IngestMode::Channel`] this also spawns one drain worker
    /// thread per shard (joined when the column is dropped).
    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), CatalogError> {
        let plan = config.plan.ok_or_else(|| {
            CatalogError::InvalidShardPlan(
                "a sharded store needs ColumnConfig::with_plan(...)".into(),
            )
        })?;
        // `ShardPlan::new` is the single validation point: plans cannot
        // be constructed degenerate, so `plan` is valid here.
        let per_shard = MemoryBudget::from_bytes((config.memory.bytes() / plan.shards()).max(1));
        self.registry.insert(column, || {
            let cells: Vec<Arc<Cell>> = (0..plan.shards())
                .map(|i| {
                    Arc::new(Cell::new(
                        config
                            .spec
                            .build(per_shard, config.seed.wrapping_add(i as u64)),
                    ))
                })
                .collect();
            let workers = match plan.mode() {
                IngestMode::Locked => None,
                IngestMode::Channel => {
                    let mut senders = Vec::with_capacity(plan.shards());
                    let mut handles = Vec::with_capacity(plan.shards());
                    for cell in &cells {
                        let (tx, rx) = mpsc::channel::<u64>();
                        let cell = Arc::clone(cell);
                        handles.push(std::thread::spawn(move || {
                            while let Ok(epoch) = rx.recv() {
                                cell.drain_to(epoch);
                            }
                        }));
                        senders.push(tx);
                    }
                    Some(Workers { senders, handles })
                }
            };
            ShardedColumn {
                name: column.to_string(),
                spec: config.spec,
                plan,
                cells,
                stamp: Mutex::new(ColumnStamp::default()),
                workers,
                cache: Mutex::new(ComposeCache::default()),
            }
        })
    }

    fn columns(&self) -> Vec<String> {
        self.registry.names()
    }

    fn contains(&self, column: &str) -> bool {
        self.registry.contains(column)
    }

    fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        Ok(self.registry.get(column)?.spec)
    }

    fn commit(&self, batch: WriteBatch) -> Result<u64, CatalogError> {
        self.registry.commit(batch)
    }

    fn apply(&self, column: &str, batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        self.registry.apply(column, batch)
    }

    /// Drains every shard of `column` up to the current published epoch.
    /// After this returns, every batch accepted before the call is in the
    /// histograms (the read barrier for channel-mode columns; cheap for
    /// locked ones, which drain on the write path).
    fn flush(&self, column: &str) -> Result<(), CatalogError> {
        let col = self.registry.get(column)?;
        let epoch = self.registry.epoch();
        for cell in &col.cells {
            cell.drain_to(epoch);
        }
        Ok(())
    }

    fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        self.registry.snapshot(column)
    }

    fn snapshot_set(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError> {
        self.registry.snapshot_set(columns)
    }

    fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        self.registry.checkpoint(column)
    }

    fn epoch(&self) -> u64 {
        self.registry.epoch()
    }
}

impl fmt::Debug for ShardedCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCatalog")
            .field("columns", &self.columns())
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ReadHistogram;

    fn inserts(range: std::ops::Range<i64>) -> Vec<UpdateOp> {
        range.map(UpdateOp::Insert).collect()
    }

    fn config(spec: AlgoSpec, kb: f64, seed: u64, plan: ShardPlan) -> ColumnConfig {
        ColumnConfig::new(spec, MemoryBudget::from_kb(kb))
            .with_seed(seed)
            .with_plan(plan)
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        assert!(matches!(
            ShardPlan::new(0, 9, 0),
            Err(CatalogError::InvalidShardPlan(_))
        ));
        assert!(matches!(
            ShardPlan::new(10, 9, 4),
            Err(CatalogError::InvalidShardPlan(_))
        ));
        let msg = ShardPlan::new(10, 9, 4).unwrap_err().to_string();
        assert!(msg.contains("lo > hi"), "{msg}");
        // A sharded store refuses a config without a plan.
        let cat = ShardedCatalog::new();
        assert!(matches!(
            cat.register(
                "a",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
            ),
            Err(CatalogError::InvalidShardPlan(_))
        ));
        // Private fields: `ShardPlan::new` is the only constructor, so a
        // degenerate plan cannot reach a store at all. Accessors echo
        // the validated values.
        let plan = ShardPlan::new(-5, 5, 3).unwrap().channel();
        assert_eq!(plan.domain(), (-5, 5));
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.mode(), IngestMode::Channel);
    }

    #[test]
    fn routing_partitions_the_domain() {
        let plan = ShardPlan::new(0, 999, 4).unwrap();
        assert_eq!(plan.route(0), 0);
        assert_eq!(plan.route(249), 0);
        assert_eq!(plan.route(250), 1);
        assert_eq!(plan.route(999), 3);
        // Outside the domain: clamped to the edge shards.
        assert_eq!(plan.route(-5), 0);
        assert_eq!(plan.route(10_000), 3);
        // Ranges tile the domain exactly.
        let mut next = 0i64;
        for i in 0..4 {
            let (a, b) = plan.shard_range(i);
            assert_eq!(
                a,
                next,
                "shard {i} starts where {} ended",
                i.wrapping_sub(1)
            );
            assert!(b >= a);
            next = b + 1;
        }
        assert_eq!(next, 1000);
        // Every value routes into its own shard's range.
        for v in 0..1000 {
            let s = plan.route(v);
            let (a, b) = plan.shard_range(s);
            assert!((a..=b).contains(&v), "{v} outside shard {s} [{a},{b}]");
        }
    }

    #[test]
    fn full_i64_domain_does_not_overflow() {
        let plan = ShardPlan::new(i64::MIN, i64::MAX, 4).unwrap();
        assert_eq!(plan.route(i64::MIN), 0);
        assert_eq!(plan.route(-1), 1);
        assert_eq!(plan.route(0), 2);
        assert_eq!(plan.route(i64::MAX), 3);
        let mut next = i64::MIN;
        for i in 0..4 {
            let (a, b) = plan.shard_range(i);
            assert_eq!(a, next);
            assert_eq!(plan.route(a), i);
            assert_eq!(plan.route(b), i);
            next = b.wrapping_add(1);
        }
        assert_eq!(plan.shard_range(3).1, i64::MAX);
    }

    #[test]
    fn uneven_domains_still_tile() {
        let plan = ShardPlan::new(-7, 9, 3).unwrap(); // width 17, not divisible
        let mut covered = 0i64;
        for i in 0..3 {
            let (a, b) = plan.shard_range(i);
            covered += b - a + 1;
            for v in a..=b {
                assert_eq!(plan.route(v), i);
            }
        }
        assert_eq!(covered, 17);
    }

    #[test]
    fn sharded_round_trip_and_caching() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 4999, 8).unwrap();
        cat.register("a", config(AlgoSpec::Dado, 2.0, 1, plan))
            .unwrap();
        assert_eq!(
            cat.register("a", config(AlgoSpec::Dc, 1.0, 1, plan)),
            Err(CatalogError::DuplicateColumn("a".into()))
        );
        let cp = cat.apply("a", &inserts(0..5000)).unwrap();
        assert_eq!(cp, 1);
        let s1 = cat.snapshot("a").unwrap();
        assert_eq!(s1.epoch(), 1);
        assert_eq!(s1.checkpoint(), 1);
        assert_eq!(s1.updates(), 5000);
        assert_eq!(s1.label(), "DADO");
        assert!((s1.total_count() - 5000.0).abs() < 1e-9);
        assert!((s1.estimate_range(0, 4999) - 5000.0).abs() / 5000.0 < 0.02);
        // Cached between writes, invalidated by a write.
        let s2 = cat.snapshot("a").unwrap();
        assert!(s1.same_rendering(&s2), "cached between writes");
        cat.apply("a", &inserts(0..10)).unwrap();
        let s3 = cat.snapshot("a").unwrap();
        assert_eq!(s3.checkpoint(), 2);
        assert_eq!(s3.epoch(), 2);
        assert!((s3.total_count() - 5010.0).abs() < 1e-9);
        // The old snapshot still reads consistently.
        assert!((s1.total_count() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn shard_aligned_ranges_are_exact() {
        // Mass conservation per shard makes estimates over whole shard
        // subranges *exact* — sharding strictly sharpens those reads.
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 99, 5).unwrap();
        cat.register("a", config(AlgoSpec::Dc, 0.25, 3, plan))
            .unwrap();
        let batch: Vec<UpdateOp> = (0..3000).map(|i| UpdateOp::Insert((i * 7) % 100)).collect();
        cat.apply("a", &batch).unwrap();
        let mut counts = [0f64; 100];
        for &op in &batch {
            if let UpdateOp::Insert(v) = op {
                counts[v as usize] += 1.0;
            }
        }
        for i in 0..5 {
            let (a, b) = plan.shard_range(i);
            let exact: f64 = (a..=b).map(|v| counts[v as usize]).sum();
            let est = cat.estimate_range("a", a, b).unwrap();
            assert!(
                (est - exact).abs() < 1e-6,
                "shard {i} [{a},{b}]: est {est} != exact {exact}"
            );
        }
    }

    #[test]
    fn channel_mode_applies_after_flush() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 999, 4).unwrap().channel();
        cat.register("a", config(AlgoSpec::Dc, 1.0, 1, plan))
            .unwrap();
        for b in 0..10i64 {
            let batch: Vec<UpdateOp> = (0..500)
                .map(|i| UpdateOp::Insert((b * 37 + i) % 1000))
                .collect();
            cat.apply("a", &batch).unwrap();
        }
        cat.flush("a").unwrap();
        let snap = cat.snapshot("a").unwrap();
        assert!((snap.total_count() - 5000.0).abs() < 1e-9);
        assert_eq!(cat.checkpoint("a").unwrap(), 10);
        // Dropping the catalog joins the workers (must not hang).
        drop(cat);
    }

    #[test]
    fn cross_shard_commits_are_never_torn() {
        // A batch spread over every shard becomes visible in one epoch:
        // any snapshot holds a whole multiple of the per-batch mass.
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 799, 8).unwrap();
        cat.register("a", config(AlgoSpec::Dc, 1.0, 1, plan))
            .unwrap();
        for round in 0..5i64 {
            // One value per shard (100-wide shards).
            let batch: Vec<UpdateOp> = (0..8).map(|s| UpdateOp::Insert(s * 100 + round)).collect();
            cat.apply("a", &batch).unwrap();
            let snap = cat.snapshot("a").unwrap();
            let total = snap.total_count();
            assert!(
                (total / 8.0 - (total / 8.0).round()).abs() < 1e-9,
                "torn batch visible: total {total}"
            );
        }
    }

    #[test]
    fn unknown_columns_error() {
        let cat = ShardedCatalog::new();
        assert_eq!(
            cat.apply("ghost", &[]).unwrap_err(),
            CatalogError::UnknownColumn("ghost".into())
        );
        assert!(cat.snapshot("ghost").is_err());
        assert!(cat.flush("ghost").is_err());
        assert!(cat.estimate_eq("ghost", 1).is_err());
        assert!(cat.plan("ghost").is_err());
        assert!(!cat.contains("ghost"));
        assert!(cat.is_empty());
    }

    #[test]
    fn empty_batches_advance_checkpoints() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 9, 2).unwrap();
        cat.register("a", config(AlgoSpec::EquiDepth, 0.25, 0, plan))
            .unwrap();
        assert_eq!(cat.apply("a", &[]).unwrap(), 1);
        assert_eq!(cat.apply("a", &[]).unwrap(), 2);
        assert_eq!(cat.checkpoint("a").unwrap(), 2);
        assert_eq!(cat.snapshot("a").unwrap().num_buckets(), 0);
    }
}
