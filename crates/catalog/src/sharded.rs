//! The sharded serving layer: one column's domain partitioned across
//! independently locked shards, composed back into a single histogram
//! through `dh_distributed`'s lossless superposition.
//!
//! A [`Catalog`](crate::Catalog) column serializes every writer behind one
//! `RwLock`. A [`ShardedCatalog`] column instead splits its value domain
//! into `k` contiguous subranges, each owning a private histogram (built
//! from the same [`AlgoSpec`], with the memory budget divided evenly), so
//! concurrent writers whose batches land on different shards never touch
//! the same lock. Readers still see *one* histogram: snapshot composition
//! superimposes the per-shard spans ([`dh_distributed::superimpose`], the
//! Section 8 union estimator — shards are "member sites" of a degenerate
//! shared-nothing union whose members happen to be disjoint), so a
//! [`Snapshot`] of a sharded column feeds `dh_optimizer` exactly like an
//! unsharded one.
//!
//! Two ingestion designs are available per column ([`IngestMode`]):
//!
//! * **`Locked`** — writers partition their batch by shard and apply each
//!   piece under that shard's own `RwLock`. Writers on different shards
//!   proceed in parallel; writers on the same shard contend only there.
//! * **`Channel`** — each shard owns an MPSC ingestion worker; writers
//!   only enqueue, never lock. Apply order per writer is preserved (MPSC
//!   is FIFO per sender), and [`ShardedCatalog::flush`] provides the
//!   barrier that makes reads deterministic.
//!
//! The `contention` bench and `repro serve` compare both designs against
//! the single-lock `Catalog` under multi-writer replay; `ARCHITECTURE.md`
//! quotes the numbers.
//!
//! # Example
//!
//! ```
//! use dh_catalog::{AlgoSpec, ShardPlan, ShardedCatalog};
//! use dh_core::{MemoryBudget, ReadHistogram, UpdateOp};
//!
//! let catalog = ShardedCatalog::new();
//! let plan = ShardPlan::new(0, 999, 4); // domain [0, 999], 4 shards
//! catalog
//!     .register("orders.amount", AlgoSpec::Dc, MemoryBudget::from_kb(1.0), 1, plan)
//!     .unwrap();
//!
//! let batch: Vec<UpdateOp> = (0..4000).map(|i| UpdateOp::Insert(i % 1000)).collect();
//! catalog.apply("orders.amount", &batch).unwrap();
//!
//! let snap = catalog.snapshot("orders.amount").unwrap();
//! assert!((snap.total_count() - 4000.0).abs() < 1e-9);
//! assert!(snap.estimate_range(0, 999) > 3900.0);
//! ```

use crate::catalog::{read_lock, write_lock, CatalogError};
use crate::spec::AlgoSpec;
use crate::Snapshot;
use dh_core::{BoxedHistogram, BucketSpan, MemoryBudget, UpdateOp};
use dh_distributed::superimpose;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// How a sharded column ingests update batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// Writers apply their (routed) sub-batches directly, under each
    /// shard's own lock. Synchronous: when [`ShardedCatalog::apply`]
    /// returns, the batch is in the histograms.
    #[default]
    Locked,
    /// Writers enqueue sub-batches to one MPSC ingestion worker per shard
    /// and return immediately; the worker alone takes the shard's write
    /// lock. Asynchronous: use [`ShardedCatalog::flush`] as a barrier
    /// before reads that must observe every prior `apply`.
    Channel,
}

/// How a column is sharded: its value domain, the shard count, and the
/// ingestion design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPlan {
    /// Inclusive value domain `[lo, hi]` partitioned across shards.
    /// Values outside the domain route to the nearest edge shard.
    pub domain: (i64, i64),
    /// Number of shards (>= 1).
    pub shards: usize,
    /// Ingestion design.
    pub mode: IngestMode,
}

impl ShardPlan {
    /// A locked-ingestion plan over the inclusive domain `[lo, hi]` with
    /// `shards` equal-width shards.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `shards == 0`.
    pub fn new(lo: i64, hi: i64, shards: usize) -> Self {
        assert!(lo <= hi, "empty shard domain");
        assert!(shards > 0, "need at least one shard");
        Self {
            domain: (lo, hi),
            shards,
            mode: IngestMode::Locked,
        }
    }

    /// The same plan with channel (MPSC worker) ingestion.
    pub fn channel(mut self) -> Self {
        self.mode = IngestMode::Channel;
        self
    }

    /// The invariants [`ShardPlan::new`] establishes, re-checked because
    /// the fields are public and a literal can bypass the constructor.
    fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.domain.0 <= self.domain.1, "empty shard domain");
    }

    /// The shard index a value routes to: equal-width partition of the
    /// domain, clamped at the edges.
    ///
    /// # Panics
    /// Panics on an invalid plan (`shards == 0` or an inverted domain —
    /// constructible only by building the struct literally, since
    /// [`ShardPlan::new`] validates).
    pub fn route(&self, v: i64) -> usize {
        self.validate();
        let (lo, hi) = self.domain;
        let v = v.clamp(lo, hi);
        // Equal-width cells; widen before subtracting so domains spanning
        // the full i64 range can't overflow.
        let width = (hi as i128 - lo as i128) as u128 + 1;
        let off = (v as i128 - lo as i128) as u128;
        ((off * self.shards as u128 / width) as usize).min(self.shards - 1)
    }

    /// The inclusive value subrange owned by shard `i`. With more shards
    /// than domain values some shards own nothing; their range comes back
    /// inverted (`b == a - 1`), consistent with an empty inclusive range.
    ///
    /// # Panics
    /// Panics if `i >= self.shards` or on an invalid plan (see
    /// [`ShardPlan::route`]).
    pub fn shard_range(&self, i: usize) -> (i64, i64) {
        self.validate();
        assert!(i < self.shards, "shard index out of range");
        let (lo, hi) = self.domain;
        let width = (hi as i128 - lo as i128) as u128 + 1;
        let k = self.shards as u128;
        // Inverse of `route`: value offset `off` lands in shard i iff
        // off * k / width == i, i.e. off in [ceil(i*width/k), ceil((i+1)*width/k) - 1].
        // Offsets fit in i128 (width <= 2^64), so the lo + offset sums
        // stay exact even on full-i64 domains.
        let start = |i: u128| (i * width).div_ceil(k) as i128;
        let a = (lo as i128 + start(i as u128)) as i64;
        let b = (lo as i128 + start(i as u128 + 1) - 1) as i64;
        (a, b)
    }
}

/// Messages a shard's ingestion worker consumes.
enum ShardMsg {
    /// Apply one routed sub-batch.
    Batch(Vec<UpdateOp>),
    /// Ack once everything enqueued before this message is applied.
    Flush(mpsc::Sender<()>),
}

/// One shard's mutable state, behind the shard's own lock.
struct ShardState {
    histogram: BoxedHistogram,
    /// Bumps on every applied sub-batch; keys the composed-snapshot cache.
    version: u64,
    /// Cached span rendering, invalidated by every applied sub-batch.
    spans: Option<Vec<BucketSpan>>,
    scratch: Vec<BucketSpan>,
}

struct Shard {
    state: RwLock<ShardState>,
}

impl Shard {
    /// The shard's current version (cheap: one read lock, no rendering).
    fn version(&self) -> u64 {
        read_lock(&self.state).version
    }

    fn apply(&self, batch: &[UpdateOp]) {
        let mut state = write_lock(&self.state);
        state.histogram.apply_slice(batch);
        state.version += 1;
        state.spans = None;
    }

    /// The shard's `(version, spans)`, rendering and caching on demand.
    fn versioned_spans(&self) -> (u64, Vec<BucketSpan>) {
        {
            let state = read_lock(&self.state);
            if let Some(s) = &state.spans {
                return (state.version, s.clone());
            }
        }
        let mut state = write_lock(&self.state);
        if state.spans.is_none() {
            let ShardState {
                histogram, scratch, ..
            } = &mut *state;
            histogram.spans_into(scratch);
            let spans = scratch.clone();
            state.spans = Some(spans);
        }
        (
            state.version,
            state.spans.clone().expect("rendered just above"),
        )
    }
}

/// The composed-snapshot cache: valid while every shard still has the
/// version it was rendered from.
#[derive(Default)]
struct ComposedCache {
    versions: Vec<u64>,
    snapshot: Option<Snapshot>,
}

/// Per-column channel-mode machinery: one sender per shard plus the
/// worker handles (joined on drop).
struct Workers {
    senders: Vec<mpsc::Sender<ShardMsg>>,
    handles: Vec<JoinHandle<()>>,
}

struct ShardedColumn {
    name: String,
    spec: AlgoSpec,
    plan: ShardPlan,
    shards: Vec<Arc<Shard>>,
    /// Batches accepted so far (strictly monotone; counts `apply` calls).
    checkpoint: AtomicU64,
    /// Individual updates accepted so far.
    updates: AtomicU64,
    /// `Some` iff `plan.mode == IngestMode::Channel`.
    workers: Option<Workers>,
    composed: Mutex<ComposedCache>,
}

impl ShardedColumn {
    /// Routes a batch into per-shard sub-batches (indices align with
    /// `self.shards`; untouched shards get an empty vec).
    fn route_batch(&self, batch: &[UpdateOp]) -> Vec<Vec<UpdateOp>> {
        let mut routed: Vec<Vec<UpdateOp>> = vec![Vec::new(); self.plan.shards];
        for &op in batch {
            let v = match op {
                UpdateOp::Insert(v) | UpdateOp::Delete(v) => v,
            };
            routed[self.plan.route(v)].push(op);
        }
        routed
    }
}

impl Drop for ShardedColumn {
    fn drop(&mut self) {
        if let Some(workers) = self.workers.take() {
            drop(workers.senders); // disconnect: workers drain and exit
            for h in workers.handles {
                let _ = h.join();
            }
        }
    }
}

/// A thread-safe, multi-column histogram store whose columns are
/// partitioned across shards — the distributed cousin of
/// [`Catalog`](crate::Catalog).
///
/// Writers call [`ShardedCatalog::apply`] from any number of threads;
/// batches are routed by value range so writers touching different shards
/// never contend. Readers call [`ShardedCatalog::snapshot`] and get the
/// same [`Snapshot`] type a `Catalog` serves, so estimation and
/// `dh_optimizer` joins are oblivious to the sharding.
#[derive(Default)]
pub struct ShardedCatalog {
    columns: RwLock<BTreeMap<String, Arc<ShardedColumn>>>,
}

impl ShardedCatalog {
    /// An empty sharded catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `column`, sharded per `plan`, each shard holding a fresh
    /// `spec` histogram. The `memory` budget is divided evenly across the
    /// shards (a `k`-sharded column spends the same total bytes as an
    /// unsharded one); `seed` feeds sampling algorithms, salted per shard.
    ///
    /// With [`IngestMode::Channel`] this also spawns one ingestion worker
    /// thread per shard (joined when the column is dropped).
    ///
    /// # Errors
    /// [`CatalogError::DuplicateColumn`] if the name is taken.
    pub fn register(
        &self,
        column: impl Into<String>,
        spec: AlgoSpec,
        memory: MemoryBudget,
        seed: u64,
        plan: ShardPlan,
    ) -> Result<(), CatalogError> {
        assert!(plan.shards > 0, "need at least one shard");
        assert!(plan.domain.0 <= plan.domain.1, "empty shard domain");
        let name = column.into();
        let mut columns = write_lock(&self.columns);
        if columns.contains_key(&name) {
            return Err(CatalogError::DuplicateColumn(name));
        }
        let per_shard = MemoryBudget::from_bytes((memory.bytes() / plan.shards).max(1));
        let shards: Vec<Arc<Shard>> = (0..plan.shards)
            .map(|i| {
                Arc::new(Shard {
                    state: RwLock::new(ShardState {
                        histogram: spec.build(per_shard, seed.wrapping_add(i as u64)),
                        version: 0,
                        spans: None,
                        scratch: Vec::new(),
                    }),
                })
            })
            .collect();
        let workers = match plan.mode {
            IngestMode::Locked => None,
            IngestMode::Channel => {
                let mut senders = Vec::with_capacity(plan.shards);
                let mut handles = Vec::with_capacity(plan.shards);
                for shard in &shards {
                    let (tx, rx) = mpsc::channel::<ShardMsg>();
                    let shard = Arc::clone(shard);
                    handles.push(std::thread::spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                ShardMsg::Batch(batch) => shard.apply(&batch),
                                ShardMsg::Flush(ack) => {
                                    let _ = ack.send(());
                                }
                            }
                        }
                    }));
                    senders.push(tx);
                }
                Some(Workers { senders, handles })
            }
        };
        columns.insert(
            name.clone(),
            Arc::new(ShardedColumn {
                name,
                spec,
                plan,
                shards,
                checkpoint: AtomicU64::new(0),
                updates: AtomicU64::new(0),
                workers,
                composed: Mutex::new(ComposedCache::default()),
            }),
        );
        Ok(())
    }

    /// The registered column names, sorted.
    pub fn columns(&self) -> Vec<String> {
        read_lock(&self.columns).keys().cloned().collect()
    }

    /// Whether `column` is registered.
    pub fn contains(&self, column: &str) -> bool {
        read_lock(&self.columns).contains_key(column)
    }

    /// Number of registered columns.
    pub fn len(&self) -> usize {
        read_lock(&self.columns).len()
    }

    /// Whether no columns are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The algorithm a column was registered with.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        Ok(self.column(column)?.spec)
    }

    /// The shard plan a column was registered with.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn plan(&self, column: &str) -> Result<ShardPlan, CatalogError> {
        Ok(self.column(column)?.plan)
    }

    /// Routes one batch of updates to `column`'s shards and returns the
    /// new accepted-batch checkpoint (strictly monotone per column).
    ///
    /// With [`IngestMode::Locked`] the batch is applied before returning;
    /// with [`IngestMode::Channel`] it is enqueued (FIFO per caller
    /// thread) and applied by the shard workers — [`ShardedCatalog::flush`]
    /// is the barrier.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn apply(&self, column: &str, batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        let col = self.column(column)?;
        match &col.workers {
            None => {
                for (i, sub) in col.route_batch(batch).into_iter().enumerate() {
                    if !sub.is_empty() {
                        col.shards[i].apply(&sub);
                    }
                }
            }
            Some(workers) => {
                for (i, sub) in col.route_batch(batch).into_iter().enumerate() {
                    if !sub.is_empty() {
                        workers.senders[i]
                            .send(ShardMsg::Batch(sub))
                            .expect("shard ingestion worker lives as long as the column");
                    }
                }
            }
        }
        col.updates.fetch_add(batch.len() as u64, Ordering::AcqRel);
        Ok(col.checkpoint.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// Blocks until every batch enqueued to `column` before this call has
    /// been applied. A no-op for [`IngestMode::Locked`] columns.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn flush(&self, column: &str) -> Result<(), CatalogError> {
        let col = self.column(column)?;
        if let Some(workers) = &col.workers {
            let (ack_tx, ack_rx) = mpsc::channel();
            let mut pending = 0usize;
            for tx in &workers.senders {
                if tx.send(ShardMsg::Flush(ack_tx.clone())).is_ok() {
                    pending += 1;
                }
            }
            drop(ack_tx);
            for _ in 0..pending {
                let _ = ack_rx.recv();
            }
        }
        Ok(())
    }

    /// An immutable snapshot of `column`: the per-shard spans composed by
    /// lossless superposition into one histogram.
    ///
    /// Snapshots are cached against the per-shard version vector — between
    /// writes, every call is one `Arc` clone. The snapshot's spans reflect
    /// what has been *applied* (call [`ShardedCatalog::flush`] on a
    /// channel-mode column first to observe every accepted batch); its
    /// [`Snapshot::checkpoint`] reports the accepted-batch counter at the
    /// time of the call, so at rest (and after a flush) it equals the
    /// batches the spans contain.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        let col = self.column(column)?;
        // The composed cache's mutex serializes rendering (and hands
        // cache hits out quickly); shard locks nest inside it, never the
        // reverse, so writers can't deadlock against readers.
        let mut cache = col.composed.lock().unwrap_or_else(|e| e.into_inner());
        // Monotone because the counter is and renders are serialized here.
        let checkpoint = col.checkpoint.load(Ordering::Acquire);
        let updates = col.updates.load(Ordering::Acquire);
        // Probe the cache on versions alone — a hit must not pay for
        // cloning every shard's spans.
        let hit = cache.snapshot.is_some()
            && cache.versions.len() == col.shards.len()
            && col
                .shards
                .iter()
                .zip(&cache.versions)
                .all(|(s, &v)| s.version() == v);
        if hit {
            let snap = cache.snapshot.as_ref().expect("checked above");
            if snap.checkpoint() == checkpoint && snap.updates() == updates {
                return Ok(snap.clone());
            }
            // Identical spans but the counters moved on (a writer bumped
            // them mid-render, or an empty batch advanced the checkpoint):
            // re-stamp the cached rendering instead of claiming the past.
            let snapshot = snap.restamped(checkpoint, updates);
            cache.snapshot = Some(snapshot.clone());
            return Ok(snapshot);
        }
        let mut versions = Vec::with_capacity(col.shards.len());
        let mut members = Vec::with_capacity(col.shards.len());
        for shard in &col.shards {
            let (version, spans) = shard.versioned_spans();
            versions.push(version);
            members.push(spans);
        }
        let composed = superimpose(&members);
        let snapshot = Snapshot::from_parts(
            col.name.clone(),
            col.spec.label(),
            checkpoint,
            updates,
            composed,
        );
        cache.versions = versions;
        cache.snapshot = Some(snapshot.clone());
        Ok(snapshot)
    }

    /// The number of batches accepted for `column` so far.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        Ok(self.column(column)?.checkpoint.load(Ordering::Acquire))
    }

    /// Estimated number of values in `[a, b]` on `column`.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        use dh_core::ReadHistogram;
        Ok(self.snapshot(column)?.estimate_range(a, b))
    }

    /// Estimated number of values equal to `v` on `column`.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        use dh_core::ReadHistogram;
        Ok(self.snapshot(column)?.estimate_eq(v))
    }

    /// Total live mass on `column`.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    pub fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        use dh_core::ReadHistogram;
        Ok(self.snapshot(column)?.total_count())
    }

    fn column(&self, column: &str) -> Result<Arc<ShardedColumn>, CatalogError> {
        read_lock(&self.columns)
            .get(column)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownColumn(column.into()))
    }
}

impl fmt::Debug for ShardedCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCatalog")
            .field("columns", &self.columns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ReadHistogram;

    fn inserts(range: std::ops::Range<i64>) -> Vec<UpdateOp> {
        range.map(UpdateOp::Insert).collect()
    }

    #[test]
    fn routing_partitions_the_domain() {
        let plan = ShardPlan::new(0, 999, 4);
        assert_eq!(plan.route(0), 0);
        assert_eq!(plan.route(249), 0);
        assert_eq!(plan.route(250), 1);
        assert_eq!(plan.route(999), 3);
        // Outside the domain: clamped to the edge shards.
        assert_eq!(plan.route(-5), 0);
        assert_eq!(plan.route(10_000), 3);
        // Ranges tile the domain exactly.
        let mut next = 0i64;
        for i in 0..4 {
            let (a, b) = plan.shard_range(i);
            assert_eq!(
                a,
                next,
                "shard {i} starts where {} ended",
                i.wrapping_sub(1)
            );
            assert!(b >= a);
            next = b + 1;
        }
        assert_eq!(next, 1000);
        // Every value routes into its own shard's range.
        for v in 0..1000 {
            let s = plan.route(v);
            let (a, b) = plan.shard_range(s);
            assert!((a..=b).contains(&v), "{v} outside shard {s} [{a},{b}]");
        }
    }

    #[test]
    fn full_i64_domain_does_not_overflow() {
        let plan = ShardPlan::new(i64::MIN, i64::MAX, 4);
        assert_eq!(plan.route(i64::MIN), 0);
        assert_eq!(plan.route(-1), 1);
        assert_eq!(plan.route(0), 2);
        assert_eq!(plan.route(i64::MAX), 3);
        let mut next = i64::MIN;
        for i in 0..4 {
            let (a, b) = plan.shard_range(i);
            assert_eq!(a, next);
            assert_eq!(plan.route(a), i);
            assert_eq!(plan.route(b), i);
            next = b.wrapping_add(1);
        }
        assert_eq!(plan.shard_range(3).1, i64::MAX);
    }

    #[test]
    fn uneven_domains_still_tile() {
        let plan = ShardPlan::new(-7, 9, 3); // width 17, not divisible
        let mut covered = 0i64;
        for i in 0..3 {
            let (a, b) = plan.shard_range(i);
            covered += b - a + 1;
            for v in a..=b {
                assert_eq!(plan.route(v), i);
            }
        }
        assert_eq!(covered, 17);
    }

    #[test]
    fn sharded_round_trip_and_caching() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 4999, 8);
        cat.register("a", AlgoSpec::Dado, MemoryBudget::from_kb(2.0), 1, plan)
            .unwrap();
        assert_eq!(
            cat.register("a", AlgoSpec::Dc, MemoryBudget::from_kb(1.0), 1, plan),
            Err(CatalogError::DuplicateColumn("a".into()))
        );
        let cp = cat.apply("a", &inserts(0..5000)).unwrap();
        assert_eq!(cp, 1);
        let s1 = cat.snapshot("a").unwrap();
        assert_eq!(s1.checkpoint(), 1);
        assert_eq!(s1.updates(), 5000);
        assert_eq!(s1.label(), "DADO");
        assert!((s1.total_count() - 5000.0).abs() < 1e-9);
        assert!((s1.estimate_range(0, 4999) - 5000.0).abs() / 5000.0 < 0.02);
        // Cached between writes, invalidated by a write.
        let s2 = cat.snapshot("a").unwrap();
        assert!((s1.total_count() - s2.total_count()).abs() < 1e-12);
        cat.apply("a", &inserts(0..10)).unwrap();
        let s3 = cat.snapshot("a").unwrap();
        assert_eq!(s3.checkpoint(), 2);
        assert!((s3.total_count() - 5010.0).abs() < 1e-9);
        // The old snapshot still reads consistently.
        assert!((s1.total_count() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn shard_aligned_ranges_are_exact() {
        // Mass conservation per shard makes estimates over whole shard
        // subranges *exact* — sharding strictly sharpens those reads.
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 99, 5);
        cat.register("a", AlgoSpec::Dc, MemoryBudget::from_kb(0.25), 3, plan)
            .unwrap();
        let batch: Vec<UpdateOp> = (0..3000).map(|i| UpdateOp::Insert((i * 7) % 100)).collect();
        cat.apply("a", &batch).unwrap();
        let mut counts = [0f64; 100];
        for &op in &batch {
            if let UpdateOp::Insert(v) = op {
                counts[v as usize] += 1.0;
            }
        }
        for i in 0..5 {
            let (a, b) = plan.shard_range(i);
            let exact: f64 = (a..=b).map(|v| counts[v as usize]).sum();
            let est = cat.estimate_range("a", a, b).unwrap();
            assert!(
                (est - exact).abs() < 1e-6,
                "shard {i} [{a},{b}]: est {est} != exact {exact}"
            );
        }
    }

    #[test]
    fn channel_mode_applies_after_flush() {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 999, 4).channel();
        cat.register("a", AlgoSpec::Dc, MemoryBudget::from_kb(1.0), 1, plan)
            .unwrap();
        for b in 0..10i64 {
            let batch: Vec<UpdateOp> = (0..500)
                .map(|i| UpdateOp::Insert((b * 37 + i) % 1000))
                .collect();
            cat.apply("a", &batch).unwrap();
        }
        cat.flush("a").unwrap();
        let snap = cat.snapshot("a").unwrap();
        assert!((snap.total_count() - 5000.0).abs() < 1e-9);
        assert_eq!(cat.checkpoint("a").unwrap(), 10);
        // Dropping the catalog joins the workers (must not hang).
        drop(cat);
    }

    #[test]
    fn unknown_columns_error() {
        let cat = ShardedCatalog::new();
        assert_eq!(
            cat.apply("ghost", &[]).unwrap_err(),
            CatalogError::UnknownColumn("ghost".into())
        );
        assert!(cat.snapshot("ghost").is_err());
        assert!(cat.flush("ghost").is_err());
        assert!(cat.estimate_eq("ghost", 1).is_err());
        assert!(!cat.contains("ghost"));
        assert!(cat.is_empty());
    }

    #[test]
    fn empty_batches_advance_checkpoints() {
        let cat = ShardedCatalog::new();
        cat.register(
            "a",
            AlgoSpec::EquiDepth,
            MemoryBudget::from_kb(0.25),
            0,
            ShardPlan::new(0, 9, 2),
        )
        .unwrap();
        assert_eq!(cat.apply("a", &[]).unwrap(), 1);
        assert_eq!(cat.apply("a", &[]).unwrap(), 2);
        assert_eq!(cat.checkpoint("a").unwrap(), 2);
        assert_eq!(cat.snapshot("a").unwrap().num_buckets(), 0);
    }
}
