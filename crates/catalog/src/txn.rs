//! Transactional, epoch-stamped writes: the machinery that lets every
//! store commit a [`WriteBatch`] atomically across columns and shards.
//!
//! The paper's deployment keeps histograms maintained *while* the
//! optimizer reads them; once a column is split across shards (or an
//! optimizer estimate spans several columns), "maintained in place" needs
//! a consistency story. This module provides it with a two-phase,
//! epoch-stamped commit:
//!
//! 1. **Stage** — the writer appends its per-cell sub-batches to each
//!    touched cell's pending queue under that cell's (tiny) staging
//!    lock. Nothing is visible to readers yet: the entries carry an
//!    *unpublished* ticket.
//! 2. **Publish** — the store's epoch clock assigns the next epoch to
//!    the ticket and advances the published counter, both under one brief
//!    mutex. This is the single atomic step: the instant the epoch is
//!    published, *all* of the batch's staged entries (every shard, every
//!    column) become visible together.
//!
//! Application into the actual histograms happens *after* publication, in
//! strict epoch order, by whoever needs the data first — the committing
//! writer (locked ingestion), a per-shard worker (channel ingestion), or
//! a reader rendering a snapshot. Because any drain applies *all* pending
//! entries up to its target epoch and none beyond, a reader pinning epoch
//! `E` observes exactly the batches published at or before `E` — whole
//! batches only, never a torn one.

use crate::catalog::{CatalogError, Snapshot};
use crate::read::{CacheKind, LeftRightCell, ReadCounters, ReadGeneration, ReadStats};
use crate::store::SnapshotSet;
use dh_core::{BoxedHistogram, BucketSpan, UpdateOp};
use dh_distributed::superimpose;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A group of [`UpdateOp`]s destined for one or more columns, committed
/// atomically: readers observe either none or all of it, across every
/// column and shard it touches.
///
/// Built incrementally and handed to
/// [`ColumnStore::commit`](crate::ColumnStore::commit):
///
/// ```
/// use dh_catalog::{Catalog, ColumnConfig, ColumnStore, AlgoSpec, WriteBatch};
/// use dh_core::MemoryBudget;
///
/// let store = Catalog::new();
/// let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5));
/// store.register("orders.amount", config).unwrap();
/// store.register("orders.qty", config).unwrap();
///
/// let mut batch = WriteBatch::new();
/// batch.insert("orders.amount", 120).insert("orders.qty", 3);
/// batch.delete("orders.amount", 7);
/// let epoch = store.commit(batch).unwrap();
/// assert_eq!(epoch, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    ops: BTreeMap<String, Vec<UpdateOp>>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch holding `ops` for a single `column` (the shape
    /// [`ColumnStore::apply`](crate::ColumnStore::apply) commits).
    pub fn for_column(column: impl Into<String>, ops: impl Into<Vec<UpdateOp>>) -> Self {
        let mut batch = Self::new();
        batch.ops.insert(column.into(), ops.into());
        batch
    }

    /// Adds one insertion of `v` on `column`.
    pub fn insert(&mut self, column: &str, v: i64) -> &mut Self {
        self.push(column, UpdateOp::Insert(v))
    }

    /// Adds one deletion of `v` on `column`.
    pub fn delete(&mut self, column: &str, v: i64) -> &mut Self {
        self.push(column, UpdateOp::Delete(v))
    }

    /// Adds one update on `column`.
    pub fn push(&mut self, column: &str, op: UpdateOp) -> &mut Self {
        self.column_ops(column).push(op);
        self
    }

    /// Adds a run of updates on `column`.
    pub fn extend(&mut self, column: &str, ops: impl IntoIterator<Item = UpdateOp>) -> &mut Self {
        self.column_ops(column).extend(ops);
        self
    }

    /// The columns this batch touches, sorted.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.ops.keys().map(String::as_str)
    }

    /// The ops queued for `column`, if any.
    pub fn ops(&self, column: &str) -> Option<&[UpdateOp]> {
        self.ops.get(column).map(Vec::as_slice)
    }

    /// Total number of updates across all columns.
    pub fn len(&self) -> usize {
        self.ops.values().map(Vec::len).sum()
    }

    /// Whether the batch touches no column at all. (A batch with columns
    /// but zero ops is *not* empty: committing it still advances those
    /// columns' checkpoints, marking an explicit sync point.)
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Consumes the batch into its per-column op lists.
    pub(crate) fn into_parts(self) -> BTreeMap<String, Vec<UpdateOp>> {
        self.ops
    }

    fn column_ops(&mut self, column: &str) -> &mut Vec<UpdateOp> {
        if !self.ops.contains_key(column) {
            self.ops.insert(column.to_string(), Vec::new());
        }
        self.ops.get_mut(column).expect("inserted above")
    }
}

/// Epoch value of a staged-but-unpublished batch.
const UNPUBLISHED: u64 = u64::MAX;

/// A commit's identity: staged entries point at the ticket; publication
/// stamps the epoch into it, flipping every entry visible at once.
pub(crate) struct BatchTicket {
    epoch: AtomicU64,
}

impl BatchTicket {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            epoch: AtomicU64::new(UNPUBLISHED),
        })
    }

    /// The stamped epoch, or [`UNPUBLISHED`].
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// A store's epoch authority: one monotone published counter plus the
/// mutex that makes "stamp the ticket, advance the counter" one atomic
/// publication step.
#[derive(Default)]
pub(crate) struct EpochClock {
    published: AtomicU64,
    gate: Mutex<()>,
}

impl EpochClock {
    /// The highest published epoch (0 before any commit).
    pub(crate) fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Publishes `ticket` as the next epoch and returns it. `on_publish`
    /// runs under the publication mutex (used to bump per-column
    /// accepted-batch counters in the same atomic step).
    ///
    /// Publication *must* happen strictly after every staged entry of the
    /// batch is in its cell's pending queue: readers derive drain targets
    /// from the published counter, so an entry staged late would be
    /// skipped and lost.
    pub(crate) fn publish(&self, ticket: &BatchTicket, on_publish: impl FnOnce(u64)) -> u64 {
        let _gate = lock(&self.gate);
        let epoch = self.published.load(Ordering::Relaxed) + 1;
        ticket.epoch.store(epoch, Ordering::Release);
        on_publish(epoch);
        self.published.store(epoch, Ordering::Release);
        epoch
    }

    /// Runs `f` under the publication gate: whatever it reads is
    /// consistent with *completed* publications only — it can never
    /// observe a multi-column commit halfway through stamping its
    /// columns (the reader side of [`EpochClock::publish`]'s atomicity).
    pub(crate) fn consistent<R>(&self, f: impl FnOnce() -> R) -> R {
        let _gate = lock(&self.gate);
        f()
    }

    /// Seeds the published counter directly — crash recovery restoring a
    /// checkpoint's absolute epoch without replaying one publication per
    /// historical epoch. Only meaningful on a store with no concurrent
    /// writers (recovery owns the store exclusively).
    pub(crate) fn restore(&self, epoch: u64) {
        let _gate = lock(&self.gate);
        self.published.store(epoch, Ordering::Release);
    }
}

/// Publish-consistent per-column counters: the epoch of the column's
/// last publication plus its accepted batch/update totals, updated as
/// one unit under the store's publication gate — so a render pinned at
/// epoch `E` whose column stamp satisfies `epoch <= E` knows the
/// counters are exactly the as-of-`E` values (anything newer would have
/// moved `epoch` past the pin).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ColumnStamp {
    /// Epoch of this column's most recent publication (0 = never).
    pub epoch: u64,
    /// Batches accepted so far; strictly monotone.
    pub accepted: u64,
    /// Individual updates accepted so far.
    pub updates: u64,
}

/// One column of a store, as the shared protocol sees it: somewhere to
/// stage ops, a publish-consistent stamp, a post-publication settle
/// step, and a pinned renderer. Implemented by both stores' column
/// types so the protocol-critical choreography (stage → publish →
/// settle on the write side, gated stamp read → pinned render on the
/// read side) lives here, once, in [`Registry`].
pub(crate) trait StoreColumn {
    /// Staging token carried from [`StoreColumn::stage_ops`] to
    /// [`StoreColumn::settle`] (e.g. which shards a batch touched).
    type Staged;

    /// The column's registered name.
    fn name(&self) -> &str;

    /// Phase 1: queue `ops` under `ticket`, invisible until published.
    fn stage_ops(&self, ticket: &Arc<BatchTicket>, ops: Vec<UpdateOp>) -> Self::Staged;

    /// The column's publish-consistent counters.
    fn stamp(&self) -> &Mutex<ColumnStamp>;

    /// Phase 3: apply (or delegate applying) the published entries.
    fn settle(&self, staged: &Self::Staged, epoch: u64);

    /// Renders the column at exactly `epoch`, stamping the snapshot from
    /// the already-validated `stamp` (retry token on `Err`).
    fn render_at(&self, epoch: u64, stamp: ColumnStamp) -> Result<Snapshot, u64>;

    /// Restore path: applies `ops` straight into the column's cells with
    /// the content marked as-of `epoch`, bypassing the stage/publish
    /// pipeline. Only for checkpoint recovery on an exclusively-owned
    /// store (see [`Registry::restore_at`]).
    fn restore_content(&self, epoch: u64, ops: Vec<UpdateOp>);
}

/// One column's image inside a checkpoint being restored: its exact
/// historical counters plus the ops synthesized from its checkpointed
/// spans.
pub(crate) struct RestoreColumn {
    pub name: String,
    /// Accepted-batch count as of the checkpoint epoch.
    pub accepted: u64,
    /// Accepted-update count as of the checkpoint epoch (the historical
    /// value — restore preserves it exactly).
    pub updates: u64,
    /// Synthesized insertions reproducing the checkpointed mass.
    pub ops: Vec<UpdateOp>,
}

/// Seam for the `DurableStore` decorator's checkpoint restore: every
/// concrete store exposes [`Registry::restore_at`] through it, so the
/// durable layer can seed a freshly built store without replaying one
/// pad commit per historical epoch.
pub(crate) trait DirectRestore {
    /// See [`Registry::restore_at`].
    fn restore_at(&self, epoch: u64, images: Vec<RestoreColumn>) -> Result<(), CatalogError>;
}

/// The shared store chassis: the named-column map plus the epoch clock,
/// carrying every [`crate::ColumnStore`] behavior that is identical
/// across designs — registration bookkeeping, the two-phase commit
/// choreography, and the gated pinned-read protocol. The concrete
/// stores only supply column construction, per-column
/// staging/settling/rendering (via [`StoreColumn`]).
pub(crate) struct Registry<T> {
    columns: RwLock<BTreeMap<String, Arc<T>>>,
    clock: EpochClock,
    /// The wait-free read front: the latest rendered whole-store
    /// generation, swapped (never mutated) by writers. See
    /// `docs/READ_PATH.md` and [`crate::read`].
    front: LeftRightCell<ReadGeneration>,
    counters: Arc<ReadCounters>,
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        let counters = Arc::new(ReadCounters::default());
        Self {
            columns: RwLock::new(BTreeMap::new()),
            clock: EpochClock::default(),
            front: LeftRightCell::new(Arc::new(ReadGeneration::empty(counters.clone()))),
            counters,
        }
    }
}

impl<T: StoreColumn> Registry<T> {
    /// Registers a column under `name`, building it with `build` only
    /// if the name is free.
    pub(crate) fn insert(&self, name: &str, build: impl FnOnce() -> T) -> Result<(), CatalogError> {
        {
            let mut columns = write_lock(&self.columns);
            if columns.contains_key(name) {
                return Err(CatalogError::DuplicateColumn(name.into()));
            }
            columns.insert(name.to_string(), Arc::new(build()));
        }
        // Fold the new (empty) column into the front so its reads are
        // wait-free from the first snapshot on.
        self.refresh_front(false);
        Ok(())
    }

    /// The column registered under `name`.
    pub(crate) fn get(&self, name: &str) -> Result<Arc<T>, CatalogError> {
        read_lock(&self.columns)
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownColumn(name.into()))
    }

    /// The registered column names, sorted.
    pub(crate) fn names(&self) -> Vec<String> {
        read_lock(&self.columns).keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub(crate) fn contains(&self, name: &str) -> bool {
        read_lock(&self.columns).contains_key(name)
    }

    /// The store's highest published epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.clock.published()
    }

    /// The accepted-batch count of `name`.
    pub(crate) fn checkpoint(&self, name: &str) -> Result<u64, CatalogError> {
        Ok(lock(self.get(name)?.stamp()).accepted)
    }

    /// Commits one multi-column batch: resolve every column first (an
    /// unknown name must not leave the others half-committed), stage
    /// everything, publish once (stamping every touched column under
    /// the gate), settle everything. Returns the published epoch.
    ///
    /// Publication happens strictly after all staging — the invariant
    /// the whole read side relies on (a published entry is always
    /// already in its pending queue).
    pub(crate) fn commit(&self, batch: WriteBatch) -> Result<u64, CatalogError> {
        let mut resolved = Vec::new();
        for (name, ops) in batch.into_parts() {
            resolved.push((self.get(&name)?, ops));
        }
        let ticket = BatchTicket::new();
        let mut staged = Vec::with_capacity(resolved.len());
        for (column, ops) in resolved {
            let n = ops.len() as u64;
            let token = column.stage_ops(&ticket, ops);
            staged.push((column, token, n));
        }
        let epoch = self.clock.publish(&ticket, |e| {
            for (column, _, n) in &staged {
                let mut stamp = lock(column.stamp());
                stamp.epoch = e;
                stamp.accepted += 1;
                stamp.updates += *n;
            }
        });
        for (column, token, _) in &staged {
            column.settle(token, epoch);
        }
        // Release staging tokens (e.g. shard in-flight counts) before the
        // front render, so a concurrent re-shard barrier never waits on a
        // commit that is merely re-rendering.
        drop(staged);
        // Publish the read front *before* returning: the committing
        // thread's own batch is visible to its subsequent hot-path reads
        // (read-your-writes), and readers never render for themselves.
        self.refresh_front(false);
        Ok(epoch)
    }

    /// Commits one single-column batch and returns the column's new
    /// checkpoint (accepted-batch count) — the
    /// [`crate::ColumnStore::apply`] shape of [`Registry::commit`].
    pub(crate) fn apply(&self, name: &str, ops: &[UpdateOp]) -> Result<u64, CatalogError> {
        let column = self.get(name)?;
        let ticket = BatchTicket::new();
        let token = column.stage_ops(&ticket, ops.to_vec());
        let mut checkpoint = 0;
        let epoch = self.clock.publish(&ticket, |e| {
            let mut stamp = lock(column.stamp());
            stamp.epoch = e;
            stamp.accepted += 1;
            stamp.updates += ops.len() as u64;
            checkpoint = stamp.accepted;
        });
        column.settle(&token, epoch);
        drop(token);
        self.refresh_front(false);
        Ok(checkpoint)
    }

    /// One pinned render attempt: read the column's stamp under the
    /// publication gate — so a multi-column commit can never be
    /// observed halfway through stamping its columns — then render at
    /// exactly `epoch` with those as-of-`epoch` counters. With
    /// `gate_held` the caller already owns the gate (the starvation
    /// fallback of [`Registry::render_pinned`]; `Mutex` is not
    /// reentrant).
    fn attempt(&self, column: &T, epoch: u64, gate_held: bool) -> Result<Snapshot, u64> {
        let stamp = if gate_held {
            *lock(column.stamp())
        } else {
            self.clock.consistent(|| *lock(column.stamp()))
        };
        if stamp.epoch > epoch {
            return Err(stamp.epoch);
        }
        column.render_at(epoch, stamp)
    }

    /// Retries `attempt` at increasing pinned epochs until it sticks.
    ///
    /// `attempt(e, gate_held)` renders at *exactly* epoch `e`; it fails
    /// with the observed ahead epoch when some cell has already been
    /// drained past `e` by a concurrent reader or writer, or a column's
    /// stamp shows a publication newer than `e`. Every optimistic retry
    /// raises the pin to at least that epoch; each failed attempt is
    /// cheap (the ahead checks come first). After a bounded number of
    /// failures — sustained commit traffic outrunning the render — the
    /// fallback holds the publication gate, which freezes the published
    /// epoch: no new commit can overtake the render (drains of
    /// already-published batches only catch cells up to the frozen
    /// epoch, never past it), so readers always make progress.
    fn render_pinned<R>(&self, mut attempt: impl FnMut(u64, bool) -> Result<R, u64>) -> R {
        const OPTIMISTIC_RETRIES: usize = 8;
        let mut epoch = self.clock.published();
        for _ in 0..OPTIMISTIC_RETRIES {
            match attempt(epoch, false) {
                Ok(value) => return value,
                Err(ahead) => epoch = ahead.max(self.clock.published()),
            }
        }
        self.clock.consistent(|| {
            let epoch = self.clock.published();
            attempt(epoch, true).unwrap_or_else(|ahead| {
                unreachable!("publication {ahead} overtook a render under the gate")
            })
        })
    }

    /// An epoch-pinned snapshot of `name`.
    ///
    /// Hot path: served off the front generation — one wait-free load
    /// plus an `Arc` clone. Falls back to the slow pinned render only
    /// when the front does not cover the column (a registration racing
    /// ahead of its first front fold; counted in
    /// [`ReadStats::slow_renders`]).
    pub(crate) fn snapshot(&self, name: &str) -> Result<Snapshot, CatalogError> {
        let front = self.front.load();
        if let Some(snap) = front.snap(name) {
            self.counters.count_fast();
            return Ok(snap.clone());
        }
        let column = self.get(name)?;
        self.counters.count_slow();
        Ok(self.render_pinned(|epoch, gate_held| self.attempt(&column, epoch, gate_held)))
    }

    /// A [`SnapshotSet`]: every requested column rendered at one epoch.
    ///
    /// Hot path: a cache-wired subset of the front generation (wait-free,
    /// all columns trivially share the generation's epoch). Slow path as
    /// in [`Registry::snapshot`].
    pub(crate) fn snapshot_set(&self, names: &[&str]) -> Result<SnapshotSet, CatalogError> {
        let front = self.front.load();
        if let Some(set) = front.subset(names) {
            self.counters.count_fast();
            return Ok(set);
        }
        let columns: Vec<Arc<T>> = names
            .iter()
            .map(|name| self.get(name))
            .collect::<Result<_, _>>()?;
        self.counters.count_slow();
        Ok(self.render_pinned(|epoch, gate_held| {
            let mut snaps = BTreeMap::new();
            for column in &columns {
                snaps.insert(
                    column.name().to_string(),
                    self.attempt(column, epoch, gate_held)?,
                );
            }
            Ok(SnapshotSet::new(epoch, snaps))
        }))
    }

    /// Estimated `[a, b]` mass on `name`, answered from the front
    /// generation's predicate cache (wait-free; computes and memoizes on
    /// a cache miss). Slow pinned fallback only when the front does not
    /// cover the column.
    pub(crate) fn estimate_range(&self, name: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        self.estimate(name, CacheKind::Range(a, b))
    }

    /// Estimated frequency of `v` on `name` (see
    /// [`Registry::estimate_range`]).
    pub(crate) fn estimate_eq(&self, name: &str, v: i64) -> Result<f64, CatalogError> {
        self.estimate(name, CacheKind::Eq(v))
    }

    /// Total live mass on `name` (see [`Registry::estimate_range`]).
    pub(crate) fn total_count(&self, name: &str) -> Result<f64, CatalogError> {
        self.estimate(name, CacheKind::Total)
    }

    fn estimate(&self, name: &str, kind: CacheKind) -> Result<f64, CatalogError> {
        let front = self.front.load();
        if let Ok(value) = front.set().estimate(name, kind) {
            self.counters.count_fast();
            return Ok(value);
        }
        let column = self.get(name)?;
        self.counters.count_slow();
        let snap = self.render_pinned(|epoch, gate_held| self.attempt(&column, epoch, gate_held));
        Ok(kind.compute_on(&snap))
    }

    /// The store's read-path telemetry.
    pub(crate) fn read_stats(&self) -> ReadStats {
        self.counters.stats()
    }

    /// Seeds the store to a checkpoint in O(checkpoint size), not
    /// O(historical epochs): every image's counters are written into its
    /// column stamp verbatim, its synthesized ops applied straight into
    /// the cells, the epoch clock jumped to `epoch`, and the read front
    /// re-rendered once. Caller contract: the store is freshly built and
    /// exclusively owned (recovery), all named columns are registered,
    /// and no commit has been published yet.
    ///
    /// Observable state matches what replaying the history would leave:
    /// a column with accepted batches stamps `epoch` (its last
    /// publication is at or before the checkpoint, and the restored
    /// content is exactly as-of `epoch`); a never-touched column keeps
    /// stamp 0.
    pub(crate) fn restore_at(
        &self,
        epoch: u64,
        images: Vec<RestoreColumn>,
    ) -> Result<(), CatalogError> {
        for image in images {
            let column = self.get(&image.name)?;
            {
                let mut stamp = lock(column.stamp());
                *stamp = ColumnStamp {
                    epoch: if image.accepted > 0 { epoch } else { 0 },
                    accepted: image.accepted,
                    updates: image.updates,
                };
            }
            column.restore_content(epoch, image.ops);
        }
        self.clock.restore(epoch);
        self.refresh_front(false);
        Ok(())
    }

    /// Renders the whole store at the current published epoch and
    /// installs it as the new front generation if it is newer than (or,
    /// with `force`, at least as new as) the incumbent — `force` is for
    /// re-shards, which rebuild a column's cells *without* publishing an
    /// epoch. Called by every commit, registration and re-shard; never
    /// by readers. Rejected candidates (a concurrent writer installed a
    /// newer generation first) are simply dropped — the incumbent then
    /// already covers this writer's epoch.
    pub(crate) fn refresh_front(&self, force: bool) {
        let columns: Vec<Arc<T>> = read_lock(&self.columns).values().cloned().collect();
        let generation = self.render_pinned(|epoch, gate_held| {
            let mut snaps = BTreeMap::new();
            for column in &columns {
                snaps.insert(
                    column.name().to_string(),
                    self.attempt(column, epoch, gate_held)?,
                );
            }
            Ok(ReadGeneration::new(epoch, snaps, self.counters.clone()))
        });
        let installed = self
            .front
            .store_if(Arc::new(generation), |current, candidate| {
                candidate.epoch() > current.epoch()
                    || (candidate.epoch() == current.epoch()
                        && (force || candidate.len() > current.len()))
            });
        if installed {
            // Each install discards the previous generation's whole
            // predicate memo — the only invalidation rule there is.
            self.counters.count_invalidation();
        }
    }
}

/// One staged sub-batch: the ops plus the ticket that publishes them.
struct PendingEntry {
    ticket: Arc<BatchTicket>,
    ops: Vec<UpdateOp>,
}

/// A cell's histogram state, behind the cell's `RwLock`.
struct CellState {
    histogram: BoxedHistogram,
    /// Highest epoch whose entries have been applied to the histogram.
    applied: u64,
    /// Bumps on every drain that applied entries; keys span caches.
    version: u64,
    /// Cached span rendering, invalidated by every application.
    spans: Option<Vec<BucketSpan>>,
    /// Scratch buffer for span rendering (allocation reuse).
    scratch: Vec<BucketSpan>,
}

/// One unit of histogram state: a whole unsharded column, or one shard of
/// a sharded one. Writers stage into `pending` (brief mutex, never
/// blocked by in-progress histogram maintenance); drains move published
/// entries into the histogram in epoch order under the state lock.
pub(crate) struct Cell {
    pending: Mutex<Vec<PendingEntry>>,
    state: RwLock<CellState>,
}

impl Cell {
    pub(crate) fn new(histogram: BoxedHistogram) -> Self {
        Self::with_applied(histogram, 0)
    }

    /// A cell whose histogram already contains every batch up to
    /// `applied` — what a re-shard installs: the rebuilt per-shard
    /// histograms carry the composed data as of the barrier epoch, so a
    /// reader pinned earlier than the barrier is told to retry
    /// (`spans_at` fails with `applied`) instead of seeing the rebuilt
    /// state under an old pin.
    pub(crate) fn with_applied(histogram: BoxedHistogram, applied: u64) -> Self {
        Self {
            pending: Mutex::new(Vec::new()),
            state: RwLock::new(CellState {
                histogram,
                applied,
                version: 0,
                spans: None,
                scratch: Vec::new(),
            }),
        }
    }

    /// Phase 1 of a commit: queue `ops` under `ticket`, invisible to
    /// readers until the ticket is published. Lock order: `pending` only
    /// (never nested inside another cell's locks), so staging is
    /// deadlock-free and never waits on histogram application.
    pub(crate) fn stage(&self, ticket: Arc<BatchTicket>, ops: Vec<UpdateOp>) {
        if ops.is_empty() {
            return;
        }
        lock(&self.pending).push(PendingEntry { ticket, ops });
    }

    /// Whether any pending entry is published at or below `epoch`.
    fn has_ready(&self, epoch: u64) -> bool {
        lock(&self.pending)
            .iter()
            .any(|p| p.ticket.epoch() <= epoch)
    }

    /// Applies every published pending entry up to `epoch` (no-op when a
    /// concurrent drain already went further).
    pub(crate) fn drain_to(&self, epoch: u64) {
        if !self.has_ready(epoch) {
            return;
        }
        let mut state = write_lock(&self.state);
        let _ = self.drain_locked(&mut state, epoch);
    }

    /// Drains under an already-held state lock. Fails with the applied
    /// epoch when the histogram content is already *past* `epoch` (a
    /// pinned render must then retry at a later epoch).
    fn drain_locked(&self, state: &mut CellState, epoch: u64) -> Result<(), u64> {
        if state.applied > epoch {
            return Err(state.applied);
        }
        // Take every ready entry. Entries published ≤ epoch are all
        // staged already (staging strictly precedes publication), so this
        // cannot miss part of a batch.
        let mut ready: Vec<(u64, Vec<UpdateOp>)> = Vec::new();
        {
            let mut pending = lock(&self.pending);
            let mut i = 0;
            while i < pending.len() {
                let e = pending[i].ticket.epoch();
                if e <= epoch {
                    let entry = pending.swap_remove(i);
                    ready.push((e, entry.ops));
                } else {
                    i += 1;
                }
            }
        }
        if ready.is_empty() {
            return Ok(());
        }
        // Epoch order makes replay deterministic: locked and channel
        // ingestion produce bit-identical histograms for the same commit
        // sequence, whichever thread ends up draining.
        ready.sort_by_key(|&(e, _)| e);
        for (e, ops) in ready {
            state.histogram.apply_slice(&ops);
            state.applied = state.applied.max(e);
        }
        state.version += 1;
        state.spans = None;
        Ok(())
    }

    /// Applies `ops` directly, marking the content as-of `epoch` — the
    /// checkpoint-restore fast path ([`Registry::restore_at`]), which
    /// must not pay one publication per historical epoch. The cell must
    /// have no pending entries (fresh store, recovery owns it). An empty
    /// `ops` is a no-op: the histogram stays empty and `applied` stays
    /// put, exactly as if the column's history held only empty batches.
    pub(crate) fn restore(&self, epoch: u64, ops: &[UpdateOp]) {
        if ops.is_empty() {
            return;
        }
        let mut state = write_lock(&self.state);
        state.histogram.apply_slice(ops);
        state.applied = state.applied.max(epoch);
        state.version += 1;
        state.spans = None;
    }

    /// The cell's `(version, spans)` at *exactly* epoch `epoch`: drains
    /// published entries up to it, then renders (cached). Fails with the
    /// applied epoch when the content is already past `epoch`.
    pub(crate) fn spans_at(&self, epoch: u64) -> Result<(u64, Vec<BucketSpan>), u64> {
        {
            let state = read_lock(&self.state);
            if state.applied > epoch {
                return Err(state.applied);
            }
            if let Some(spans) = &state.spans {
                // Valid for `epoch` iff nothing published ≤ epoch is
                // still pending (content can only change via entries).
                if !self.has_ready(epoch) {
                    return Ok((state.version, spans.clone()));
                }
            }
        }
        let mut state = write_lock(&self.state);
        self.drain_locked(&mut state, epoch)?;
        if state.spans.is_none() {
            let CellState {
                histogram, scratch, ..
            } = &mut *state;
            histogram.spans_into(scratch);
            let spans = scratch.clone();
            state.spans = Some(spans);
        }
        Ok((
            state.version,
            state.spans.clone().expect("rendered just above"),
        ))
    }
}

/// A column's composed-snapshot cache: the last rendered snapshot, the
/// epoch it was pinned to, and the cell versions it was rendered from.
#[derive(Default)]
pub(crate) struct ComposeCache {
    epoch: u64,
    versions: Vec<u64>,
    snap: Option<Snapshot>,
}

/// Renders one column (its cells superimposed) at *exactly* `epoch`,
/// against the column's compose cache. Fails with the applied epoch when
/// a cell is already past `epoch` (retry via [`pinned`]).
///
/// Cache discipline: an exact epoch match is one `Arc` clone; matching
/// cell versions under a different epoch mean the spans are identical and
/// only the stamps moved (e.g. an empty batch, or commits to other
/// columns), so the cached rendering is re-stamped instead of rebuilt.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compose_at(
    cells: &[&Cell],
    epoch: u64,
    cache: &Mutex<ComposeCache>,
    column: &str,
    label: String,
    checkpoint: u64,
    updates: u64,
) -> Result<Snapshot, u64> {
    {
        let cached = lock(cache);
        if cached.epoch == epoch {
            if let Some(snap) = &cached.snap {
                return Ok(snap.clone());
            }
        }
    }
    let mut versions = Vec::with_capacity(cells.len());
    let mut parts = Vec::with_capacity(cells.len());
    for cell in cells {
        let (version, spans) = cell.spans_at(epoch)?;
        versions.push(version);
        parts.push(spans);
    }
    let mut cached = lock(cache);
    if let Some(snap) = &cached.snap {
        if cached.epoch == epoch {
            return Ok(snap.clone());
        }
        if cached.versions == versions {
            let snap = snap.restamped(epoch, checkpoint, updates);
            // Never move the cache backwards for an old pinned read.
            if epoch > cached.epoch {
                cached.epoch = epoch;
                cached.snap = Some(snap.clone());
            }
            return Ok(snap);
        }
    }
    // A single cell's spans pass through unchanged (bit-identical to the
    // unsharded render); several cells superimpose losslessly.
    let spans = if parts.len() == 1 {
        parts.pop().expect("one part")
    } else {
        superimpose(&parts)
    };
    let snap = Snapshot::from_parts(column.to_string(), label, epoch, checkpoint, updates, spans);
    if epoch > cached.epoch || cached.snap.is_none() {
        *cached = ComposeCache {
            epoch,
            versions,
            snap: Some(snap.clone()),
        };
    }
    Ok(snap)
}

/// Poison-tolerant mutex lock (shared across the serving layer).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Poison-tolerant read lock (shared across the serving layer).
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Poison-tolerant write lock (shared across the serving layer).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoSpec;
    use dh_core::MemoryBudget;

    #[test]
    fn write_batch_builder_groups_by_column() {
        let mut batch = WriteBatch::new();
        batch.insert("a", 1).insert("b", 2).delete("a", 3);
        batch.extend("c", (0..3).map(UpdateOp::Insert));
        assert_eq!(batch.columns().collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(
            batch.ops("a"),
            Some(&[UpdateOp::Insert(1), UpdateOp::Delete(3)][..])
        );
        assert_eq!(batch.len(), 6);
        assert!(!batch.is_empty());
        assert!(WriteBatch::new().is_empty());
        let single = WriteBatch::for_column("x", vec![UpdateOp::Insert(9)]);
        assert_eq!(single.ops("x").unwrap().len(), 1);
        assert_eq!(single.ops("y"), None);
    }

    #[test]
    fn staged_entries_stay_invisible_until_published() {
        let clock = EpochClock::default();
        let cell = Cell::new(AlgoSpec::Dc.build(MemoryBudget::from_kb(0.5), 0));
        let ticket = BatchTicket::new();
        cell.stage(ticket.clone(), (0..100).map(UpdateOp::Insert).collect());

        // Unpublished: a render at the current epoch sees nothing.
        let (_, spans) = cell.spans_at(clock.published()).unwrap();
        assert!(spans.is_empty());

        let epoch = clock.publish(&ticket, |_| {});
        assert_eq!(epoch, 1);
        let (_, spans) = cell.spans_at(epoch).unwrap();
        let total: f64 = spans.iter().map(|s| s.count).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pinned_render_refuses_future_and_past_epochs() {
        let clock = EpochClock::default();
        let cell = Cell::new(AlgoSpec::Dc.build(MemoryBudget::from_kb(0.5), 0));
        for round in 1..=3u64 {
            let ticket = BatchTicket::new();
            cell.stage(ticket.clone(), vec![UpdateOp::Insert(round as i64)]);
            clock.publish(&ticket, |_| {});
        }
        cell.drain_to(3);
        // Content is at epoch 3 now; a pin at 1 must fail with the
        // applied epoch so the caller can retry.
        assert_eq!(cell.spans_at(1), Err(3));
        let (_, spans) = cell.spans_at(3).unwrap();
        let total: f64 = spans.iter().map(|s| s.count).sum();
        assert!((total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn drain_applies_in_epoch_order_deterministically() {
        // Stage two published batches out of order and one unpublished
        // one; a single drain must apply exactly the published pair, in
        // epoch order, and leave the rest pending.
        let clock = EpochClock::default();
        let cell = Cell::new(AlgoSpec::Dc.build(MemoryBudget::from_kb(0.5), 0));
        let t1 = BatchTicket::new();
        let t2 = BatchTicket::new();
        let t3 = BatchTicket::new();
        cell.stage(t2.clone(), vec![UpdateOp::Insert(2)]);
        cell.stage(t1.clone(), vec![UpdateOp::Insert(1)]);
        cell.stage(t3.clone(), vec![UpdateOp::Insert(3)]);
        clock.publish(&t1, |_| {});
        clock.publish(&t2, |_| {});
        let (_, spans) = cell.spans_at(clock.published()).unwrap();
        let total: f64 = spans.iter().map(|s| s.count).sum();
        assert!((total - 2.0).abs() < 1e-9, "unpublished t3 leaked: {total}");
        clock.publish(&t3, |_| {});
        let (_, spans) = cell.spans_at(3).unwrap();
        let total: f64 = spans.iter().map(|s| s.count).sum();
        assert!((total - 3.0).abs() < 1e-9);
    }
}
