//! [`StaticRebuild`]: gives scan-and-rebuild static histograms the same
//! maintained-in-place [`DynHistogram`] face as the dynamic algorithms.
//!
//! The paper's static histograms are built from a complete scan and go
//! stale as the data set evolves; their "maintenance" protocol *is* the
//! rebuild. This adapter makes that protocol explicit behind the
//! object-safe API: updates maintain an exact [`DataDistribution`]
//! (cheap — a counter per distinct value), and the configured static
//! histogram is rebuilt lazily on the first read after a change, then
//! cached until the next update.
//!
//! This is what lets `AlgoSpec::build` return one `BoxedHistogram`
//! currency for all ten algorithms, and what a [`crate::Catalog`] column
//! uses when it is configured with a static algorithm.

use dh_core::{BucketSpan, DataDistribution, DynHistogram, ReadHistogram};
use dh_static::{
    CompressedHistogram, EquiDepthHistogram, EquiWidthHistogram, SadoHistogram, SsbmHistogram,
    VOptimalHistogram,
};
use std::sync::Mutex;

/// Which static builder a [`StaticRebuild`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum StaticKind {
    EquiWidth,
    EquiDepth,
    Compressed,
    VOptimal,
    Sado,
    Ssbm,
}

impl StaticKind {
    fn build(self, truth: &DataDistribution, buckets: usize) -> Vec<BucketSpan> {
        match self {
            StaticKind::EquiWidth => EquiWidthHistogram::build(truth, buckets).spans(),
            StaticKind::EquiDepth => EquiDepthHistogram::build(truth, buckets).spans(),
            StaticKind::Compressed => CompressedHistogram::build(truth, buckets).spans(),
            StaticKind::VOptimal => VOptimalHistogram::build(truth, buckets).spans(),
            StaticKind::Sado => SadoHistogram::build(truth, buckets).spans(),
            StaticKind::Ssbm => SsbmHistogram::build(truth, buckets).spans(),
        }
    }
}

/// A static histogram kept fresh by rebuild-on-read.
///
/// Reads between updates hit a cached span vector; every update
/// invalidates the cache, so read cost is one rebuild per *batch* of
/// updates rather than per update. Constructed through
/// [`crate::AlgoSpec::build`] (or `build_seeded`) with one of the static
/// variants.
#[derive(Debug)]
pub struct StaticRebuild {
    kind: StaticKind,
    buckets: usize,
    truth: DataDistribution,
    /// Spans of the last build, `None` after an update. A `Mutex` (not
    /// `RefCell`) so concurrent readers — e.g. catalog snapshots from
    /// several threads — stay safe; writers invalidate lock-free through
    /// `get_mut`.
    cache: Mutex<Option<Vec<BucketSpan>>>,
}

impl StaticRebuild {
    pub(crate) fn new(kind: StaticKind, buckets: usize) -> Self {
        Self {
            kind,
            buckets,
            truth: DataDistribution::new(),
            cache: Mutex::new(None),
        }
    }

    /// Starts from an existing distribution and builds eagerly, so
    /// construction-time measurements see the real build cost.
    pub(crate) fn with_distribution(
        kind: StaticKind,
        buckets: usize,
        truth: DataDistribution,
    ) -> Self {
        let spans = kind.build(&truth, buckets);
        Self {
            kind,
            buckets,
            truth,
            cache: Mutex::new(Some(spans)),
        }
    }

    /// The exact distribution the next rebuild will consume.
    pub fn distribution(&self) -> &DataDistribution {
        &self.truth
    }

    /// The configured bucket budget.
    pub fn bucket_budget(&self) -> usize {
        self.buckets
    }

    /// Runs `f` over the (rebuilt-if-stale) cached spans.
    fn with_spans<R>(&self, f: impl FnOnce(&[BucketSpan]) -> R) -> R {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let spans = cache.get_or_insert_with(|| self.kind.build(&self.truth, self.buckets));
        f(spans)
    }
}

impl ReadHistogram for StaticRebuild {
    fn spans(&self) -> Vec<BucketSpan> {
        self.with_spans(|s| s.to_vec())
    }

    fn for_each_span(&self, f: &mut dyn FnMut(&BucketSpan)) {
        self.with_spans(|spans| {
            for s in spans {
                f(s);
            }
        })
    }

    fn total_count(&self) -> f64 {
        self.truth.total() as f64
    }
}

impl DynHistogram for StaticRebuild {
    fn insert(&mut self, v: i64) {
        self.truth.insert(v);
        *self.cache.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
    }

    fn delete(&mut self, v: i64) {
        if self.truth.delete(v) {
            *self.cache.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }

    fn as_read(&self) -> &dyn ReadHistogram {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_tracks_updates() {
        let mut h = StaticRebuild::new(StaticKind::EquiDepth, 8);
        for v in 0..100i64 {
            h.insert(v % 25);
        }
        assert_eq!(h.total_count(), 100.0);
        assert!((h.estimate_range(0, 24) - 100.0).abs() < 1e-9);
        // Deletes invalidate the cache too.
        let before = h.estimate_eq(3);
        for _ in 0..4 {
            h.delete(3);
        }
        assert!(h.estimate_eq(3) < before);
        // Deleting an absent value is a no-op.
        h.delete(999);
        assert_eq!(h.total_count(), 96.0);
    }

    #[test]
    fn cache_survives_reads_and_matches_direct_build() {
        let mut h = StaticRebuild::new(StaticKind::VOptimal, 6);
        for v in [1, 1, 1, 5, 5, 9, 9, 9, 9, 20] {
            h.insert(v);
        }
        let direct = VOptimalHistogram::build(h.distribution(), 6);
        assert_eq!(h.spans(), direct.spans());
        assert_eq!(h.spans(), h.spans());
        assert_eq!(h.bucket_budget(), 6);
    }

    #[test]
    fn allocation_free_path_agrees() {
        let mut h = StaticRebuild::new(StaticKind::Ssbm, 4);
        for v in 0..200i64 {
            h.insert((v * 7) % 60);
        }
        let mut collected = Vec::new();
        h.for_each_span(&mut |s| collected.push(*s));
        assert_eq!(collected, h.spans());
        assert_eq!(h.num_buckets(), collected.len());
    }
}
