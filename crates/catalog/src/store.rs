//! [`ColumnStore`]: the one object-safe serving API every catalog
//! implements.
//!
//! The paper's deployment — an optimizer estimating multi-predicate
//! queries while the histograms underneath are maintained in place —
//! does not care *how* a column is stored: behind one lock
//! ([`Catalog`](crate::Catalog)), across sharded locks, or behind
//! per-shard ingestion workers ([`ShardedCatalog`](crate::ShardedCatalog)).
//! This trait is that indifference made explicit: estimation code,
//! benchmarks and the `repro serve` replay are written once against
//! `&dyn ColumnStore` and run unchanged over every design.
//!
//! Reads come in two consistency grades:
//!
//! * [`ColumnStore::snapshot`] — one column, pinned to a published epoch
//!   (never a torn [`WriteBatch`], even across that column's shards);
//! * [`ColumnStore::snapshot_set`] — several columns pinned to *one*
//!   epoch, the view a join or chain estimate should read from.
//!
//! ```
//! use dh_catalog::{AlgoSpec, Catalog, ColumnConfig, ColumnStore, WriteBatch};
//! use dh_core::{MemoryBudget, ReadHistogram, UpdateOp};
//!
//! let store: Box<dyn ColumnStore> = Box::new(Catalog::new());
//! let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0));
//! store.register("r.key", config).unwrap();
//! store.register("s.key", config).unwrap();
//!
//! let mut batch = WriteBatch::new();
//! batch.extend("r.key", (0..500).map(|i| UpdateOp::Insert(i % 100)));
//! batch.extend("s.key", (0..500).map(|i| UpdateOp::Insert(i % 50)));
//! store.commit(batch).unwrap();
//!
//! let set = store.snapshot_set(&["r.key", "s.key"]).unwrap();
//! assert_eq!(set.epoch(), 1);
//! assert_eq!(set.get("r.key").unwrap().total_count(), 500.0);
//! ```

use crate::catalog::{CatalogError, Snapshot};
use crate::read::{CacheKind, FrontCache, ReadStats};
use crate::sharded::{AutoscalePolicy, ColumnShape, RebuildPlan, ReshardPolicy, ShardPlan};
use crate::spec::AlgoSpec;
use crate::txn::WriteBatch;
use dh_core::{MemoryBudget, ReadHistogram, UpdateOp};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Everything a store needs to know to register one column: the
/// algorithm, its memory budget, a seed for sampling algorithms, and —
/// for stores that partition — an optional [`ShardPlan`] plus an
/// optional [`ReshardPolicy`] arming dynamic re-sharding.
///
/// The same config registers against any [`ColumnStore`]: a sharded
/// store requires the plan, an unsharded one serves the whole domain
/// from a single histogram and ignores it (the plan describes physical
/// partitioning, not semantics), so generic callers need no per-store
/// branching. The re-shard policy is likewise ignored by stores that do
/// not shard.
#[derive(Debug, Clone, Copy)]
pub struct ColumnConfig {
    /// Histogram algorithm backing the column.
    pub spec: AlgoSpec,
    /// Memory budget for the column (a sharded store divides it across
    /// shards, remainder bytes going to the first shards, so every store
    /// spends the same total bytes).
    pub memory: MemoryBudget,
    /// Seed feeding sampling algorithms (see [`AlgoSpec::build`]);
    /// deterministic algorithms ignore it. Defaults to 0.
    pub seed: u64,
    /// How to partition the column's value domain, for stores that shard.
    pub plan: Option<ShardPlan>,
    /// When to move the shard borders automatically, for stores that
    /// shard (`None` keeps the borders static unless
    /// [`ColumnStore::reshard`] is called explicitly).
    pub reshard: Option<ReshardPolicy>,
    /// When to *rebuild the column's shape* automatically — scale the
    /// shard count with the routed throughput, rebalance skewed borders
    /// — for stores that shard (the elastic generalization of `reshard`;
    /// both may be armed, the re-shard policy is judged first).
    pub autoscale: Option<AutoscalePolicy>,
}

impl ColumnConfig {
    /// A config with the default seed, no shard plan, and no automatic
    /// policies.
    pub fn new(spec: AlgoSpec, memory: MemoryBudget) -> Self {
        Self {
            spec,
            memory,
            seed: 0,
            plan: None,
            reshard: None,
            autoscale: None,
        }
    }

    /// The same config with `seed`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same config with a shard plan.
    pub fn with_plan(mut self, plan: ShardPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The same config with automatic re-sharding armed by `policy`.
    pub fn with_reshard(mut self, policy: ReshardPolicy) -> Self {
        self.reshard = Some(policy);
        self
    }

    /// The same config with elastic autoscaling armed by `policy`.
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }
}

/// Bit-wise equality, so configs are comparable (and [`Eq`]) despite
/// the `f64` inside [`ReshardPolicy`]: two configs are equal iff they
/// serialize identically. Crash recovery leans on this — replaying a
/// register record asserts the on-disk config matches the live one, and
/// that check must be deterministic for every float value (NaN
/// thresholds compare equal to themselves, `-0.0 != 0.0`).
impl PartialEq for ColumnConfig {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.memory == other.memory
            && self.seed == other.seed
            && self.plan == other.plan
            && self.reshard == other.reshard
            && self.autoscale == other.autoscale
    }
}

impl Eq for ColumnConfig {}

/// The serving API: register columns, commit epoch-stamped writes, read
/// consistent snapshots, estimate.
///
/// Object-safe by design — `Box<dyn ColumnStore>` / `&dyn ColumnStore`
/// is how `dh_bench::serve`, the `repro serve` replay and the generic
/// test suites drive the single-lock, sharded-lock and channel designs
/// through literally the same code path.
///
/// # Consistency contract
///
/// Every implementation commits through a two-phase, epoch-stamped
/// protocol (stage per cell, then one atomic epoch publication per
/// store; see [`crate::txn`]): no reader ever observes a partially
/// applied [`WriteBatch`], whether the batch spans shards of one column
/// or several columns. [`ColumnStore::snapshot_set`] additionally pins
/// *all* requested columns to one epoch.
pub trait ColumnStore: Send + Sync {
    /// Registers `column` with a fresh histogram built per `config`.
    ///
    /// # Errors
    /// [`CatalogError::DuplicateColumn`] if the name is taken;
    /// [`CatalogError::InvalidShardPlan`] if this store shards and
    /// `config.plan` is absent.
    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), CatalogError>;

    /// The registered column names, sorted.
    fn columns(&self) -> Vec<String>;

    /// Whether `column` is registered.
    fn contains(&self, column: &str) -> bool;

    /// The algorithm a column was registered with.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError>;

    /// Commits `batch` atomically across every column (and shard) it
    /// touches, returning the published epoch. Readers observe all of it
    /// or none of it.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if any named column is absent (in
    /// which case nothing is staged).
    fn commit(&self, batch: WriteBatch) -> Result<u64, CatalogError>;

    /// Commits one batch of updates to a single `column` and returns the
    /// column's new checkpoint count (strictly monotone per column; an
    /// empty batch still advances it, marking an explicit sync point).
    /// Equivalent to [`ColumnStore::commit`] of a single-column
    /// [`WriteBatch`].
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn apply(&self, column: &str, batch: &[UpdateOp]) -> Result<u64, CatalogError>;

    /// Blocks until every batch accepted for `column` before this call is
    /// applied to its histograms. A no-op for synchronous stores; the
    /// read barrier for channel-ingesting ones.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn flush(&self, column: &str) -> Result<(), CatalogError>;

    /// An immutable snapshot of `column`, pinned to a published epoch:
    /// it contains exactly the committed batches up to that epoch —
    /// whole batches only, across every shard of the column.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError>;

    /// A consistent multi-column view: every requested column pinned to
    /// *one* published epoch, so cross-column estimates (joins, chains)
    /// never mix states. Duplicate names collapse to one entry.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if any named column is absent.
    fn snapshot_set(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError>;

    /// A consistent multi-column view pinned to a specific *past*
    /// published epoch — time travel.
    ///
    /// Only stores that retain past generations can honour arbitrary
    /// epochs: the `DurableStore` decorator keeps an in-memory ring of
    /// the last K published generations and serves any epoch still in
    /// it. The default implementation (all in-memory stores) retains
    /// nothing beyond the current generation: it succeeds iff `epoch`
    /// is the store's current epoch.
    ///
    /// # Errors
    /// [`CatalogError::EpochEvicted`] if `epoch` is not retained (too
    /// old, GC'd, or never published);
    /// [`CatalogError::UnknownColumn`] if any named column is absent.
    fn snapshot_set_at(&self, columns: &[&str], epoch: u64) -> Result<SnapshotSet, CatalogError> {
        let set = self.snapshot_set(columns)?;
        if set.epoch() == epoch {
            Ok(set)
        } else {
            Err(CatalogError::EpochEvicted(epoch))
        }
    }

    /// The number of batches accepted for `column` so far.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn checkpoint(&self, column: &str) -> Result<u64, CatalogError>;

    /// The store's highest published epoch (0 before any commit; one
    /// counter per store, shared by all columns).
    fn epoch(&self) -> u64;

    /// Rebuilds `column`'s shard borders from its current data
    /// distribution, behind the store's epoch barrier (see
    /// [`ShardedCatalog`](crate::ShardedCatalog)). Returns whether the
    /// borders actually moved. Stores that do not partition have no
    /// borders to move and return `Ok(false)`.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn reshard(&self, column: &str) -> Result<bool, CatalogError> {
        self.spec(column)?;
        Ok(false)
    }

    /// Rebuilds `column`'s live shape per `plan` — shard count,
    /// algorithm, memory budget, ingestion mode — behind the store's
    /// epoch barrier with exact mass conservation (see
    /// [`ShardedCatalog`](crate::ShardedCatalog)). Returns whether the
    /// column's generation was actually swapped. Stores that do not
    /// partition have no shape to change and return `Ok(false)`;
    /// [`ColumnStore::reshard`] is the all-`None` special case.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent;
    /// [`CatalogError::InvalidShardPlan`] on a degenerate plan
    /// (`shards == Some(0)`).
    fn rebuild(&self, column: &str, plan: RebuildPlan) -> Result<bool, CatalogError> {
        if plan.shards == Some(0) {
            return Err(CatalogError::InvalidShardPlan(
                "need at least one shard (shards == 0)".into(),
            ));
        }
        self.spec(column)?;
        Ok(false)
    }

    /// The column's *live* shape (shard count, algorithm, memory,
    /// ingestion mode) after any rebuilds — `None` for stores that do
    /// not track one (unsharded stores; [`ColumnStore::spec`] always
    /// reports the frozen *registration* algorithm, by contrast).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn column_shape(&self, column: &str) -> Result<Option<ColumnShape>, CatalogError> {
        self.spec(column)?;
        Ok(None)
    }

    /// Ops routed into each shard of `column` under its current shard
    /// map (one counter per shard; reset whenever the borders move) —
    /// the skew signal a [`ReshardPolicy`] judges. Stores that do not
    /// partition return an empty vector.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn shard_load(&self, column: &str) -> Result<Vec<u64>, CatalogError> {
        self.spec(column)?;
        Ok(Vec::new())
    }

    /// How many ops on `column` carried a value outside its registered
    /// shard domain and were clamped into an edge shard. Routing is
    /// total (clamped ops are ingested, never dropped), but the clamp
    /// widens the edge shards' effective ranges — this counter makes
    /// that visible instead of silent. Stores that do not partition
    /// have no domain to clamp against and return 0.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn clamped_ops(&self, column: &str) -> Result<u64, CatalogError> {
        self.spec(column)?;
        Ok(0)
    }

    /// Number of registered columns.
    fn len(&self) -> usize {
        self.columns().len()
    }

    /// Whether no columns are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated number of values in `[a, b]` on `column`.
    ///
    /// On both built-in stores this is the wait-free hot path: it reads
    /// the current front generation (one atomic pointer chase, no lock,
    /// no retry) and memoizes the answer in that generation's predicate
    /// cache — see `docs/READ_PATH.md`.
    ///
    /// **Single-call consistency only**: every call pins its own fresh
    /// snapshot, so two convenience estimates in one expression may
    /// straddle an epoch published between them. Combining estimates
    /// (ratios, joins, multi-column predicates) should read from one
    /// [`ColumnStore::snapshot_set`] via [`SnapshotSet::estimate_range`]
    /// and friends, which pin every read to a single epoch.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        Ok(self.snapshot(column)?.estimate_range(a, b))
    }

    /// Estimated number of values equal to `v` on `column`.
    ///
    /// **Single-call consistency only** — see
    /// [`ColumnStore::estimate_range`]; use [`SnapshotSet::estimate_eq`]
    /// for multi-read consistency.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        Ok(self.snapshot(column)?.estimate_eq(v))
    }

    /// Total live mass on `column`.
    ///
    /// **Single-call consistency only** — see
    /// [`ColumnStore::estimate_range`]; use [`SnapshotSet::total_count`]
    /// for multi-read consistency.
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if absent.
    fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        Ok(self.snapshot(column)?.total_count())
    }

    /// Read-path telemetry: how many reads were served wait-free off the
    /// front generation vs. through the slow pinned-render path, and the
    /// predicate front cache's hit / miss / invalidation counters. The
    /// contract behind these numbers is `docs/READ_PATH.md`; under
    /// steady serving of the current epoch, `slow_renders` stays at 0.
    /// Stores without a wait-free front report all-zero stats.
    fn read_stats(&self) -> ReadStats {
        ReadStats::default()
    }
}

/// A consistent multi-column view: one [`Snapshot`] per requested
/// column, all pinned to the same store epoch.
///
/// This is what cross-column estimation should read from — a join or
/// chain estimate over a `SnapshotSet` can never mix a column state from
/// before a [`WriteBatch`] with another from after it.
///
/// The pinned epoch is usually the one current when
/// [`ColumnStore::snapshot_set`] ran, but not necessarily: retaining
/// stores also serve sets pinned to *past* epochs through
/// [`ColumnStore::snapshot_set_at`] (failing with
/// [`CatalogError::EpochEvicted`] once retention has let the epoch go).
/// A set, however obtained, is immutable — it keeps serving its epoch
/// no matter what commits after it.
#[derive(Clone)]
pub struct SnapshotSet {
    epoch: u64,
    snaps: BTreeMap<String, Snapshot>,
    /// The owning generation's predicate front cache, when this set was
    /// served off the wait-free front (see `docs/READ_PATH.md`). Slow
    /// pinned renders carry no cache and compute every estimate.
    cache: Option<Arc<FrontCache>>,
}

impl SnapshotSet {
    pub(crate) fn new(epoch: u64, snaps: BTreeMap<String, Snapshot>) -> Self {
        Self {
            epoch,
            snaps,
            cache: None,
        }
    }

    /// A set wired to its generation's front cache: estimate probes
    /// memoize through it (and are answered from it).
    pub(crate) fn with_cache(
        epoch: u64,
        snaps: BTreeMap<String, Snapshot>,
        cache: Arc<FrontCache>,
    ) -> Self {
        Self {
            epoch,
            snaps,
            cache: Some(cache),
        }
    }

    /// The published epoch every snapshot in the set is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot of `column`, if it was part of the request.
    pub fn get(&self, column: &str) -> Option<&Snapshot> {
        self.snaps.get(column)
    }

    /// The columns in the set, sorted.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.snaps.keys().map(String::as_str)
    }

    /// Iterates `(column, snapshot)` pairs, sorted by column.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Snapshot)> {
        self.snaps.iter().map(|(c, s)| (c.as_str(), s))
    }

    /// Number of columns in the set.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether the set holds no columns.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Estimated number of values in `[a, b]` on `column`, read at the
    /// set's pinned epoch. Unlike the [`ColumnStore`] convenience
    /// methods, any number of reads off one set are mutually consistent
    /// — they can never straddle an epoch. Sets served off the wait-free
    /// front memoize the answer in their generation's predicate cache
    /// (bit-identical to the uncached computation; the cache stores
    /// exactly the `f64` the first computation produced).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if `column` was not part of the
    /// request that built this set.
    pub fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        self.estimate(column, CacheKind::Range(a, b))
    }

    /// Estimated number of values equal to `v` on `column`, read at the
    /// set's pinned epoch (see [`SnapshotSet::estimate_range`]).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if `column` was not part of the
    /// request that built this set.
    pub fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        self.estimate(column, CacheKind::Eq(v))
    }

    /// Total live mass on `column` as of the set's pinned epoch (see
    /// [`SnapshotSet::estimate_range`]).
    ///
    /// # Errors
    /// [`CatalogError::UnknownColumn`] if `column` was not part of the
    /// request that built this set.
    pub fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        self.estimate(column, CacheKind::Total)
    }

    pub(crate) fn estimate(&self, column: &str, kind: CacheKind) -> Result<f64, CatalogError> {
        let snap = self.pinned(column)?;
        if let Some(cache) = &self.cache {
            if let Some(value) = cache.probe(column, kind, snap) {
                return Ok(value);
            }
        }
        Ok(kind.compute_on(snap))
    }

    fn pinned(&self, column: &str) -> Result<&Snapshot, CatalogError> {
        self.snaps
            .get(column)
            .ok_or_else(|| CatalogError::UnknownColumn(column.into()))
    }
}

impl fmt::Debug for SnapshotSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotSet")
            .field("epoch", &self.epoch)
            .field("columns", &self.snaps.keys().collect::<Vec<_>>())
            .finish()
    }
}
