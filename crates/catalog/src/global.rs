//! Assembly seams for multi-site composition.
//!
//! [`Snapshot`] and [`SnapshotSet`] are deliberately sealed: inside one
//! process only the commit pipeline may mint them, so a snapshot always
//! testifies to a state the store actually published. A *global* catalog
//! breaks that assumption — `dh_site`'s `GlobalCatalog` composes spans
//! pulled from other processes (over the wire or from peer stores in
//! this one) into snapshots no local commit ever rendered.
//!
//! This module is the single, documented gate for that: constructors
//! that assemble the read-side currency from raw parts. The contract is
//! the composition's to uphold — `epoch` must be a monotone clock of the
//! composer (`dh_site` uses the version-vector sum, `docs/GLOBAL.md`),
//! `spans` must be sorted and disjoint (superposition output qualifies),
//! and `checkpoint`/`updates` are whatever bookkeeping the composer
//! sums. Everything downstream (CDF precompute, estimator reads,
//! `SnapshotSet` subsetting) works unchanged on the result.

use crate::catalog::Snapshot;
use crate::store::SnapshotSet;
use dh_core::BucketSpan;
use std::collections::BTreeMap;

/// Assembles a [`Snapshot`] from composed spans.
///
/// `label` is the algorithm legend reported by
/// [`Snapshot::label`] — compositions conventionally tag the
/// strategy that produced them (e.g. `"global(histogram + union)"`).
pub fn snapshot_from_spans(
    column: impl Into<String>,
    label: impl Into<String>,
    epoch: u64,
    checkpoint: u64,
    updates: u64,
    spans: Vec<BucketSpan>,
) -> Snapshot {
    Snapshot::from_parts(
        column.into(),
        label.into(),
        epoch,
        checkpoint,
        updates,
        spans,
    )
}

/// Assembles a whole-store [`SnapshotSet`] pinned at `epoch` from
/// already-composed per-column snapshots.
pub fn set_from_snapshots(epoch: u64, snaps: BTreeMap<String, Snapshot>) -> SnapshotSet {
    SnapshotSet::new(epoch, snaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ReadHistogram;

    #[test]
    fn assembled_snapshot_serves_estimates() {
        let spans = vec![
            BucketSpan::new(0.0, 10.0, 100.0),
            BucketSpan::new(10.0, 20.0, 50.0),
        ];
        let snap = snapshot_from_spans("col", "global(test)", 7, 3, 150, spans);
        assert_eq!(snap.column(), "col");
        assert_eq!(snap.label(), "global(test)");
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.checkpoint(), 3);
        assert_eq!(snap.updates(), 150);
        assert!((snap.total_count() - 150.0).abs() < 1e-9);
        assert!((snap.estimate_range(0, 9) - 100.0).abs() < 1e-6);

        let mut snaps = BTreeMap::new();
        snaps.insert("col".to_string(), snap);
        let set = set_from_snapshots(7, snaps);
        assert_eq!(set.epoch(), 7);
        assert!((set.total_count("col").unwrap() - 150.0).abs() < 1e-9);
    }
}
