//! [`DurableStore`]: crash durability and time travel as a decorator
//! over any [`ColumnStore`].
//!
//! The epoch-stamped commit pipeline already produces a totally-ordered
//! sequence of atomic state transitions; this module writes that
//! sequence to an append-only **epoch changelog** (`dh_wal`), snapshots
//! the whole store into **checkpoint** files on a configurable epoch
//! cadence, rebuilds a store from disk on [`DurableStore::open`], and
//! keeps an in-memory ring of the last K published generations so
//! [`ColumnStore::snapshot_set_at`] can pin *past* epochs. The full
//! contract (record format, fsync trade-offs, the recovery state
//! machine, time-travel GC) is `docs/DURABILITY.md`.
//!
//! # What the decorator changes
//!
//! Reads are untouched — they go straight to the inner store's
//! wait-free front. Mutations serialize through one log lock held
//! across `inner publish + changelog append`, which is what makes the
//! on-disk record order *be* the epoch order (no sequence numbers to
//! reconcile at recovery). Two deliberate consequences:
//!
//! * concurrent writers behind one `DurableStore` no longer overlap
//!   their publishes (the durability cost the `--durable` bench arm
//!   measures);
//! * automatic re-sharding and autoscaling move from the inner store to
//!   the decorator: [`DurableStore::open`] strips any [`ReshardPolicy`]
//!   or [`AutoscalePolicy`] out of the configs it registers inside and
//!   evaluates the same gates itself after each commit, so every border
//!   move and shape change is logged with its exact barrier epoch and
//!   replays deterministically.
//!
//! # Fidelity of recovery
//!
//! Replaying the changelog re-runs the exact live code paths
//! (deterministic, seeded), so a log-only recovery reproduces every
//! estimate **bit-identically**. Restoring *through a checkpoint* is
//! exact in epoch and in the per-column accepted/update counters (the
//! checkpoint carries the historical values and recovery seeds them
//! directly — O(checkpoint size), not one replayed publication per
//! historical epoch), and exact in total mass; only the bucket *layout*
//! is rebuilt from the composed spans (the same approximation a live
//! re-shard applies to moved shards).
//!
//! # Fail-stop on append failure
//!
//! A commit is acknowledged only after its changelog record is written.
//! If the append itself fails (ENOSPC, a dying disk), the inner store
//! has already published the epoch — letting any *later* commit append
//! would write a record whose epoch skips the lost one, an epoch gap
//! that replay correctly refuses as corruption. So a failed append
//! **poisons** the store: every subsequent mutation (and explicit
//! checkpoint) is rejected with [`CatalogError::Durability`], reads
//! keep serving, and reopening the directory recovers to the last
//! durable state.

use crate::catalog::{CatalogError, Snapshot};
use crate::read::ReadStats;
use crate::sharded::{
    spread_inserts, AutoscalePolicy, ColumnShape, RebuildPlan, ReshardPolicy, ShardPlan,
    ShardedCatalog,
};
use crate::spec::AlgoSpec;
use crate::store::{ColumnConfig, ColumnStore, SnapshotSet};
use crate::txn::{DirectRestore, RestoreColumn, WriteBatch};
use crate::Catalog;
use dh_core::{BucketSpan, MemoryBudget, ReadHistogram, UpdateOp};
use dh_wal::segment::{
    checkpoint_epochs, latest_checkpoint, write_checkpoint, Checkpoint, CheckpointColumn, Wal,
};
use dh_wal::{
    AutoscaleRecord, ConfigRecord, PlanRecord, ReshardPolicyRecord, ShapeRecord, SyncPolicy,
    WalError, WalRecord,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::sharded::IngestMode;

/// Which inner store design a durable directory belongs to. Stamped
/// into every segment and checkpoint header so a directory can never be
/// silently replayed into the wrong design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// [`Catalog`] — one cell per column behind a single lock.
    Single,
    /// [`ShardedCatalog`] — value-partitioned shards; whether a column
    /// ingests locked or through channel workers is carried per column
    /// by its [`ShardPlan`], so both sharded designs share this kind.
    Sharded,
}

impl StoreKind {
    /// The header tag byte this kind stamps into segments and
    /// checkpoints — what a follower must hand to `dh_wal`'s tail
    /// reader so it refuses a directory of the wrong design.
    pub fn tag(self) -> u8 {
        match self {
            StoreKind::Single => 1,
            StoreKind::Sharded => 2,
        }
    }
}

/// Tuning for a [`DurableStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// When appended records are fsync'd (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Write a checkpoint (and rotate + truncate the changelog) every
    /// this many published epochs; `None` never checkpoints
    /// automatically ([`DurableStore::checkpoint_now`] still works).
    pub checkpoint_every: Option<u64>,
    /// How many published generations the time-travel ring retains
    /// (the current one included). `0` disables time travel entirely —
    /// [`ColumnStore::snapshot_set_at`] then only serves the current
    /// epoch.
    pub retain_generations: usize,
}

impl Default for DurableOptions {
    /// Batched fsync, a checkpoint every 256 epochs, 8 retained
    /// generations.
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::default(),
            checkpoint_every: Some(256),
            retain_generations: 8,
        }
    }
}

/// A typed failure from [`DurableStore::open`] and the other explicitly
/// durable entry points. (Mutations arriving through the [`ColumnStore`]
/// trait must fit its [`CatalogError`]; they render a [`WalError`] into
/// [`CatalogError::Durability`] instead.)
#[derive(Debug)]
pub enum DurableError {
    /// The changelog or a checkpoint file failed (I/O, corruption, a
    /// store-kind mismatch).
    Wal(WalError),
    /// The inner store rejected an operation.
    Store(CatalogError),
    /// The log and checkpoint are individually valid but do not form a
    /// replayable history (an epoch gap, a register record contradicting
    /// the live config, ...). Data after the inconsistency cannot be
    /// trusted, so recovery stops instead of guessing.
    Recovery(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "{e}"),
            DurableError::Store(e) => write!(f, "{e}"),
            DurableError::Recovery(why) => write!(f, "unreplayable history: {why}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Wal(e) => Some(e),
            DurableError::Store(e) => Some(e),
            DurableError::Recovery(_) => None,
        }
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<CatalogError> for DurableError {
    fn from(e: CatalogError) -> Self {
        DurableError::Store(e)
    }
}

fn durability(e: WalError) -> CatalogError {
    CatalogError::Durability(e.to_string())
}

/// Everything guarded by the log lock: the changelog handle, the source
/// of truth for configs (with their re-shard policies, which the inner
/// store never sees), and the time-travel ring.
struct DurableState {
    wal: Wal,
    configs: BTreeMap<String, ColumnConfig>,
    /// The last `retain_generations` published generations, epochs
    /// strictly ascending; each entry is a full-store [`SnapshotSet`].
    ring: VecDeque<SnapshotSet>,
    /// Epoch of the last on-disk checkpoint (0 = none yet).
    last_checkpoint: u64,
    /// Per column: the epoch of the last re-shard/rebuild attempt the
    /// policy gates should measure their intervals from.
    last_reshard_attempt: BTreeMap<String, u64>,
    /// Per column: the lifetime-monotone ordinal of the last logged
    /// shape change ([`WalRecord::Rebuild::seq`]). Checkpoints persist
    /// it (inside [`ConfigRecord::rebuild_seq`]) so a restarted leader
    /// never reissues an ordinal a follower has already applied.
    rebuild_seqs: BTreeMap<String, u64>,
    /// Per column: `(judged_epoch, judged_load)` — the autoscale rate
    /// window floor, mirroring the inner store's own bookkeeping. Load
    /// counters are cumulative per generation, so the rate window must
    /// subtract the load already judged last time; resetting to
    /// `(epoch, 0)` whenever a rebuild swaps the generation in keeps
    /// the pair aligned with the counters it windows.
    judged: BTreeMap<String, (u64, u64)>,
    /// Per column: the *live* shape after the last shape-changing
    /// rebuild, when it differs from the registration shape. Checkpoints
    /// carry this (inside [`ConfigRecord::rebuilt`]) so a restore
    /// re-applies the shape even after the rebuild records that produced
    /// it are pruned.
    shapes: BTreeMap<String, ShapeRecord>,
    /// `Some(why)` once a changelog append has failed. The inner store
    /// then holds an epoch the log does not — appending anything further
    /// would write an epoch gap that replay must refuse — so the store
    /// fail-stops: every mutation is rejected until the directory is
    /// reopened (see the [module docs](self)).
    poisoned: Option<String>,
}

/// Crash durability, checkpoints and time travel over any
/// [`ColumnStore`] — see the [module docs](self).
///
/// ```no_run
/// use dh_catalog::durable::{DurableOptions, DurableStore, StoreKind};
/// use dh_catalog::{AlgoSpec, ColumnConfig, ColumnStore};
/// use dh_core::{MemoryBudget, UpdateOp};
///
/// let store =
///     DurableStore::open("wal-dir", StoreKind::Single, DurableOptions::default()).unwrap();
/// if !store.contains("amount") {
///     let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0));
///     store.register("amount", config).unwrap();
/// }
/// store.apply("amount", &[UpdateOp::Insert(42)]).unwrap();
/// drop(store); // ... crash here, reopen, and the epoch is back:
/// let store =
///     DurableStore::open("wal-dir", StoreKind::Single, DurableOptions::default()).unwrap();
/// assert_eq!(store.total_count("amount").unwrap(), 1.0);
/// ```
pub struct DurableStore {
    inner: Box<dyn ColumnStore>,
    kind: StoreKind,
    opts: DurableOptions,
    dir: PathBuf,
    state: Mutex<DurableState>,
}

impl DurableStore {
    /// Opens (or creates) the durable store rooted at `dir`: loads the
    /// newest valid checkpoint, replays the surviving changelog tail in
    /// epoch order (truncating a torn final record — the expected shape
    /// of a crash mid-append), and serves from a freshly built inner
    /// store of `kind`.
    ///
    /// # Errors
    /// [`DurableError::Wal`] on I/O problems, corruption outside the
    /// torn-tail window, or a `kind` mismatch with the directory;
    /// [`DurableError::Recovery`] if checkpoint and log do not form a
    /// replayable history.
    pub fn open(
        dir: impl Into<PathBuf>,
        kind: StoreKind,
        opts: DurableOptions,
    ) -> Result<Self, DurableError> {
        let dir = dir.into();
        let (wal, records) = Wal::open(&dir, kind.tag(), opts.sync)?;
        let checkpoint = latest_checkpoint(&dir, kind.tag())?;
        let (inner, configs) = restore_base(kind, checkpoint.as_ref())?;
        let base = checkpoint.as_ref().map_or(0, |ckpt| ckpt.epoch);
        // Seed the live-shape map from the checkpoint: `restore_base`
        // already re-applied these shapes to the inner store; the map
        // keeps them flowing into the *next* checkpoint too.
        let mut shapes = BTreeMap::new();
        // Likewise the rebuild ordinals: the records that issued them
        // may be pruned, but the next shape change must still draw a
        // fresh ordinal no follower has seen.
        let mut rebuild_seqs = BTreeMap::new();
        if let Some(ckpt) = checkpoint.as_ref() {
            for col in &ckpt.columns {
                if let Some(shape) = &col.config.rebuilt {
                    shapes.insert(col.column.clone(), shape.clone());
                }
                if col.config.rebuild_seq > 0 {
                    rebuild_seqs.insert(col.column.clone(), col.config.rebuild_seq);
                }
            }
        }

        let store = DurableStore {
            inner,
            kind,
            opts,
            dir,
            state: Mutex::new(DurableState {
                wal,
                configs,
                ring: VecDeque::new(),
                last_checkpoint: base,
                last_reshard_attempt: BTreeMap::new(),
                rebuild_seqs,
                judged: BTreeMap::new(),
                shapes,
                poisoned: None,
            }),
        };
        store.replay(base, records)?;
        // Open the autoscale rate window *at* the recovered state: the
        // replayed load counters accumulated over epochs this process
        // never judged, so counting them into the first live window
        // would manufacture a burst that never happened.
        {
            let mut st = store.lock();
            let epoch = store.inner.epoch();
            let armed: Vec<String> = st
                .configs
                .iter()
                .filter(|(_, config)| config.autoscale.is_some())
                .map(|(name, _)| name.clone())
                .collect();
            for column in armed {
                let judged: u64 = store.inner.shard_load(&column)?.iter().sum();
                st.judged.insert(column, (epoch, judged));
            }
        }
        Ok(store)
    }

    /// Replays the surviving changelog records onto the restored base
    /// state, repopulating the time-travel ring along the way.
    fn replay(&self, base: u64, records: Vec<WalRecord>) -> Result<(), DurableError> {
        let mut st = self.lock();
        for record in records {
            match record {
                WalRecord::Register { column, config } => {
                    let config = config_from_record(&config)?;
                    match st.configs.get(&column) {
                        Some(live) if *live == config => {} // covered by the checkpoint
                        Some(live) => {
                            return Err(DurableError::Recovery(format!(
                                "register record for '{column}' contradicts the checkpoint \
                                 ({config:?} vs {live:?})"
                            )));
                        }
                        None => {
                            self.inner.register(&column, strip_policy(&config))?;
                            st.configs.insert(column, config);
                        }
                    }
                }
                WalRecord::Commit { epoch, columns } => {
                    let at = self.inner.epoch();
                    if epoch <= at {
                        if epoch > base {
                            return Err(DurableError::Recovery(format!(
                                "commit record for epoch {epoch} arrived out of order \
                                 (store already at {at})"
                            )));
                        }
                        continue; // covered by the checkpoint
                    }
                    if epoch != at + 1 {
                        return Err(DurableError::Recovery(format!(
                            "epoch gap in changelog: store at {at}, next record is {epoch}"
                        )));
                    }
                    let mut batch = WriteBatch::new();
                    for (column, ops) in columns {
                        batch.extend(&column, ops);
                    }
                    self.inner.commit(batch)?;
                    self.push_generation(&mut st)?;
                }
                // Legacy: logs written before the elastic rebuild plane
                // carry border moves as `Reshard`; the live leader now
                // logs every shape change as `Rebuild` (with its
                // ordinal), so this arm only ever replays old logs.
                WalRecord::Reshard { column, barrier } => {
                    st.last_reshard_attempt.insert(column.clone(), barrier);
                    if barrier <= base {
                        continue; // the checkpoint spans already reflect it
                    }
                    let at = self.inner.epoch();
                    if barrier != at {
                        return Err(DurableError::Recovery(format!(
                            "re-shard record for '{column}' at barrier {barrier} does not \
                             follow its commit (store at {at})"
                        )));
                    }
                    self.inner.reshard(&column)?;
                    self.refresh_ring_tail(&mut st)?;
                }
                WalRecord::Rebuild {
                    column,
                    barrier,
                    seq,
                    shards,
                    spec,
                    memory_bytes,
                    channel,
                } => {
                    st.last_reshard_attempt.insert(column.clone(), barrier);
                    // Resume the ordinal sequence where the log left it,
                    // even for records the checkpoint already covers —
                    // the next live rebuild must not reissue an ordinal.
                    st.rebuild_seqs.insert(column.clone(), seq);
                    if barrier <= base {
                        continue; // the checkpoint's rebuilt shape already reflects it
                    }
                    let at = self.inner.epoch();
                    if barrier != at {
                        return Err(DurableError::Recovery(format!(
                            "rebuild record for '{column}' at barrier {barrier} does not \
                             follow its commit (store at {at})"
                        )));
                    }
                    // The record carries the plan's *deltas*; resolving
                    // them against the store state at the same barrier
                    // reproduces the live rebuild bit-identically.
                    let plan = plan_from_deltas(shards, spec.as_deref(), memory_bytes, channel)?;
                    self.inner.rebuild(&column, plan)?;
                    self.record_live_shape(&mut st, &column)?;
                    self.refresh_ring_tail(&mut st)?;
                }
            }
        }
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DurableState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Rejects the operation once a changelog append has failed: the
    /// inner store and the log have diverged by one epoch, and any
    /// further append would turn that into a permanent epoch gap.
    fn check_usable(st: &DurableState) -> Result<(), CatalogError> {
        match &st.poisoned {
            None => Ok(()),
            Some(why) => Err(CatalogError::Durability(format!(
                "store is fail-stopped after a changelog append failure ({why}); \
                 reopen the directory to recover to the last durable state"
            ))),
        }
    }

    /// Appends under the fail-stop discipline: an append failure poisons
    /// the store before the error is surfaced, so no later mutation can
    /// log past the lost epoch.
    fn append(st: &mut DurableState, record: &WalRecord) -> Result<(), CatalogError> {
        st.wal.append(record).map_err(|e| {
            st.poisoned = Some(e.to_string());
            durability(e)
        })
    }

    /// Renders the just-published generation into the time-travel ring.
    fn push_generation(&self, st: &mut DurableState) -> Result<(), CatalogError> {
        if self.opts.retain_generations == 0 {
            return Ok(());
        }
        let names: Vec<&str> = st.configs.keys().map(String::as_str).collect();
        let set = self.inner.snapshot_set(&names)?;
        st.ring.push_back(set);
        while st.ring.len() > self.opts.retain_generations {
            st.ring.pop_front();
        }
        Ok(())
    }

    /// Re-renders the newest ring entry after a re-shard, which rebuilt
    /// spans *without* publishing an epoch — the retained generation
    /// must match what live readers now see at that same epoch.
    fn refresh_ring_tail(&self, st: &mut DurableState) -> Result<(), CatalogError> {
        let epoch = self.inner.epoch();
        if st.ring.back().is_some_and(|set| set.epoch() == epoch) {
            let names: Vec<&str> = st.configs.keys().map(String::as_str).collect();
            *st.ring.back_mut().expect("checked above") = self.inner.snapshot_set(&names)?;
        }
        Ok(())
    }

    /// Draws the next rebuild ordinal for `column` — lifetime-monotone,
    /// so two shape changes at the same barrier (rebuilds publish no
    /// epoch) still log as distinguishable records and a follower's
    /// gap-rewind re-read cannot be confused with a distinct rebuild.
    fn bump_rebuild_seq(st: &mut DurableState, column: &str) -> u64 {
        let seq = st.rebuild_seqs.get(column).copied().unwrap_or(0) + 1;
        st.rebuild_seqs.insert(column.to_string(), seq);
        seq
    }

    /// Remembers the column's *live* shape after a shape-changing
    /// rebuild, so the next checkpoint carries it (see
    /// [`ConfigRecord::rebuilt`]).
    fn record_live_shape(&self, st: &mut DurableState, column: &str) -> Result<(), CatalogError> {
        if let Some(shape) = self.inner.column_shape(column)? {
            st.shapes
                .insert(column.to_string(), shape_to_record(&shape));
        }
        Ok(())
    }

    /// Everything that follows a logged publication: policy-driven
    /// re-sharding and autoscaling (logged), the ring push, and the
    /// checkpoint cadence.
    fn after_commit(&self, st: &mut DurableState, epoch: u64) -> Result<(), CatalogError> {
        let armed: Vec<(String, ReshardPolicy)> = st
            .configs
            .iter()
            .filter_map(|(name, config)| config.reshard.map(|p| (name.clone(), p)))
            .collect();
        for (column, policy) in armed {
            let since = epoch - st.last_reshard_attempt.get(&column).copied().unwrap_or(0);
            if since < policy.min_interval_epochs.max(1) {
                continue;
            }
            let loads = self.inner.shard_load(&column)?;
            if loads.len() < 2 {
                continue;
            }
            let total: u64 = loads.iter().sum();
            if total < policy.min_load.max(1) {
                continue;
            }
            let max = *loads.iter().max().expect("non-empty") as f64;
            let mean = total as f64 / loads.len() as f64;
            if max < policy.skew_threshold * mean {
                continue;
            }
            st.last_reshard_attempt.insert(column.clone(), epoch);
            if self.inner.reshard(&column)? {
                // A border move is logged as a delta-less `Rebuild` so
                // it draws an ordinal like every other shape change —
                // `Reshard` records are legacy, decoded but never
                // written (see [`WalRecord::Reshard`]).
                st.judged.insert(column.clone(), (epoch, 0));
                let seq = Self::bump_rebuild_seq(st, &column);
                Self::append(
                    st,
                    &rebuild_record(&column, epoch, seq, &RebuildPlan::new()),
                )?;
            }
        }
        let auto: Vec<(String, AutoscalePolicy)> = st
            .configs
            .iter()
            .filter_map(|(name, config)| config.autoscale.map(|p| (name.clone(), p)))
            .collect();
        for (column, policy) in auto {
            let (judged_epoch, judged_load) = st.judged.get(&column).copied().unwrap_or((0, 0));
            let window_epochs = epoch.saturating_sub(judged_epoch);
            if window_epochs < policy.min_interval_epochs.max(1) {
                continue;
            }
            let loads = self.inner.shard_load(&column)?;
            if loads.is_empty() {
                continue;
            }
            // The rate window is everything since the last *judgment*:
            // shard load counters are cumulative per generation, so the
            // load already judged must be subtracted or a judgment that
            // decides a plan without swapping the generation (e.g. a
            // skew rebalance resolving to unchanged borders) would
            // double-count its window into the next rate.
            let total: u64 = loads.iter().sum();
            let window_ops = total.saturating_sub(judged_load);
            st.judged.insert(column.clone(), (epoch, total));
            let Some(plan) = policy.decide(loads.len(), window_ops, window_epochs, &loads) else {
                continue;
            };
            st.last_reshard_attempt.insert(column.clone(), epoch);
            if self.inner.rebuild(&column, plan)? {
                // The swap reset the load counters; re-floor the window
                // to match, and log the *decision*, not the gates:
                // replay re-applies the resolved plan at the same
                // barrier instead of re-judging a window it cannot
                // reconstruct.
                st.judged.insert(column.clone(), (epoch, 0));
                let seq = Self::bump_rebuild_seq(st, &column);
                Self::append(st, &rebuild_record(&column, epoch, seq, &plan))?;
                self.record_live_shape(st, &column)?;
            }
        }
        self.push_generation(st)?;
        if let Some(every) = self.opts.checkpoint_every {
            if epoch - st.last_checkpoint >= every.max(1) {
                self.checkpoint_to_disk(st).map_err(|e| match e {
                    DurableError::Wal(w) => durability(w),
                    DurableError::Store(s) => s,
                    DurableError::Recovery(why) => CatalogError::Durability(why),
                })?;
            }
        }
        Ok(())
    }

    /// Composes the whole store at its current epoch into a checkpoint
    /// file, then rotates the changelog and removes covered segments.
    fn checkpoint_to_disk(&self, st: &mut DurableState) -> Result<u64, DurableError> {
        let names: Vec<&str> = st.configs.keys().map(String::as_str).collect();
        let set = self.inner.snapshot_set(&names)?;
        let epoch = set.epoch();
        let columns = set
            .iter()
            .map(|(name, snap)| CheckpointColumn {
                column: name.to_string(),
                config: {
                    // Checkpoints (and only checkpoints) annotate the
                    // config with the live rebuilt shape: restore must
                    // reproduce it even after the rebuild records that
                    // produced it are pruned with the covered segments.
                    let mut record = config_to_record(&st.configs[name]);
                    record.rebuilt = st.shapes.get(name).cloned();
                    record.rebuild_seq = st.rebuild_seqs.get(name).copied().unwrap_or(0);
                    record
                },
                accepted: snap.checkpoint(),
                updates: snap.updates(),
                spans: snap.spans(),
            })
            .collect();
        write_checkpoint(&self.dir, self.kind.tag(), &Checkpoint { epoch, columns })?;
        st.wal.rotate(epoch + 1)?;
        // Prune segments back to the *oldest retained* checkpoint, not
        // this one: if this checkpoint is later found damaged (bit rot),
        // recovery falls back to the older retained checkpoint and still
        // needs the log tail from there forward. Only when a single
        // checkpoint exists (the first ever) is pruning to `epoch` right
        // — there is no older fallback to preserve segments for.
        let cover = checkpoint_epochs(&self.dir)?
            .first()
            .copied()
            .unwrap_or(epoch);
        st.wal.remove_covered(cover)?;
        st.last_checkpoint = epoch;
        Ok(epoch)
    }

    /// Writes a checkpoint now, regardless of the cadence, returning
    /// the epoch it captured.
    pub fn checkpoint_now(&self) -> Result<u64, DurableError> {
        let mut st = self.lock();
        Self::check_usable(&st).map_err(DurableError::Store)?;
        self.checkpoint_to_disk(&mut st)
    }

    /// Forces an fsync of the changelog (meaningful under
    /// [`SyncPolicy::Batched`] / [`SyncPolicy::Off`]).
    pub fn sync(&self) -> Result<(), DurableError> {
        self.lock().wal.sync().map_err(DurableError::Wal)
    }

    /// The epochs the time-travel ring currently retains, ascending.
    pub fn retained_epochs(&self) -> Vec<u64> {
        self.lock().ring.iter().map(SnapshotSet::epoch).collect()
    }

    /// Explicit time-travel GC: drops every retained generation with an
    /// epoch `< before`, returning how many were evicted. Snapshot sets
    /// already handed out stay valid (they are immutable `Arc` views);
    /// the epochs just stop being pinnable.
    pub fn gc_retained(&self, before: u64) -> usize {
        let mut st = self.lock();
        let len = st.ring.len();
        st.ring.retain(|set| set.epoch() >= before);
        len - st.ring.len()
    }

    /// The directory holding the changelog and checkpoints.
    pub fn wal_dir(&self) -> &Path {
        &self.dir
    }

    /// The inner store design this directory is bound to.
    pub fn kind(&self) -> StoreKind {
        self.kind
    }

    /// How many segment files the changelog currently spans.
    pub fn segment_count(&self) -> usize {
        self.lock().wal.segment_count()
    }
}

impl Drop for DurableStore {
    /// Best-effort final fsync, so `drop` + reopen under
    /// [`SyncPolicy::Batched`] loses nothing (a *crash* may still shed
    /// the unsynced suffix — that is the policy's contract).
    fn drop(&mut self) {
        let _ = self.lock().wal.sync();
    }
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field("kind", &self.kind)
            .field("dir", &self.dir)
            .field("epoch", &self.inner.epoch())
            .field("columns", &self.inner.columns())
            .finish()
    }
}

impl ColumnStore for DurableStore {
    /// Registers through the changelog: the record carries the full
    /// config (re-shard policy included); the inner store gets the
    /// config *without* the policy, because the decorator evaluates the
    /// gates itself so every border move is logged (see the
    /// [module docs](self)).
    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), CatalogError> {
        let mut st = self.lock();
        Self::check_usable(&st)?;
        if st.configs.contains_key(column) {
            return Err(CatalogError::DuplicateColumn(column.into()));
        }
        // The inner store never sees the policies (stripped below), so
        // the decorator must apply the same validation the inner
        // register would.
        crate::sharded::validate_policies(&config)?;
        // Inner first: the inner store is the validator (e.g. a sharded
        // store rejecting a plan-less config), and a record logged for a
        // registration that then fails would brick every reopen. If the
        // append after it fails, `append` poisons the store, so the
        // inner-only column can never be committed to or survive a
        // reopen — the log and the durable column set cannot diverge.
        self.inner.register(column, strip_policy(&config))?;
        Self::append(
            &mut st,
            &WalRecord::Register {
                column: column.to_string(),
                config: config_to_record(&config),
            },
        )?;
        st.configs.insert(column.to_string(), config);
        Ok(())
    }

    fn columns(&self) -> Vec<String> {
        self.inner.columns()
    }

    fn contains(&self, column: &str) -> bool {
        self.inner.contains(column)
    }

    fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        self.inner.spec(column)
    }

    fn commit(&self, batch: WriteBatch) -> Result<u64, CatalogError> {
        let mut st = self.lock();
        Self::check_usable(&st)?;
        let columns: Vec<(String, Vec<UpdateOp>)> = batch
            .columns()
            .map(|c| (c.to_string(), batch.ops(c).unwrap_or(&[]).to_vec()))
            .collect();
        let epoch = self.inner.commit(batch)?;
        // If this append fails the inner store has already published
        // `epoch`; a later successful append would leave a permanent
        // epoch gap that replay treats as corruption. `append` poisons
        // the store on failure so no later record can land past the gap.
        Self::append(&mut st, &WalRecord::Commit { epoch, columns })?;
        self.after_commit(&mut st, epoch)?;
        Ok(epoch)
    }

    fn apply(&self, column: &str, batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        let mut st = self.lock();
        Self::check_usable(&st)?;
        let checkpoint = self.inner.apply(column, batch)?;
        // The lock serializes every publication, so the store's epoch
        // is the one this apply just published.
        let epoch = self.inner.epoch();
        Self::append(
            &mut st,
            &WalRecord::Commit {
                epoch,
                columns: vec![(column.to_string(), batch.to_vec())],
            },
        )?;
        self.after_commit(&mut st, epoch)?;
        Ok(checkpoint)
    }

    fn flush(&self, column: &str) -> Result<(), CatalogError> {
        self.inner.flush(column)
    }

    fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        self.inner.snapshot(column)
    }

    fn snapshot_set(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError> {
        self.inner.snapshot_set(columns)
    }

    /// Serves `epoch` from the time-travel ring (bit-identical to what
    /// live readers saw at that epoch), falling back to the live path
    /// when `epoch` is current.
    fn snapshot_set_at(&self, columns: &[&str], epoch: u64) -> Result<SnapshotSet, CatalogError> {
        {
            let st = self.lock();
            if let Some(full) = st.ring.iter().find(|set| set.epoch() == epoch) {
                let mut snaps = BTreeMap::new();
                for &column in columns {
                    let snap = full
                        .get(column)
                        .ok_or_else(|| CatalogError::UnknownColumn(column.into()))?;
                    snaps.insert(column.to_string(), snap.clone());
                }
                return Ok(SnapshotSet::new(epoch, snaps));
            }
        }
        let set = self.inner.snapshot_set(columns)?;
        if set.epoch() == epoch {
            Ok(set)
        } else {
            Err(CatalogError::EpochEvicted(epoch))
        }
    }

    fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        self.inner.checkpoint(column)
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// Explicit re-shard, logged like a policy-driven one so recovery
    /// replays it at the same barrier — as a delta-less [`Rebuild`]
    /// record carrying its ordinal ([`WalRecord::Reshard`] is legacy,
    /// decoded but never written).
    ///
    /// [`Rebuild`]: WalRecord::Rebuild
    fn reshard(&self, column: &str) -> Result<bool, CatalogError> {
        let mut st = self.lock();
        Self::check_usable(&st)?;
        let moved = self.inner.reshard(column)?;
        let barrier = self.inner.epoch();
        st.last_reshard_attempt.insert(column.to_string(), barrier);
        if moved {
            st.judged.insert(column.to_string(), (barrier, 0));
            let seq = Self::bump_rebuild_seq(&mut st, column);
            Self::append(
                &mut st,
                &rebuild_record(column, barrier, seq, &RebuildPlan::new()),
            )?;
            self.refresh_ring_tail(&mut st)?;
        }
        Ok(moved)
    }

    /// Explicit shape-changing rebuild, logged with the plan's deltas:
    /// replay resolves them against the same prior state at the same
    /// barrier, so recovery reproduces the rebuilt shape bit-identically.
    fn rebuild(&self, column: &str, plan: RebuildPlan) -> Result<bool, CatalogError> {
        let mut st = self.lock();
        Self::check_usable(&st)?;
        let moved = self.inner.rebuild(column, plan)?;
        let barrier = self.inner.epoch();
        st.last_reshard_attempt.insert(column.to_string(), barrier);
        if moved {
            st.judged.insert(column.to_string(), (barrier, 0));
            let seq = Self::bump_rebuild_seq(&mut st, column);
            Self::append(&mut st, &rebuild_record(column, barrier, seq, &plan))?;
            self.record_live_shape(&mut st, column)?;
            self.refresh_ring_tail(&mut st)?;
        }
        Ok(moved)
    }

    fn column_shape(&self, column: &str) -> Result<Option<ColumnShape>, CatalogError> {
        self.inner.column_shape(column)
    }

    fn shard_load(&self, column: &str) -> Result<Vec<u64>, CatalogError> {
        self.inner.shard_load(column)
    }

    fn clamped_ops(&self, column: &str) -> Result<u64, CatalogError> {
        self.inner.clamped_ops(column)
    }

    fn estimate_range(&self, column: &str, a: i64, b: i64) -> Result<f64, CatalogError> {
        self.inner.estimate_range(column, a, b)
    }

    fn estimate_eq(&self, column: &str, v: i64) -> Result<f64, CatalogError> {
        self.inner.estimate_eq(column, v)
    }

    fn total_count(&self, column: &str) -> Result<f64, CatalogError> {
        self.inner.total_count(column)
    }

    fn read_stats(&self) -> ReadStats {
        self.inner.read_stats()
    }
}

/// What [`restore_base`] hands back: the freshly built inner store and
/// the restored per-column config map.
pub type RestoredBase = (Box<dyn ColumnStore>, BTreeMap<String, ColumnConfig>);

/// Builds a fresh inner store of `kind` and seeds it from `checkpoint`
/// when one is given, returning the boxed store plus the restored
/// config map (with re-shard policies intact — the store inside gets
/// them stripped, see [`strip_policy`]). This is the recovery base both
/// [`DurableStore::open`] and a read replica's checkpoint fallback
/// start replaying the changelog tail onto.
///
/// # Errors
/// [`DurableError::Recovery`] if the checkpoint is internally
/// inconsistent; [`DurableError::Store`] if the inner store rejects a
/// restored column.
pub fn restore_base(
    kind: StoreKind,
    checkpoint: Option<&Checkpoint>,
) -> Result<RestoredBase, DurableError> {
    let mut configs = BTreeMap::new();
    // Build the concrete store first: the checkpoint restore needs its
    // `DirectRestore` seam, which the object-safe `ColumnStore` trait
    // deliberately does not carry.
    let inner: Box<dyn ColumnStore> = match kind {
        StoreKind::Single => {
            let store = Catalog::new();
            if let Some(ckpt) = checkpoint {
                restore_checkpoint(&store, ckpt, &mut configs)?;
            }
            Box::new(store)
        }
        StoreKind::Sharded => {
            let store = ShardedCatalog::new();
            if let Some(ckpt) = checkpoint {
                restore_checkpoint(&store, ckpt, &mut configs)?;
            }
            Box::new(store)
        }
    };
    Ok((inner, configs))
}

/// `config` as the inner store should see it: identical, minus any
/// re-shard or autoscale policy (the [`DurableStore`] decorator — and
/// likewise a replica replaying its log — runs policy itself, so the
/// inner store must never second-guess it).
pub fn strip_policy(config: &ColumnConfig) -> ColumnConfig {
    ColumnConfig {
        reshard: None,
        autoscale: None,
        ..*config
    }
}

/// Flattens a live [`ColumnConfig`] to its logged [`ConfigRecord`] —
/// the inverse of [`config_from_record`], shared with the `dh_site`
/// wire protocol so a register request travels as the exact record its
/// replay would log.
pub fn config_to_record(config: &ColumnConfig) -> ConfigRecord {
    ConfigRecord {
        spec: config.spec.label(),
        memory_bytes: config.memory.bytes() as u64,
        seed: config.seed,
        plan: config.plan.map(|plan| PlanRecord {
            lo: plan.domain().0,
            hi: plan.domain().1,
            shards: plan.shards() as u64,
            channel: plan.mode() == IngestMode::Channel,
        }),
        reshard: config.reshard.map(|policy| ReshardPolicyRecord {
            skew_bits: policy.skew_threshold.to_bits(),
            min_interval_epochs: policy.min_interval_epochs,
            min_load: policy.min_load,
        }),
        autoscale: config.autoscale.map(|policy| AutoscaleRecord {
            min_shards: policy.min_shards as u64,
            max_shards: policy.max_shards as u64,
            scale_up_rate: policy.scale_up_rate,
            scale_down_rate: policy.scale_down_rate,
            skew_bits: policy.skew_threshold.to_bits(),
            min_interval_epochs: policy.min_interval_epochs,
            min_load: policy.min_load,
        }),
        // Only checkpoints annotate a rebuilt shape and a rebuild
        // ordinal; a register record always describes the registration
        // shape alone.
        rebuilt: None,
        rebuild_seq: 0,
    }
}

/// Decodes a logged [`ConfigRecord`] back into a live [`ColumnConfig`]
/// — the shared leg of replaying a register record, on recovery and on
/// a replica alike.
///
/// # Errors
/// [`DurableError::Recovery`] if the record names an unknown algorithm
/// or an invalid shard plan.
pub fn config_from_record(record: &ConfigRecord) -> Result<ColumnConfig, DurableError> {
    let spec: AlgoSpec = record.spec.parse().map_err(|e| {
        DurableError::Recovery(format!("unknown algorithm in register record: {e}"))
    })?;
    let mut config =
        ColumnConfig::new(spec, MemoryBudget::from_bytes(record.memory_bytes as usize))
            .with_seed(record.seed);
    if let Some(plan) = &record.plan {
        let mut live = ShardPlan::new(plan.lo, plan.hi, plan.shards as usize)?;
        if plan.channel {
            live = live.channel();
        }
        config = config.with_plan(live);
    }
    if let Some(policy) = &record.reshard {
        config = config.with_reshard(ReshardPolicy {
            skew_threshold: f64::from_bits(policy.skew_bits),
            min_interval_epochs: policy.min_interval_epochs,
            min_load: policy.min_load,
        });
    }
    if let Some(policy) = &record.autoscale {
        config = config.with_autoscale(AutoscalePolicy {
            min_shards: policy.min_shards as usize,
            max_shards: policy.max_shards as usize,
            scale_up_rate: policy.scale_up_rate,
            scale_down_rate: policy.scale_down_rate,
            skew_threshold: f64::from_bits(policy.skew_bits),
            min_interval_epochs: policy.min_interval_epochs,
            min_load: policy.min_load,
        });
    }
    // `record.rebuilt` is deliberately ignored here: it annotates the
    // *live* shape inside a checkpoint, not the registration config —
    // [`restore_checkpoint`] re-applies it through `rebuild` instead.
    Ok(config)
}

/// Decodes the shape deltas of a logged [`WalRecord::Rebuild`] back into
/// the [`RebuildPlan`] to replay — the shared leg of replaying a rebuild
/// record, on recovery and on a replica alike.
///
/// # Errors
/// [`DurableError::Recovery`] if the record names an unknown algorithm.
pub fn plan_from_deltas(
    shards: Option<u64>,
    spec: Option<&str>,
    memory_bytes: Option<u64>,
    channel: Option<bool>,
) -> Result<RebuildPlan, DurableError> {
    let mut plan = RebuildPlan::new();
    plan.shards = shards.map(|k| k as usize);
    if let Some(label) = spec {
        plan.spec = Some(label.parse().map_err(|e| {
            DurableError::Recovery(format!("unknown algorithm in rebuild record: {e}"))
        })?);
    }
    plan.memory = memory_bytes.map(|bytes| MemoryBudget::from_bytes(bytes as usize));
    plan.ingest_mode = channel.map(|ch| {
        if ch {
            IngestMode::Channel
        } else {
            IngestMode::Locked
        }
    });
    Ok(plan)
}

/// The [`WalRecord`] a shape-changing rebuild logs: the plan's deltas
/// plus the barrier epoch it executed at and its per-column ordinal.
fn rebuild_record(column: &str, barrier: u64, seq: u64, plan: &RebuildPlan) -> WalRecord {
    WalRecord::Rebuild {
        column: column.to_string(),
        barrier,
        seq,
        shards: plan.shards.map(|k| k as u64),
        spec: plan.spec.map(|s| s.label()),
        memory_bytes: plan.memory.map(|m| m.bytes() as u64),
        channel: plan.ingest_mode.map(|m| m == IngestMode::Channel),
    }
}

/// Flattens a live [`ColumnShape`] into the [`ShapeRecord`] a checkpoint
/// carries.
fn shape_to_record(shape: &ColumnShape) -> ShapeRecord {
    ShapeRecord {
        shards: shape.shards as u64,
        spec: shape.spec.label(),
        memory_bytes: shape.memory.bytes() as u64,
        channel: shape.ingest_mode == IngestMode::Channel,
    }
}

/// The fully-specified [`RebuildPlan`] that reproduces a checkpointed
/// shape on a freshly registered column.
fn shape_to_plan(shape: &ShapeRecord) -> Result<RebuildPlan, DurableError> {
    let spec: AlgoSpec = shape.spec.parse().map_err(|e| {
        DurableError::Recovery(format!("unknown algorithm in checkpoint shape: {e}"))
    })?;
    Ok(RebuildPlan::new()
        .with_shards(shape.shards as usize)
        .with_spec(spec)
        .with_memory(MemoryBudget::from_bytes(shape.memory_bytes as usize))
        .with_ingest_mode(if shape.channel {
            IngestMode::Channel
        } else {
            IngestMode::Locked
        }))
}

/// Rebuilds the inner store's state from a checkpoint: registers every
/// column, then seeds the store epoch and every per-column counter
/// directly through the store's restore hook, applying ops synthesized
/// from the checkpointed spans to rebuild the histogram mass. Cost is
/// proportional to the checkpoint size, not the store's lifetime epoch
/// count.
fn restore_checkpoint<S: ColumnStore + DirectRestore>(
    inner: &S,
    ckpt: &Checkpoint,
    configs: &mut BTreeMap<String, ColumnConfig>,
) -> Result<(), DurableError> {
    for col in &ckpt.columns {
        if col.accepted > ckpt.epoch {
            return Err(DurableError::Recovery(format!(
                "checkpoint claims column '{}' accepted {} commits by epoch {}",
                col.column, col.accepted, ckpt.epoch
            )));
        }
        let config = config_from_record(&col.config)?;
        inner.register(&col.column, strip_policy(&config))?;
        configs.insert(col.column.clone(), config);
    }
    // Re-apply any rebuilt shape *before* seeding the mass, so the
    // synthesized ops route through the shape live readers last saw —
    // the rebuild records that produced it may already be pruned.
    for col in &ckpt.columns {
        if let Some(shape) = &col.config.rebuilt {
            inner.rebuild(&col.column, shape_to_plan(shape)?)?;
        }
    }
    if ckpt.epoch == 0 {
        return Ok(());
    }
    let images: Vec<RestoreColumn> = ckpt
        .columns
        .iter()
        .map(|col| RestoreColumn {
            name: col.column.clone(),
            accepted: col.accepted,
            updates: col.updates,
            ops: if col.accepted > 0 {
                synthesize_ops(&col.spans)
            } else {
                Vec::new()
            },
        })
        .collect();
    inner.restore_at(ckpt.epoch, images)?;
    Ok(())
}

/// Turns checkpointed spans back into insert ops: integer per-span
/// counts by largest-remainder rounding (so the synthesized total is
/// `round(total mass)`), each span's count spread evenly over the
/// integer values its `[lo, hi)` window covers — the same rebuild idiom
/// a live re-shard applies to moved shards.
fn synthesize_ops(spans: &[BucketSpan]) -> Vec<UpdateOp> {
    let total: f64 = spans.iter().map(|s| s.count).sum();
    let target = total.round() as u64;
    let mut counts: Vec<u64> = spans.iter().map(|s| s.count.floor() as u64).collect();
    let assigned: u64 = counts.iter().sum();
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = spans[a].count.fract();
        let fb = spans[b].count.fract();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &i in order.iter().take(target.saturating_sub(assigned) as usize) {
        counts[i] += 1;
    }

    let mut ops = Vec::with_capacity(target.min(1 << 20) as usize);
    for (span, &count) in spans.iter().zip(&counts) {
        if count == 0 {
            continue;
        }
        // Integer values inside the half-open [lo, hi) window; a sliver
        // narrower than one integer collapses to its midpoint.
        let mut vlo = span.lo.ceil() as i64;
        let mut vhi = (span.hi.ceil() as i64).saturating_sub(1);
        if vhi < vlo {
            let mid = ((span.lo + span.hi) / 2.0).floor() as i64;
            vlo = mid;
            vhi = mid;
        }
        spread_inserts(vlo, vhi, count, &mut |v, n| {
            for _ in 0..n {
                ops.push(UpdateOp::Insert(v));
            }
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_ops_hit_the_rounded_total() {
        let spans = vec![
            BucketSpan::new(0.0, 10.0, 7.3),
            BucketSpan::new(10.0, 20.0, 2.4),
            BucketSpan::new(20.0, 20.5, 0.3),
        ];
        let ops = synthesize_ops(&spans);
        assert_eq!(ops.len(), 10); // round(10.0)
        assert!(ops
            .iter()
            .all(|op| matches!(op, UpdateOp::Insert(v) if (0..=20).contains(v))));
    }

    #[test]
    fn poisoned_store_rejects_mutations_but_keeps_serving_reads() {
        let dir = dh_wal::tmp::TempDir::new("dur-poison");
        let store = DurableStore::open(
            dir.path(),
            StoreKind::Single,
            DurableOptions {
                sync: SyncPolicy::PerCommit,
                checkpoint_every: None,
                retain_generations: 2,
            },
        )
        .unwrap();
        store
            .register(
                "c",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)),
            )
            .unwrap();
        store.apply("c", &[UpdateOp::Insert(5)]).unwrap();

        // Simulate a failed changelog append (the real trigger is an
        // I/O error inside `append`, which sets this same flag).
        store.lock().poisoned = Some("injected".into());

        let rejected = |r: Result<u64, CatalogError>| {
            assert!(
                matches!(r, Err(CatalogError::Durability(ref why)) if why.contains("fail-stopped")),
                "expected fail-stop rejection, got {r:?}"
            );
        };
        let mut batch = WriteBatch::new();
        batch.extend("c", [UpdateOp::Insert(6)]);
        rejected(store.commit(batch));
        rejected(store.apply("c", &[UpdateOp::Insert(6)]));
        assert!(matches!(
            store.register(
                "d",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
            ),
            Err(CatalogError::Durability(_))
        ));
        assert!(matches!(
            store.reshard("c"),
            Err(CatalogError::Durability(_))
        ));
        assert!(matches!(
            store.checkpoint_now(),
            Err(DurableError::Store(CatalogError::Durability(_)))
        ));

        // Reads keep serving the last acknowledged state.
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.total_count("c").unwrap(), 1.0);

        // Nothing past the poison point was logged: a reopen recovers
        // exactly the pre-failure state.
        drop(store);
        let store = DurableStore::open(
            dir.path(),
            StoreKind::Single,
            DurableOptions {
                sync: SyncPolicy::PerCommit,
                checkpoint_every: None,
                retain_generations: 2,
            },
        )
        .unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.total_count("c").unwrap(), 1.0);
    }

    #[test]
    fn config_record_round_trips_including_nan_threshold() {
        let plan = ShardPlan::new(-100, 100, 4).unwrap().channel();
        let config = ColumnConfig::new(AlgoSpec::Dado, MemoryBudget::from_kb(2.0))
            .with_seed(9)
            .with_plan(plan)
            .with_reshard(ReshardPolicy {
                skew_threshold: f64::NAN,
                min_interval_epochs: 3,
                min_load: 17,
            })
            .with_autoscale(AutoscalePolicy {
                min_shards: 2,
                max_shards: 16,
                scale_up_rate: 1000,
                scale_down_rate: 10,
                skew_threshold: f64::NAN,
                min_interval_epochs: 5,
                min_load: 100,
            });
        let back = config_from_record(&config_to_record(&config)).unwrap();
        // Bit-wise equality: NaN thresholds compare equal to themselves.
        assert_eq!(back, config);
    }
}
