//! The wait-free read front: one immutable `ReadGeneration` per store,
//! swapped atomically at publication, plus the epoch-keyed predicate
//! front cache.
//!
//! This module is the hot half of the consistency contract documented in
//! `docs/READ_PATH.md`. Every commit (and every re-shard) renders the
//! whole store once into an immutable generation — a [`SnapshotSet`]
//! covering every registered column plus a fresh `FrontCache` — and
//! installs it behind a `LeftRightCell`. Readers on the hot path
//! ([`crate::ColumnStore::snapshot`], `snapshot_set`, `estimate_range`,
//! `estimate_eq`, `total_count`) perform a bounded sequence of atomic
//! operations and one pointer chase: no mutex, no read-write lock, no
//! retry loop. The pinned-render machinery in [`crate::txn`] remains as
//! the slow path for the rare reads the front cannot serve.
//!
//! The swap primitive is a hand-rolled *left-right* cell (Correia &
//! Ramalhete's algorithm) rather than an external `ArcSwap` dependency:
//! two instance slots, a version indicator, and two reader-arrival
//! counters give wait-free readers and a writer that can reclaim (drop)
//! the superseded generation without deferred reclamation machinery.

use crate::catalog::Snapshot;
use crate::store::SnapshotSet;
use crate::txn::lock;
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters behind [`ReadStats`], shared by a store's registry, its
/// front generations and their caches. All relaxed: they are telemetry,
/// not synchronization.
#[derive(Debug, Default)]
pub(crate) struct ReadCounters {
    fast_reads: AtomicU64,
    slow_renders: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl ReadCounters {
    pub(crate) fn count_fast(&self) {
        self.fast_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_slow(&self) {
        self.slow_renders.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ReadStats {
        ReadStats {
            fast_reads: self.fast_reads.load(Ordering::Relaxed),
            slow_renders: self.slow_renders.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cache_invalidations: self.invalidations.load(Ordering::Relaxed),
            // Single-process stores never probe sites; the multi-site
            // fields are owned by `dh_site`'s GlobalCatalog.
            site_probes: 0,
            site_failures: 0,
            degraded_reads: 0,
        }
    }
}

/// Read-path telemetry of one store, returned by
/// [`ColumnStore::read_stats`](crate::ColumnStore::read_stats).
///
/// `fast_reads` counts hot-path reads served wait-free off the front
/// generation; `slow_renders` counts reads that fell back to the gated
/// pinned-render protocol (see `docs/READ_PATH.md` for exactly when that
/// happens — under steady serving it stays at zero). The `cache_*`
/// fields cover the predicate front cache: `cache_invalidations` counts
/// whole-cache discards, one per installed generation (every commit and
/// every re-shard swap invalidates the entire memo).
///
/// The `site_*` and `degraded_reads` fields are multi-site telemetry:
/// zero for every single-process store, counted by `dh_site`'s
/// `GlobalCatalog` so degraded composition is observable rather than
/// silent (see `docs/GLOBAL.md`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReadStats {
    /// Reads served from the front generation without locking.
    pub fast_reads: u64,
    /// Reads that engaged the slow pinned-render path.
    pub slow_renders: u64,
    /// Predicate estimates answered from the front cache.
    pub cache_hits: u64,
    /// Predicate estimates that had to compute (and then memoize).
    pub cache_misses: u64,
    /// Whole-cache invalidations (= front generation swaps).
    pub cache_invalidations: u64,
    /// Member-site pulls attempted by a multi-site read.
    pub site_probes: u64,
    /// Member-site pulls that failed (unreachable or stale site).
    pub site_failures: u64,
    /// Reads that composed fewer sites than configured.
    pub degraded_reads: u64,
}

/// Number of seqlock slots per generation's front cache. Power of two;
/// ~20 KiB per generation — sized for an optimizer's working set of
/// repeated selectivity probes, not for caching every query ever seen.
const CACHE_SLOTS: usize = 512;

/// Cache key kinds. Non-zero so a zeroed slot can never alias a real
/// key (`ver == 0` additionally marks never-written slots).
const KIND_RANGE: u64 = 1;
const KIND_EQ: u64 = 2;
const KIND_TOTAL: u64 = 3;

/// One seqlock-guarded cache slot: a version word (odd = write in
/// progress, `0` = never written), the full key, and the value bits.
/// Readers validate the version *and* the full key, so a slot collision
/// or an in-flight write reads as a miss, never as a wrong value.
#[derive(Default)]
struct Slot {
    ver: AtomicU64,
    k0: AtomicU64,
    ka: AtomicU64,
    kb: AtomicU64,
    val: AtomicU64,
}

/// The epoch-keyed predicate memo riding on one [`ReadGeneration`]:
/// `(column, kind, operands) -> f64` for range / eq / total estimates.
///
/// Wait-free on both sides: a probe is a bounded number of `SeqCst`
/// atomic loads (a concurrent write or a changed slot is reported as a
/// miss — no retry); an insert is one CAS plus plain stores, abandoned
/// if the CAS loses (the cache is best-effort, correctness comes from
/// recomputing on every miss). Invalidation is structural: the cache
/// lives and dies with its generation, so a commit or re-shard swap
/// discards the whole memo at once — there is no per-entry eviction
/// protocol to race with.
pub(crate) struct FrontCache {
    /// Registered column names, sorted; a column's index is its cache
    /// identity (exact, collision-free key component).
    names: Vec<String>,
    slots: Box<[Slot]>,
    counters: Arc<ReadCounters>,
}

impl FrontCache {
    fn new(names: Vec<String>, counters: Arc<ReadCounters>) -> Self {
        Self {
            names,
            slots: (0..CACHE_SLOTS).map(|_| Slot::default()).collect(),
            counters,
        }
    }

    /// The cache identity of `column`, if it is covered.
    fn index_of(&self, column: &str) -> Option<u64> {
        self.names
            .binary_search_by(|name| name.as_str().cmp(column))
            .ok()
            .map(|i| i as u64)
    }

    fn slot_of(k0: u64, ka: u64, kb: u64) -> usize {
        // FNV-1a over the three key words, with a final avalanche so
        // nearby operands spread across slots.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for k in [k0, ka, kb] {
            h ^= k;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        (h as usize) & (CACHE_SLOTS - 1)
    }

    /// Looks up a memoized estimate. Counts a hit or a miss.
    fn get(&self, k0: u64, ka: u64, kb: u64) -> Option<f64> {
        let slot = &self.slots[Self::slot_of(k0, ka, kb)];
        let v1 = slot.ver.load(Ordering::SeqCst);
        if v1 == 0 || v1 & 1 == 1 {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let (s0, sa, sb) = (
            slot.k0.load(Ordering::SeqCst),
            slot.ka.load(Ordering::SeqCst),
            slot.kb.load(Ordering::SeqCst),
        );
        let val = slot.val.load(Ordering::SeqCst);
        if slot.ver.load(Ordering::SeqCst) != v1 || (s0, sa, sb) != (k0, ka, kb) {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        Some(f64::from_bits(val))
    }

    /// Best-effort insert: claims the slot's seqlock with one CAS and
    /// gives up silently if another writer holds it.
    fn put(&self, k0: u64, ka: u64, kb: u64, value: f64) {
        let slot = &self.slots[Self::slot_of(k0, ka, kb)];
        let v1 = slot.ver.load(Ordering::SeqCst);
        if v1 & 1 == 1 {
            return;
        }
        if slot
            .ver
            .compare_exchange(v1, v1 + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        slot.k0.store(k0, Ordering::SeqCst);
        slot.ka.store(ka, Ordering::SeqCst);
        slot.kb.store(kb, Ordering::SeqCst);
        slot.val.store(value.to_bits(), Ordering::SeqCst);
        slot.ver.store(v1 + 2, Ordering::SeqCst);
    }

    /// Probes the memo for `column`, computing (and memoizing) via
    /// `compute` on a miss. `None` if the column is not covered.
    pub(crate) fn probe(&self, column: &str, kind: CacheKind, snap: &Snapshot) -> Option<f64> {
        let idx = self.index_of(column)?;
        let (kind_tag, ka, kb) = kind.key();
        let k0 = (idx << 2) | kind_tag;
        if let Some(value) = self.get(k0, ka, kb) {
            return Some(value);
        }
        let value = kind.compute_on(snap);
        self.put(k0, ka, kb, value);
        Some(value)
    }
}

/// The three memoized estimate shapes.
#[derive(Clone, Copy)]
pub(crate) enum CacheKind {
    /// `estimate_range(a, b)`
    Range(i64, i64),
    /// `estimate_eq(v)`
    Eq(i64),
    /// `total_count()`
    Total,
}

impl CacheKind {
    fn key(self) -> (u64, u64, u64) {
        match self {
            CacheKind::Range(a, b) => (KIND_RANGE, a as u64, b as u64),
            CacheKind::Eq(v) => (KIND_EQ, v as u64, 0),
            CacheKind::Total => (KIND_TOTAL, 0, 0),
        }
    }

    /// The uncached computation this kind memoizes.
    pub(crate) fn compute_on(self, snap: &Snapshot) -> f64 {
        use dh_core::ReadHistogram;
        match self {
            CacheKind::Range(a, b) => snap.estimate_range(a, b),
            CacheKind::Eq(v) => snap.estimate_eq(v),
            CacheKind::Total => snap.total_count(),
        }
    }
}

/// One immutable, whole-store read generation: every registered column
/// rendered at a single published epoch, plus this generation's front
/// cache. Built by the committing writer (or a re-shard, or a
/// registration) and installed behind the registry's [`LeftRightCell`];
/// readers only ever clone out of it.
pub(crate) struct ReadGeneration {
    set: SnapshotSet,
    cache: Arc<FrontCache>,
}

impl ReadGeneration {
    /// The pre-first-commit generation: epoch 0, no columns.
    pub(crate) fn empty(counters: Arc<ReadCounters>) -> Self {
        Self::new(0, BTreeMap::new(), counters)
    }

    pub(crate) fn new(
        epoch: u64,
        snaps: BTreeMap<String, Snapshot>,
        counters: Arc<ReadCounters>,
    ) -> Self {
        let names: Vec<String> = snaps.keys().cloned().collect();
        let cache = Arc::new(FrontCache::new(names, counters));
        Self {
            set: SnapshotSet::with_cache(epoch, snaps, cache.clone()),
            cache,
        }
    }

    /// The epoch every snapshot in this generation is pinned to.
    pub(crate) fn epoch(&self) -> u64 {
        self.set.epoch()
    }

    /// Number of columns this generation covers.
    pub(crate) fn len(&self) -> usize {
        self.set.len()
    }

    /// The whole-store [`SnapshotSet`] (cache-wired).
    pub(crate) fn set(&self) -> &SnapshotSet {
        &self.set
    }

    /// This column's snapshot, if covered.
    pub(crate) fn snap(&self, column: &str) -> Option<&Snapshot> {
        self.set.get(column)
    }

    /// A cache-wired subset view pinned at this generation's epoch, or
    /// `None` if any requested column is not covered.
    pub(crate) fn subset(&self, columns: &[&str]) -> Option<SnapshotSet> {
        let mut snaps = BTreeMap::new();
        for &column in columns {
            snaps.insert(column.to_string(), self.set.get(column)?.clone());
        }
        Some(SnapshotSet::with_cache(
            self.set.epoch(),
            snaps,
            self.cache.clone(),
        ))
    }
}

/// A wait-free atomically-swappable `Arc<T>` cell — the left-right
/// algorithm (two instance slots, a version indicator, two reader
/// cohorts), hand-rolled on std atomics.
///
/// **Readers** ([`LeftRightCell::load`]) are wait-free: arrive on the
/// current version cohort, load the front index, clone the `Arc` out of
/// the front slot, depart. A bounded number of atomic operations — no
/// lock, no CAS loop, no retry — regardless of writer activity.
///
/// **Writers** ([`LeftRightCell::store_if`]) serialize on a mutex, write
/// the *back* slot (which the reader protocol guarantees is unobserved),
/// publish it by storing the front index, then toggle the version
/// indicator and wait for both reader cohorts to drain in turn. After
/// that wait, no reader can still hold a reference obtained from the old
/// front slot, so the *next* write may safely overwrite (drop) it —
/// which is how superseded generations are reclaimed promptly without
/// hazard pointers or epoch GC.
///
/// Memory-ordering argument (spelled out in `docs/READ_PATH.md`): all
/// shared words use `SeqCst`. A reader's cohort arrival precedes its
/// front-index load in the total order, so a writer that has completed
/// both cohort waits has seen the departure of every reader whose
/// front-index load could have returned the old index; the value written
/// into the back slot is published to readers by the `SeqCst` store of
/// `front` (their subsequent `SeqCst` load of `front` orders after it).
pub(crate) struct LeftRightCell<T> {
    instances: [UnsafeCell<Arc<T>>; 2],
    /// Index of the slot readers should use (0 or 1).
    front: AtomicUsize,
    /// Which reader cohort new arrivals join (0 or 1).
    version: AtomicUsize,
    /// In-flight readers per cohort.
    readers: [AtomicUsize; 2],
    writer: Mutex<()>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads (needs
// `T: Send + Sync`, like `Arc` itself); the `UnsafeCell`s are only
// written under the writer mutex and only read per the left-right
// protocol argued on `load`/`store_if`.
unsafe impl<T: Send + Sync> Send for LeftRightCell<T> {}
unsafe impl<T: Send + Sync> Sync for LeftRightCell<T> {}

impl<T> LeftRightCell<T> {
    pub(crate) fn new(value: Arc<T>) -> Self {
        Self {
            instances: [UnsafeCell::new(value.clone()), UnsafeCell::new(value)],
            front: AtomicUsize::new(0),
            version: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    /// The current value. Wait-free: a bounded sequence of atomic
    /// operations and one `Arc` clone, never blocked by writers.
    pub(crate) fn load(&self) -> Arc<T> {
        let cohort = self.version.load(Ordering::SeqCst);
        self.readers[cohort].fetch_add(1, Ordering::SeqCst);
        let front = self.front.load(Ordering::SeqCst);
        // SAFETY: `front` was loaded *after* arriving on a cohort, so
        // the writer's cohort waits cannot both have completed between
        // our arrival and this clone — meaning no writer overwrites
        // `instances[front]` while we read it (a writer only writes the
        // slot it just proved unobserved; see `store_if`).
        let value = unsafe { (*self.instances[front].get()).clone() };
        self.readers[cohort].fetch_sub(1, Ordering::SeqCst);
        value
    }

    /// Atomically replaces the value with `candidate` if `accept(current,
    /// candidate)` says so; returns whether the swap happened. Writers
    /// serialize on an internal mutex; the superseded value (from two
    /// stores ago) is dropped here, after the reader cohorts prove it
    /// unobserved.
    pub(crate) fn store_if(&self, candidate: Arc<T>, accept: impl FnOnce(&T, &T) -> bool) -> bool {
        let _writer = lock(&self.writer);
        let front = self.front.load(Ordering::SeqCst);
        let back = 1 - front;
        {
            // SAFETY: under the writer mutex the front index is stable
            // and `instances[front]` is only read (by us and readers),
            // never written.
            let current = unsafe { &*self.instances[front].get() };
            if !accept(current, &candidate) {
                return false;
            }
        }
        // SAFETY: the previous `store_if` completed both cohort waits
        // after unpublishing this slot, so no reader holds or can obtain
        // a reference into it — writing (and dropping the old Arc) is
        // exclusive.
        unsafe {
            *self.instances[back].get() = candidate;
        }
        self.front.store(back, Ordering::SeqCst);
        // Toggle the version and wait out both cohorts: readers that
        // arrived before the toggle may still be using the old front
        // slot; once both cohorts have drained (new arrivals land on the
        // *new* front index), the old slot is provably unobserved.
        let cohort = self.version.load(Ordering::SeqCst);
        let next = 1 - cohort;
        self.wait_empty(next);
        self.version.store(next, Ordering::SeqCst);
        self.wait_empty(cohort);
        true
    }

    fn wait_empty(&self, cohort: usize) {
        let mut spins = 0u32;
        while self.readers[cohort].load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn left_right_load_store_round_trip() {
        let cell = LeftRightCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        assert!(cell.store_if(Arc::new(2), |cur, new| new > cur));
        assert_eq!(*cell.load(), 2);
        // Rejected candidates leave the value untouched.
        assert!(!cell.store_if(Arc::new(1), |cur, new| new > cur));
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn left_right_readers_race_writers_and_never_regress() {
        let cell = Arc::new(LeftRightCell::new(Arc::new(0u64)));
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let cell = cell.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !done.load(Ordering::Acquire) {
                    let v = *cell.load();
                    assert!(v >= last, "value regressed: {last} -> {v}");
                    last = v;
                }
            }));
        }
        for v in 1..=1000u64 {
            assert!(cell.store_if(Arc::new(v), |cur, new| new > cur));
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.load(), 1000);
    }

    #[test]
    fn front_cache_memoizes_exact_bits_and_reports_collisions_as_misses() {
        let counters = Arc::new(ReadCounters::default());
        let cache = FrontCache::new(vec!["a".into()], counters.clone());
        assert_eq!(cache.index_of("a"), Some(0));
        assert_eq!(cache.index_of("ghost"), None);
        cache.put(1, 2, 3, 0.1 + 0.2);
        assert_eq!(cache.get(1, 2, 3), Some(0.1 + 0.2));
        // Same slot different key would be detected by the full-key
        // compare; an absent key is a miss.
        assert_eq!(cache.get(1, 2, 4), None);
        let stats = counters.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }
}
