//! The Equi-Width histogram: Equi-Sum(V, S) in the framework of \[9\].
//!
//! Partitions the value axis into buckets of equal range. The paper cites
//! the classic result that Equi-Width is usually inferior to Equi-Depth,
//! which is in turn inferior to Compressed and V-Optimal — reproduced in
//! this workspace's `histogram_hierarchy` integration test.

use dh_core::{BucketSpan, DataDistribution, ReadHistogram};

/// An equal-range static histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    spans: Vec<BucketSpan>,
}

impl EquiWidthHistogram {
    /// Builds an equi-width histogram with (up to) `buckets` buckets.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(dist: &DataDistribution, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let (Some(min), Some(max)) = (dist.min(), dist.max()) else {
            return Self { spans: Vec::new() };
        };
        let lo = min as f64;
        let hi = (max + 1) as f64;
        let width = (hi - lo) / buckets as f64;
        let truth = dist.exact_cdf();
        let spans = (0..buckets)
            .map(|i| {
                let a = lo + width * i as f64;
                let b = if i + 1 == buckets {
                    hi
                } else {
                    lo + width * (i + 1) as f64
                };
                BucketSpan::new(a, b, truth.mass_in(a, b))
            })
            .collect();
        Self { spans }
    }

    /// Builds directly from raw values.
    pub fn from_values(values: &[i64], buckets: usize) -> Self {
        Self::build(&DataDistribution::from_values(values), buckets)
    }

    /// The bucket spans.
    pub fn buckets(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl ReadHistogram for EquiWidthHistogram {
    dh_core::span_backed_reads!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_equal() {
        let dist = DataDistribution::from_values(&(0..100).collect::<Vec<_>>());
        let h = EquiWidthHistogram::build(&dist, 10);
        assert_eq!(h.num_buckets(), 10);
        for s in h.buckets() {
            assert!((s.width() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn counts_are_exact_per_range() {
        let dist = DataDistribution::from_values(&[0, 0, 0, 5, 9, 9]);
        let h = EquiWidthHistogram::build(&dist, 2);
        // [0,5): three 0s; [5,10): 5, 9, 9.
        assert_eq!(h.buckets()[0].count, 3.0);
        assert_eq!(h.buckets()[1].count, 3.0);
        assert_eq!(h.total_count(), 6.0);
    }

    #[test]
    fn skewed_data_hurts_equiwidth() {
        use dh_core::ks_error;
        // 90% of mass in one value at the far end.
        let mut values = vec![0i64; 100];
        values.extend(std::iter::repeat_n(999i64, 900));
        let dist = DataDistribution::from_values(&values);
        let h = EquiWidthHistogram::build(&dist, 4);
        // The last bucket [750,1000) has 900 points smeared over 250
        // values: large KS error expected.
        assert!(ks_error(&h, &dist) > 0.5);
    }

    #[test]
    fn empty_distribution_yields_empty_histogram() {
        let h = EquiWidthHistogram::build(&DataDistribution::new(), 5);
        assert_eq!(h.num_buckets(), 0);
    }

    #[test]
    fn single_value_distribution() {
        let dist = DataDistribution::from_values(&[42, 42]);
        let h = EquiWidthHistogram::build(&dist, 3);
        assert_eq!(h.total_count(), 2.0);
        use dh_core::ks_error;
        assert!(ks_error(&h, &dist) < 1e-9);
    }
}
